"""Graph matching substrate used by the RAIDP recovery planner.

Section 3.3 of the paper frames post-failure re-replication as a matching
problem: *sender* disks holding now-unique superchunks must each be paired
with a *receiver* disk such that 1-sharing is preserved and no receiver
takes more than one superchunk, optionally minimizing disk load.  The
paper points at maximum matchings (Hopcroft-Karp) and min-cost assignment
(the Hungarian algorithm, with the Mills-Tettey dynamic variant).  We
implement all three from scratch:

- :mod:`repro.matching.hopcroft_karp` -- O(E sqrt(V)) maximum bipartite
  matching.
- :mod:`repro.matching.hungarian` -- O(n^3) Kuhn-Munkres min-cost
  assignment with support for forbidden edges and rectangular problems,
  plus a dynamic wrapper that warm-starts dual potentials across cost
  updates and edge deletions.
"""

from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.hungarian import DynamicHungarian, hungarian

__all__ = ["DynamicHungarian", "hopcroft_karp", "hungarian"]
