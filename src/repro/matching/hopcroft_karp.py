"""Hopcroft-Karp maximum bipartite matching in O(E * sqrt(V)).

The input is an adjacency mapping from left vertices to iterables of right
vertices; vertices may be any hashable objects.  The output maps matched
left vertices to their right partners.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional

_INF = float("inf")


def hopcroft_karp(
    graph: Mapping[Hashable, Iterable[Hashable]],
) -> Dict[Hashable, Hashable]:
    """Return a maximum matching as a left-vertex -> right-vertex dict."""
    adjacency: Dict[Hashable, List[Hashable]] = {
        left: list(rights) for left, rights in graph.items()
    }
    match_left: Dict[Hashable, Optional[Hashable]] = {l: None for l in adjacency}
    match_right: Dict[Hashable, Optional[Hashable]] = {}
    for rights in adjacency.values():
        for right in rights:
            match_right.setdefault(right, None)

    distance: Dict[Hashable, float] = {}

    def bfs() -> bool:
        """Layer the graph from free left vertices; True if an augmenting
        path exists."""
        queue = deque()
        for left in adjacency:
            if match_left[left] is None:
                distance[left] = 0
                queue.append(left)
            else:
                distance[left] = _INF
        found_free_right = False
        while queue:
            left = queue.popleft()
            for right in adjacency[left]:
                nxt = match_right[right]
                if nxt is None:
                    found_free_right = True
                elif distance[nxt] == _INF:
                    distance[nxt] = distance[left] + 1
                    queue.append(nxt)
        return found_free_right

    def dfs(left: Hashable) -> bool:
        """Find an augmenting path from ``left`` along the BFS layers."""
        for right in adjacency[left]:
            nxt = match_right[right]
            if nxt is None or (distance[nxt] == distance[left] + 1 and dfs(nxt)):
                match_left[left] = right
                match_right[right] = left
                return True
        distance[left] = _INF
        return False

    while bfs():
        for left in adjacency:
            if match_left[left] is None:
                dfs(left)

    return {l: r for l, r in match_left.items() if r is not None}
