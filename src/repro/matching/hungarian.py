"""Kuhn-Munkres (Hungarian) min-cost assignment.

``hungarian(cost)`` solves the rectangular assignment problem: given an
``n_rows x n_cols`` cost matrix (entries may be ``None`` for forbidden
pairs), find the cheapest assignment matching every row to a distinct
column (requires ``n_rows <= n_cols``).  The implementation is the
canonical O(n^2 m) shortest-augmenting-path formulation with dual
potentials (Jonker-Volgenant style).

:class:`DynamicHungarian` supports the recovery planner's loop (paper
Section 3.3): solve, then *remove an edge* (an assignment would violate
1-sharing) or *update a cost* (a disk's load changed), and re-solve.
Re-solves warm-start from the previous dual potentials -- the practical
payoff of the Mills-Tettey dynamic Hungarian algorithm -- after clamping
any potential made infeasible by the update.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MatchingError

_INF = float("inf")

CostMatrix = Sequence[Sequence[Optional[float]]]


def _solve(
    cost: List[List[float]],
    row_potential: Optional[List[float]] = None,
    col_potential: Optional[List[float]] = None,
) -> Tuple[List[int], List[float], List[float], float]:
    """Shortest-augmenting-path assignment on an n_rows <= n_cols matrix.

    Uses 1-based arrays internally (index 0 is a virtual source).  The
    supplied potentials, if any, must be dual-feasible
    (``cost[i][j] >= u[i] + v[j]`` for every finite entry).

    Returns (row -> col assignment, row potentials, col potentials,
    total cost).  ``inf`` entries are forbidden.
    """
    n = len(cost)
    m = len(cost[0]) if n else 0
    if n == 0:
        return [], [], [], 0.0
    if n > m:
        raise MatchingError("more rows than columns; transpose the problem")

    u = [0.0] + (list(row_potential) if row_potential is not None else [0.0] * n)
    v = [0.0] + (list(col_potential) if col_potential is not None else [0.0] * m)
    # p[j] = 1-based row currently matched to 1-based column j (0 = free).
    p = [0] * (m + 1)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [_INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = _INF
            j1 = -1
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if j1 == -1 or delta == _INF:
                raise MatchingError(
                    f"no feasible assignment: row {i - 1} cannot be matched"
                )
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating path back to the source.
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = sum(cost[r][assignment[r]] for r in range(n))
    return assignment, u[1:], v[1:], total


def hungarian(cost: CostMatrix) -> Tuple[Dict[int, int], float]:
    """Solve min-cost assignment; returns (row->col mapping, total cost).

    Entries that are ``None`` mark forbidden pairs.  Raises
    :class:`MatchingError` if no complete assignment of rows exists.
    """
    matrix = [
        [(_INF if entry is None else float(entry)) for entry in row] for row in cost
    ]
    if not matrix:
        return {}, 0.0
    widths = {len(row) for row in matrix}
    if len(widths) != 1:
        raise ValueError("ragged cost matrix")
    assignment, _u, _v, total = _solve(matrix)
    return {row: col for row, col in enumerate(assignment)}, total


class DynamicHungarian:
    """Re-solvable assignment with edge deletion and cost updates.

    The solver keeps dual potentials between solves, so after a local
    change (one edge removed, one cost bumped) the next solve converges
    quickly.  Raising a cost or removing an edge never breaks dual
    feasibility; lowering a cost may, so the affected row potential is
    clamped to restore ``cost >= u + v``.
    """

    def __init__(self, cost: CostMatrix) -> None:
        self._matrix: List[List[float]] = [
            [(_INF if entry is None else float(entry)) for entry in row]
            for row in cost
        ]
        widths = {len(row) for row in self._matrix}
        if self._matrix and len(widths) != 1:
            raise ValueError("ragged cost matrix")
        self._row_potential: Optional[List[float]] = None
        self._col_potential: Optional[List[float]] = None

    @property
    def n_rows(self) -> int:
        return len(self._matrix)

    @property
    def n_cols(self) -> int:
        return len(self._matrix[0]) if self._matrix else 0

    def cost_of(self, row: int, col: int) -> Optional[float]:
        value = self._matrix[row][col]
        return None if value == _INF else value

    def remove_edge(self, row: int, col: int) -> None:
        """Forbid the (row, col) pair."""
        self._matrix[row][col] = _INF

    def update_cost(self, row: int, col: int, new_cost: float) -> None:
        self._matrix[row][col] = float(new_cost)
        self._restore_feasibility(row, col)

    def _restore_feasibility(self, row: int, col: int) -> None:
        if self._row_potential is None or self._col_potential is None:
            return
        slack = (
            self._matrix[row][col]
            - self._row_potential[row]
            - self._col_potential[col]
        )
        if slack < 0:
            self._row_potential[row] += slack

    def solve(self) -> Tuple[Dict[int, int], float]:
        assignment, u, v, total = _solve(
            self._matrix, self._row_potential, self._col_potential
        )
        self._row_potential, self._col_potential = u, v
        return {row: col for row, col in enumerate(assignment)}, total
