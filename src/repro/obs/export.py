"""Trace export (JSONL, Chrome/Perfetto) and phase summarisation.

Two on-disk formats, chosen by file extension in :func:`write_trace`:

``*.jsonl``
    One event per line, timestamps in simulated seconds.  Trivially
    greppable and the format :func:`load_trace` round-trips exactly.
``*.json`` (and anything else)
    Chrome trace format (the JSON object flavour with ``traceEvents``),
    loadable in Perfetto / ``chrome://tracing``.  Timestamps are scaled
    to microseconds as the format requires; ``pid`` is the simulator run
    index and ``tid`` is a per-category track.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "write_trace",
    "to_jsonl",
    "to_chrome",
    "load_trace",
    "summarize",
    "recovery_breakdown",
    "render_summary",
]

#: Chrome trace timestamps are microseconds.
_US = 1e6


def _events_of(source: Any) -> List[TraceEvent]:
    if isinstance(source, Tracer):
        return source.events
    return list(source)


def to_jsonl(source: Any, path: str) -> int:
    """Write one JSON object per line; returns the event count."""
    events = _events_of(source)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.as_dict(), sort_keys=True))
            fh.write("\n")
    return len(events)


def to_chrome(source: Any, path: str) -> int:
    """Write Chrome trace JSON; returns the event count."""
    events = _events_of(source)
    categories = sorted({event.category for event in events})
    tids = {category: index + 1 for index, category in enumerate(categories)}
    runs = sorted({event.run for event in events})
    records: List[Dict[str, Any]] = []
    labels: Tuple[str, ...] = ()
    if isinstance(source, Tracer):
        labels = source.run_labels
    for run in runs:
        label = labels[run] if run < len(labels) else f"run-{run}"
        records.append(
            {
                "ph": "M",
                "pid": run,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"sim {label}"},
            }
        )
        for category, tid in tids.items():
            records.append(
                {
                    "ph": "M",
                    "pid": run,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": category},
                }
            )
    for event in events:
        record: Dict[str, Any] = {
            "ph": event.phase,
            "pid": event.run,
            "tid": tids[event.category],
            "cat": event.category,
            "name": event.name,
            "ts": event.ts * _US,
        }
        if event.phase == "X":
            record["dur"] = event.dur * _US
        elif event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        if event.attrs:
            record["args"] = event.attrs
        records.append(record)
    payload = {"traceEvents": records, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(events)


def write_trace(source: Any, path: str) -> int:
    """Dispatch on extension: ``.jsonl`` lines, otherwise Chrome JSON."""
    if path.endswith(".jsonl"):
        return to_jsonl(source, path)
    return to_chrome(source, path)


def load_trace(path: str) -> List[TraceEvent]:
    """Read either export format back into :class:`TraceEvent` records.

    Chrome files come back with timestamps rescaled to seconds and
    metadata events dropped, so the two formats summarise identically.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    events: List[TraceEvent] = []
    payload: Any = None
    if stripped.startswith("{") or stripped.startswith("["):
        # JSONL lines also start with '{': only a document that parses
        # as a single JSON value is the Chrome format.
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError:
            payload = None
    if payload is not None and (
        isinstance(payload, list) or "traceEvents" in payload
    ):
        records = payload["traceEvents"] if isinstance(payload, dict) else payload
        scale = 1.0 / _US
        for seq, record in enumerate(records):
            phase = record.get("ph", "X")
            if phase == "M":
                continue
            events.append(
                TraceEvent(
                    int(record.get("pid", 0)),
                    seq,
                    phase,
                    record.get("cat", ""),
                    record.get("name", ""),
                    float(record.get("ts", 0.0)) * scale,
                    float(record.get("dur", 0.0)) * scale,
                    record.get("args") or None,
                )
            )
        return events
    for line in stripped.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        events.append(
            TraceEvent(
                int(record.get("run", 0)),
                int(record.get("seq", 0)),
                record.get("ph", "X"),
                record.get("cat", ""),
                record.get("name", ""),
                float(record.get("ts", 0.0)),
                float(record.get("dur", 0.0)),
                record.get("args") or None,
            )
        )
    return events


def _union_seconds(intervals: Iterable[Tuple[float, float]]) -> float:
    """Total length covered by a set of possibly-overlapping intervals."""
    ordered = sorted(intervals)
    covered = 0.0
    cursor = float("-inf")
    for start, end in ordered:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    return covered


def summarize(events: List[TraceEvent]) -> Dict[str, Dict[str, Any]]:
    """Aggregate per ``category.name``: span counts/durations, instants."""
    table: Dict[str, Dict[str, Any]] = {}
    for event in events:
        key = f"{event.category}.{event.name}"
        row = table.get(key)
        if row is None:
            row = table[key] = {
                "phase": event.phase,
                "count": 0,
                "total_s": 0.0,
                "max_s": 0.0,
            }
        row["count"] += 1
        if event.phase == "X":
            row["total_s"] += event.dur
            row["max_s"] = max(row["max_s"], event.dur)
    return dict(sorted(table.items()))


#: Recovery phase names that count as children of a whole-recovery span.
_RECOVERY_PHASES = ("plan", "reconstruct", "remirror", "install")
_RECOVERY_PARENTS = ("single", "double")


def recovery_breakdown(events: List[TraceEvent]) -> List[Dict[str, Any]]:
    """Per-recovery phase decomposition with per-superchunk rows.

    For every whole-recovery span (``recovery.single`` /
    ``recovery.double``) returns its child phase spans that fall inside
    its window, both as a straight sum (cost) and as a union of
    intervals (wall-clock coverage -- phases run in parallel across
    superchunks).  ``coverage`` near 1.0 means the phases account for
    the whole reported recovery time.
    """
    recoveries = [
        event
        for event in events
        if event.phase == "X"
        and event.category == "recovery"
        and event.name in _RECOVERY_PARENTS
    ]
    phase_spans = [
        event
        for event in events
        if event.phase == "X"
        and event.category == "recovery"
        and event.name in _RECOVERY_PHASES
    ]
    out: List[Dict[str, Any]] = []
    eps = 1e-9
    for parent in recoveries:
        children = [
            span
            for span in phase_spans
            if span.run == parent.run
            and span.ts >= parent.ts - eps
            and span.end <= parent.end + eps
        ]
        phases: Dict[str, Dict[str, Any]] = {}
        rows: List[Dict[str, Any]] = []
        for span in children:
            phase = phases.setdefault(
                span.name, {"count": 0, "sum_s": 0.0, "intervals": []}
            )
            phase["count"] += 1
            phase["sum_s"] += span.dur
            phase["intervals"].append((span.ts, span.end))
            if span.attrs and "sc" in span.attrs:
                rows.append(
                    {
                        "phase": span.name,
                        "sc": span.attrs.get("sc"),
                        "start_s": span.ts - parent.ts,
                        "dur_s": span.dur,
                        "attrs": span.attrs,
                    }
                )
        for phase in phases.values():
            phase["union_s"] = _union_seconds(phase.pop("intervals"))
        union_all = _union_seconds((span.ts, span.end) for span in children)
        rows.sort(key=lambda row: (row["start_s"], str(row["sc"])))
        out.append(
            {
                "run": parent.run,
                "kind": parent.name,
                "attrs": parent.attrs or {},
                "start_s": parent.ts,
                "total_s": parent.dur,
                "phase_sum_s": sum(phase["sum_s"] for phase in phases.values()),
                "phase_union_s": union_all,
                "coverage": (union_all / parent.dur) if parent.dur > 0 else 1.0,
                "phases": dict(sorted(phases.items())),
                "superchunks": rows,
            }
        )
    return out


def render_summary(
    events: List[TraceEvent],
    category: Optional[str] = None,
    limit: int = 0,
) -> str:
    """Human-readable phase summary plus recovery breakdowns."""
    if category is not None:
        events = [event for event in events if event.category == category]
    lines: List[str] = []
    table = summarize(events)
    if not table:
        return "(no events)"
    width = max(len(key) for key in table)
    lines.append(f"{'event':<{width}}  {'count':>8}  {'total s':>12}  {'max s':>10}")
    lines.append("-" * (width + 36))
    for key, row in table.items():
        if row["phase"] == "X":
            lines.append(
                f"{key:<{width}}  {row['count']:>8}  {row['total_s']:>12.3f}  "
                f"{row['max_s']:>10.3f}"
            )
        else:
            lines.append(f"{key:<{width}}  {row['count']:>8}  {'-':>12}  {'-':>10}")
    breakdowns = recovery_breakdown(events)
    for item in breakdowns:
        lines.append("")
        attrs = ", ".join(f"{k}={v}" for k, v in item["attrs"].items())
        lines.append(
            f"recovery [{item['kind']}] run={item['run']} {attrs}".rstrip()
        )
        lines.append(
            f"  total {item['total_s']:.3f} s | phase sum {item['phase_sum_s']:.3f} s"
            f" | phase union {item['phase_union_s']:.3f} s"
            f" | coverage {item['coverage'] * 100.0:.1f}%"
        )
        for name, phase in item["phases"].items():
            lines.append(
                f"  {name:<12} x{phase['count']:<4} sum {phase['sum_s']:.3f} s"
                f"  union {phase['union_s']:.3f} s"
            )
        rows = item["superchunks"]
        if limit:
            rows = rows[:limit]
        for row in rows:
            extra = row["attrs"]
            detail = ", ".join(
                f"{k}={v}" for k, v in extra.items() if k not in ("sc",)
            )
            lines.append(
                f"    sc={row['sc']} {row['phase']} +{row['start_s']:.3f}s "
                f"dur {row['dur_s']:.3f}s {detail}".rstrip()
            )
        if limit and len(item["superchunks"]) > limit:
            lines.append(
                f"    ... {len(item['superchunks']) - limit} more superchunk rows"
            )
    return "\n".join(lines)
