"""Flight-recorder time series: periodic MetricSet sampling in sim time.

The tracer (PR 4) answers *what happened when*; the profiler (PR 8)
answers *where the wall time went*.  This module answers *what did the
cluster look like over time*: a :class:`Sampler` snapshots a registered
:class:`~repro.sim.stats.MetricSet` at a fixed simulated-time interval
into a columnar :class:`TimeSeriesStore`, turning the always-on
counters/gauges/histograms into p50/p99-over-time curves that line up
with trace spans (same simulated clock, same run indices).

Design constraints, in order -- the same three the tracer obeys:

1. **Determinism.**  The sampler is *not* a simulation process.  The
   engine's run loop drains to each sample instant using the same
   ``until`` mechanism callers use, takes the sample, and continues; no
   event is ever scheduled and the ``(time, seq)`` tie-break counter is
   never touched, so a sampled run executes the exact same schedule as
   an unsampled one (tested bit-for-bit in
   ``tests/test_flight_recorder.py``).  Sampling itself only *reads*
   component instruments: windowed histogram percentiles are computed
   from deltas of the cumulative bucket counts, never by mutating the
   shared :class:`Histogram` objects.
2. **Zero cost when disabled.**  The engine consults
   :func:`active_sampler` once per ``run()`` call -- never per event --
   so the disabled path costs one attribute load per run (gated at
   <=1% by the ``sampler_overhead`` bench kernel).
3. **No sim imports.**  ``sim/engine.py`` imports this module; the
   reverse would be a cycle.  The MetricSet is duck-typed through its
   ``as_dict`` contract and the bucket-quantile kernel is local.
"""

from __future__ import annotations

import json
from collections import deque
from math import fsum
from types import TracebackType
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
)

__all__ = [
    "SCHEMA",
    "TimeSeriesStore",
    "Sampler",
    "activate",
    "deactivate",
    "active_sampler",
    "capture",
    "write_timeseries",
    "load_timeseries",
]

#: Schema tag stamped on every JSONL export header.
SCHEMA = "raidp-timeseries-v1"

#: Ring-buffer depth per series (and for the shared time column).
DEFAULT_CAPACITY = 4096

#: Sample every half simulated second by default: fine enough to
#: resolve the paper's ~10s recovery windows, coarse enough that a
#: 2000s chaos horizon stays a few thousand rows.
DEFAULT_INTERVAL = 0.5

#: Quantiles reported per histogram window (p50/p99 are the SLO pair).
DEFAULT_PERCENTILES = (0.5, 0.99)


def percentile_label(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p999"``."""
    return "p" + format(q * 100.0, "g").replace(".", "")


def _percentile_from_buckets(
    bounds: Tuple[float, ...],
    counts: List[int],
    q: float,
    observed_max: float,
) -> float:
    """Bucket-quantile estimate with linear interpolation.

    Local twin of :func:`repro.sim.stats.percentile_from_buckets` (this
    module must not import the sim stack); the arithmetic is identical
    and cross-checked in the tests.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative >= target:
            lo = bounds[index - 1] if index > 0 else 0.0
            hi = bounds[index] if index < len(bounds) else observed_max
            if hi < lo:
                hi = lo
            fraction = (target - previous) / count
            return lo + (hi - lo) * fraction
    return observed_max


class TimeSeriesStore:
    """Columnar ring-buffer: one shared time column, one column per series.

    All columns are ``deque(maxlen=capacity)`` and every :meth:`append`
    pushes one entry to *every* column (``None`` where a series has no
    value this tick), so eviction keeps the columns aligned: row ``i``
    of any column belongs to row ``i`` of the time column.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: (run, ts) per retained sample, oldest first.
        self._time: Deque[Tuple[int, float]] = deque(maxlen=capacity)
        self._series: Dict[str, Deque[Optional[float]]] = {}
        self.total_appended = 0

    def __len__(self) -> int:
        return len(self._time)

    def names(self) -> List[str]:
        return sorted(self._series)

    def append(self, run: int, ts: float, values: Dict[str, float]) -> None:
        length = len(self._time)
        for name in values:
            if name not in self._series:
                column: Deque[Optional[float]] = deque(maxlen=self.capacity)
                column.extend([None] * length)
                self._series[name] = column
        self._time.append((run, ts))
        for name, column in self._series.items():
            column.append(values.get(name))
        self.total_appended += 1

    def series(
        self, name: str, run: Optional[int] = None
    ) -> List[Tuple[float, float]]:
        """Retained ``(ts, value)`` pairs of one series, oldest first."""
        column = self._series.get(name)
        if column is None:
            return []
        points: List[Tuple[float, float]] = []
        for (row_run, ts), value in zip(self._time, column):
            if value is None:
                continue
            if run is not None and row_run != run:
                continue
            points.append((ts, value))
        return points

    def rows(self) -> Iterator[Tuple[int, float, Dict[str, float]]]:
        """Retained rows as ``(run, ts, {series: value})``, oldest first.

        Series are emitted in sorted-name order so exports are
        byte-stable across runs.
        """
        ordered = sorted(self._series.items())
        for index, (run, ts) in enumerate(self._time):
            row: Dict[str, float] = {}
            for name, column in ordered:
                value = column[index]
                if value is not None:
                    row[name] = value
            yield run, ts, row


class Sampler:
    """Periodic MetricSet sampler driven by the engine's run loop.

    The engine (when a sampler is active) drains to each
    :meth:`next_due` instant and calls :meth:`sample`; everything else
    -- which registries to read, windowed percentiles, on-sample hooks
    for the auditor -- lives here.  ``enabled`` may be flipped to
    ``False`` to mute an installed sampler; the engine re-checks it on
    every ``run()``.
    """

    enabled: bool = True

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        percentiles: Tuple[float, ...] = DEFAULT_PERCENTILES,
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.interval = float(interval)
        self.percentiles = tuple(percentiles)
        self.store = TimeSeriesStore(capacity)
        self.samples_taken = 0
        self.run = 0
        self._run_labels: List[str] = []
        self._base = 0.0
        self._ticks = 0
        self._metrics: List[Any] = []
        # Per-histogram-key (cumulative_count, cumulative_sum, counts)
        # at the previous tick; windows are deltas against this.
        self._prev_hist: Dict[str, Tuple[int, float, List[int]]] = {}
        self._hooks: List[Callable[[Any, float], None]] = []

    # -- registration ---------------------------------------------------
    def watch(self, metrics: Any) -> Any:
        """Sample ``metrics`` (a MetricSet) at every subsequent tick."""
        if metrics not in self._metrics:
            self._metrics.append(metrics)
        return metrics

    def on_sample(self, hook: Callable[[Any, float], None]) -> None:
        """Run ``hook(sim, now)`` after each sample (auditor probes)."""
        self._hooks.append(hook)

    def register_run(self, start: float, label: str = "") -> int:
        """Called by each Simulator binding this sampler at construction.

        Restarts the tick grid at ``start`` (sample instants are
        ``start + k * interval``, computed by multiplication so the grid
        never drifts) and opens a new run index, mirroring the tracer's
        run bookkeeping so rows align with trace events.
        """
        index = len(self._run_labels)
        self._run_labels.append(label or f"run-{index}")
        self.run = index
        self._base = float(start)
        self._ticks = 0
        self._prev_hist.clear()
        return index

    @property
    def run_labels(self) -> Tuple[str, ...]:
        return tuple(self._run_labels)

    # -- the engine-facing protocol -------------------------------------
    def next_due(self) -> float:
        return self._base + (self._ticks + 1) * self.interval

    def sample(self, sim: Any) -> None:
        """Record one row at ``sim.now`` (the engine guarantees
        ``sim.now == next_due()`` when it calls this)."""
        now = sim.now
        self._ticks += 1
        values: Dict[str, float] = {}
        # Aggregate windows across same-named labeled histograms
        # (e.g. disk_io_latency{disk=...} -> cluster-wide disk_io_latency).
        aggregates: Dict[str, Tuple[Tuple[float, ...], List[int], List[float], float]] = {}
        for metrics in self._metrics:
            snapshot = metrics.as_dict(now)
            for key, count in snapshot["counters"].items():
                values[key] = float(count)
            for key, gauge in snapshot["gauges"].items():
                values[key] = float(gauge["current"])
            for key, hist in snapshot["histograms"].items():
                self._sample_histogram(key, hist, values, aggregates)
        for base in sorted(aggregates):
            bounds, delta_counts, delta_sums, observed_max = aggregates[base]
            self._emit_window(
                base, bounds, delta_counts, fsum(delta_sums), observed_max, values
            )
        self.store.append(self.run, now, values)
        self.samples_taken += 1
        trace = getattr(sim, "trace", None)
        if trace is not None and trace.enabled:
            trace.instant(
                "telemetry", "sample", ts=now, tick=self._ticks, series=len(values)
            )
        for hook in self._hooks:
            hook(sim, now)

    # -- internals ------------------------------------------------------
    def _sample_histogram(
        self,
        key: str,
        hist: Dict[str, Any],
        values: Dict[str, float],
        aggregates: Dict[str, Tuple[Tuple[float, ...], List[int], List[float], float]],
    ) -> None:
        counts: List[int] = list(hist["counts"])
        total = int(hist["count"])
        total_sum = float(hist["sum"])
        observed_max = float(hist["max"])
        bounds = tuple(float(b) for b in hist["bounds"])
        previous = self._prev_hist.get(key)
        if previous is None:
            prev_total, prev_sum, prev_counts = 0, 0.0, [0] * len(counts)
        else:
            prev_total, prev_sum, prev_counts = previous
        delta_counts = [c - p for c, p in zip(counts, prev_counts)]
        delta_sum = total_sum - prev_sum
        self._prev_hist[key] = (total, total_sum, counts)
        self._emit_window(key, bounds, delta_counts, delta_sum, observed_max, values)
        if "{" in key:
            base = key.split("{", 1)[0]
            entry = aggregates.get(base)
            if entry is None:
                aggregates[base] = (bounds, list(delta_counts), [delta_sum], observed_max)
            elif entry[0] == bounds:
                for index, delta in enumerate(delta_counts):
                    entry[1][index] += delta
                entry[2].append(delta_sum)
                if observed_max > entry[3]:
                    aggregates[base] = (entry[0], entry[1], entry[2], observed_max)

    def _emit_window(
        self,
        key: str,
        bounds: Tuple[float, ...],
        delta_counts: List[int],
        delta_sum: float,
        observed_max: float,
        values: Dict[str, float],
    ) -> None:
        window_count = sum(delta_counts)
        values[f"{key}:count"] = float(window_count)
        if window_count > 0:
            values[f"{key}:mean"] = delta_sum / window_count
        for q in self.percentiles:
            values[f"{key}:{percentile_label(q)}"] = _percentile_from_buckets(
                bounds, delta_counts, q, observed_max
            )

    # -- export ---------------------------------------------------------
    def to_jsonl(self) -> Iterator[str]:
        """One header line, then one line per retained sample row."""
        header = {
            "kind": "header",
            "schema": SCHEMA,
            "interval": self.interval,
            "percentiles": list(self.percentiles),
            "runs": list(self._run_labels),
            "series": self.store.names(),
            "samples_total": self.store.total_appended,
            "samples_retained": len(self.store),
        }
        yield json.dumps(header, sort_keys=True)
        for run, ts, row in self.store.rows():
            yield json.dumps(
                {"kind": "sample", "run": run, "ts": ts, "values": row},
                sort_keys=True,
            )

    def write_jsonl(self, stream: IO[str]) -> int:
        lines = 0
        for line in self.to_jsonl():
            stream.write(line + "\n")
            lines += 1
        return lines


def write_timeseries(sampler: Sampler, path: str) -> int:
    """Write the sampler's retained rows as JSONL; returns line count."""
    with open(path, "w", encoding="utf-8") as stream:
        return sampler.write_jsonl(stream)


def load_timeseries(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a JSONL export back: ``(header, sample_rows)``."""
    header: Dict[str, Any] = {}
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "header":
                header = record
                if record.get("schema") != SCHEMA:
                    raise ValueError(
                        f"unexpected time-series schema {record.get('schema')!r}"
                    )
            else:
                rows.append(record)
    return header, rows


# The currently active sampler.  New Simulators pick this up at
# construction time; already-built simulators keep whatever they bound.
_ACTIVE: Optional[Sampler] = None


def activate(sampler: Optional[Sampler] = None) -> Sampler:
    """Install ``sampler`` (or a fresh one) for subsequently built sims."""
    global _ACTIVE
    if sampler is None:
        sampler = Sampler()
    _ACTIVE = sampler
    return sampler


def deactivate() -> None:
    """Restore the disabled default."""
    global _ACTIVE
    _ACTIVE = None


def active_sampler() -> Optional[Sampler]:
    """The sampler new Simulators bind to (None when disabled)."""
    return _ACTIVE


class capture:
    """``with capture(interval=...) as sampler:`` -- scoped activation."""

    __slots__ = ("_sampler", "_previous")

    def __init__(
        self,
        sampler: Optional[Sampler] = None,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        percentiles: Tuple[float, ...] = DEFAULT_PERCENTILES,
    ) -> None:
        self._sampler = (
            sampler
            if sampler is not None
            else Sampler(interval=interval, capacity=capacity, percentiles=percentiles)
        )
        self._previous: Optional[Sampler] = None

    def __enter__(self) -> Sampler:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._sampler
        return self._sampler

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
