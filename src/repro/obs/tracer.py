"""Span tracing clocked off simulated time.

Design constraints, in order:

1. **Determinism.**  Events carry only simulated timestamps and a
   tracer-local sequence number.  The tracer never touches the
   simulator's event heap or its tie-breaking sequence counter, so a
   traced run and an untraced run execute the exact same schedule
   (tested bit-for-bit in ``tests/test_tracer.py``).
2. **Near-zero cost when disabled.**  Instrumentation sites follow the
   pattern ``trace = self.sim.trace`` / ``if trace.enabled:`` -- one
   attribute load and one branch on the fast path.  The module-level
   :data:`NULL_TRACER` answers ``enabled`` with a plain class attribute
   ``False`` and every method is a no-op, so nothing downstream of the
   branch ever runs.
3. **No sim imports.**  ``sim/engine.py`` imports this module; the
   reverse would be a cycle.  Anything that needs cluster types lives in
   :mod:`repro.obs.metrics` instead.

Event model (mirrors the Chrome trace phases we export to):

``complete``
    A span with a start and an end (phase ``"X"``).  Spans in a
    discrete-event simulation interleave freely across processes, so we
    record them as closed intervals rather than nested begin/end pairs.
``instant``
    A point event (phase ``"i"``): a fault injection, a failure
    detection, a solver re-solve.
``count``
    A sampled counter value (phase ``"C"``): journal occupancy, active
    flows.  Renders as a counter track in Perfetto.

Every event also carries a *run* index: one :class:`Tracer` may outlive
several sequential :class:`~repro.sim.engine.Simulator` instances (an
experiment sweeping seeds), and each simulator registers itself on
construction.  The run index becomes the ``pid`` in the Chrome export so
repetitions land on separate tracks.
"""

from __future__ import annotations

from types import TracebackType
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Type

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "activate",
    "deactivate",
    "active_tracer",
    "capture",
]


class TraceEvent:
    """One recorded occurrence; ``dur`` is 0.0 for instants and counts."""

    __slots__ = ("run", "seq", "phase", "category", "name", "ts", "dur", "attrs")

    def __init__(
        self,
        run: int,
        seq: int,
        phase: str,
        category: str,
        name: str,
        ts: float,
        dur: float,
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self.run = run
        self.seq = seq
        self.phase = phase
        self.category = category
        self.name = name
        self.ts = ts
        self.dur = dur
        self.attrs = attrs

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "run": self.run,
            "seq": self.seq,
            "ph": self.phase,
            "cat": self.category,
            "name": self.name,
            "ts": self.ts,
        }
        if self.phase == "X":
            record["dur"] = self.dur
        if self.attrs:
            record["args"] = self.attrs
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.phase!r}, {self.category}/{self.name}, "
            f"ts={self.ts:.6f}, dur={self.dur:.6f}, run={self.run})"
        )


class _Span:
    """Context manager recording a complete event on exit.

    Created by :meth:`Tracer.span`; reads the clock object's ``now`` at
    enter and exit, so it works with a :class:`Simulator` or anything
    else exposing ``now``.
    """

    __slots__ = ("_tracer", "_clock", "_category", "_name", "_attrs", "_t0")

    def __init__(self, tracer: "Tracer", clock: Any, category: str, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._clock = clock
        self._category = category
        self._name = name
        self._attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._clock.now
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self._attrs = dict(self._attrs or {})
            self._attrs["error"] = exc_type.__name__
        self._tracer.complete(
            self._category, self._name, self._t0, self._clock.now, **(self._attrs or {})
        )


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceEvent` records in memory.

    ``enabled`` may be flipped to ``False`` to mute an existing tracer;
    instrumentation sites re-check it on every emission, so the toggle
    takes effect immediately.
    """

    enabled: bool = True

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        """``categories`` restricts recording to the named categories.

        A full trace of a prefilled table-2 run is millions of disk and
        journal events; limiting to, say, ``{"recovery", "fault"}`` keeps
        the file Perfetto-sized while preserving the phase breakdown.
        ``None`` records everything.
        """
        self.events: List[TraceEvent] = []
        self._seq = 0
        self._runs: List[str] = []
        self.current_run = 0
        self.categories: Optional[frozenset] = (
            frozenset(categories) if categories is not None else None
        )

    # -- run bookkeeping ------------------------------------------------
    def register_run(self, label: str = "") -> int:
        """Called by each Simulator; returns its run index (Chrome pid)."""
        index = len(self._runs)
        self._runs.append(label or f"run-{index}")
        self.current_run = index
        return index

    @property
    def run_labels(self) -> Tuple[str, ...]:
        return tuple(self._runs)

    # -- emission -------------------------------------------------------
    def complete(self, category: str, name: str, t0: float, t1: float, **attrs: Any) -> None:
        """Record a closed span [t0, t1] in simulated seconds."""
        if self.categories is not None and category not in self.categories:
            return
        self._seq += 1
        self.events.append(
            TraceEvent(
                self.current_run, self._seq, "X", category, name, t0, t1 - t0, attrs or None
            )
        )

    def instant(self, category: str, name: str, ts: float, **attrs: Any) -> None:
        """Record a point event at simulated time ``ts``."""
        if self.categories is not None and category not in self.categories:
            return
        self._seq += 1
        self.events.append(
            TraceEvent(self.current_run, self._seq, "i", category, name, ts, 0.0, attrs or None)
        )

    def count(self, category: str, name: str, ts: float, value: float) -> None:
        """Record a counter sample (Perfetto counter track)."""
        if self.categories is not None and category not in self.categories:
            return
        self._seq += 1
        self.events.append(
            TraceEvent(
                self.current_run, self._seq, "C", category, name, ts, 0.0, {"value": value}
            )
        )

    def span(self, clock: Any, category: str, name: str, **attrs: Any) -> _Span:
        """Context manager measuring ``clock.now`` at enter/exit."""
        return _Span(self, clock, category, name, attrs)

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``enabled`` is a class attribute so the hot-path check costs a
    single attribute load on the type, with no per-call work.
    """

    enabled = False

    def register_run(self, label: str = "") -> int:
        return 0

    @property
    def run_labels(self) -> Tuple[str, ...]:
        return ()

    def complete(self, category: str, name: str, t0: float, t1: float, **attrs: Any) -> None:
        return None

    def instant(self, category: str, name: str, ts: float, **attrs: Any) -> None:
        return None

    def count(self, category: str, name: str, ts: float, value: float) -> None:
        return None

    def span(self, clock: Any, category: str, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def __len__(self) -> int:
        return 0


#: The process-wide disabled tracer; Simulators default to this.
NULL_TRACER = NullTracer()

# The currently active tracer.  New Simulators pick this up at
# construction time; already-built simulators keep whatever they bound.
_ACTIVE: Any = NULL_TRACER


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) for subsequently built sims."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    """Restore the disabled default."""
    global _ACTIVE
    _ACTIVE = NULL_TRACER


def active_tracer() -> Any:
    """The tracer new Simulators bind to (NULL_TRACER when disabled)."""
    return _ACTIVE


class capture:
    """``with capture() as tracer:`` -- activate for the block's duration."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer if tracer is not None else Tracer()
        self._previous: Any = None

    def __enter__(self) -> Tracer:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._tracer
        return self._tracer

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def iter_spans(events: List[TraceEvent], category: Optional[str] = None) -> Iterator[TraceEvent]:
    """All complete (phase ``"X"``) events, optionally one category."""
    for event in events:
        if event.phase == "X" and (category is None or event.category == category):
            yield event
