"""The span-category taxonomy: every trace category, registered once.

Instrumentation sites across the tree emit events under short category
strings (``trace.complete("disk", ...)``).  Exporters group tracks by
category, ``raidpctl trace`` summarizes per category, and the recovery
breakdown keys its phases off them -- so a typo'd or ad-hoc category
silently drops events from every downstream view.  This table is the
single registry; the ``RDP004`` lint rule (:mod:`repro.lint`) statically
checks that every *literal* category used at an emission site appears
here, so a new category must land together with its registration.

Adding a category is one line: name -> a sentence describing what the
category's events mean and who emits them.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CATEGORIES", "is_registered"]

#: Category name -> what its events record (and the emitting layer).
CATEGORIES: Dict[str, str] = {
    "engine": "Simulation-process lifetimes, emitted by sim/engine.py.",
    "disk": "Platter-level operations (seek/rmw/sync), emitted by sim/disk.py.",
    "net": "Switch flow spans, re-solve instants, and active-flow counters, "
    "emitted by sim/network.py.",
    "hdfs": "Client-visible block operations (write_block, read_block, "
    "read_failover, pipeline_recover, degraded_read), emitted by "
    "hdfs/client.py and core/client.py.",
    "dn": "DataNode-side replica writes/reads, emitted by hdfs/datanode.py.",
    "recovery": "Failure detection instants and recovery windows/plans, "
    "emitted by core/monitor.py and core/recovery.py.",
    "fault": "Fault-injection instants (disk_fail, node_crash, ...), "
    "emitted by faults.py.",
    "journal": "Journal occupancy counter samples, emitted by core/journal.py.",
    "bench": "Synthetic spans emitted by the perf harness (tools/bench.py).",
    "workload": "Application-level workload drivers (DFSIO, TeraSort, "
    "WordCount task loops), attributed by obs/simprofile.py.",
    "durability": "Long-horizon durability-engine events (loss-risk "
    "instants, per-trial spans), emitted by analysis/montecarlo.py.",
    "fleet": "Fleet-level state samples (dead-disk counters, merged "
    "rack-outage segments), emitted by analysis/montecarlo.py.",
    "telemetry": "Flight-recorder time-series samples (counter/gauge/"
    "percentile values at sampler ticks), emitted by obs/timeseries.py.",
    "audit": "Redundancy invariant auditor instants (checks run, "
    "violations raised), emitted by obs/audit.py.",
    "slo": "SLO-engine verdict instants (burn-rate evaluations over "
    "sampler windows), emitted by obs/slo.py.",
}


def is_registered(category: str) -> bool:
    """True if ``category`` is a registered span category."""
    return category in CATEGORIES
