"""Cluster-wide metrics registry: one MetricSet over every component.

The simulator's components each keep their own cheap always-on
instruments -- per-disk :class:`~repro.sim.stats.DiskStats` counters, a
queue-depth :class:`~repro.sim.stats.TimeWeightedGauge` and an I/O
latency :class:`~repro.sim.stats.Histogram` on every :class:`Disk`, an
active-flow gauge on the :class:`Switch`, and an outstanding-record
gauge per journal.  This module gathers them into a single labeled
:class:`~repro.sim.stats.MetricSet` so an experiment (or ``raidpctl``)
can snapshot the whole cluster in one call.

``cluster_metrics`` *registers* the live gauge/histogram objects (no
copies -- the registry views the same instruments the components
mutate), so one registry can be built early and snapshotted repeatedly.
``cluster_snapshot`` is the one-shot convenience: build, register, and
return ``as_dict(now)``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.stats import MetricSet


def cluster_metrics(dfs: Any, metrics: Optional[MetricSet] = None) -> MetricSet:
    """Register every component instrument of ``dfs`` into one registry.

    Counters are set to the components' *current* cumulative values
    (re-registering refreshes them); gauges and histograms are the live
    objects themselves.  Labels identify the component: ``disk=<name>``,
    ``dn=<name>``, ``journal=<name>``.
    """
    metrics = metrics if metrics is not None else MetricSet()
    now = dfs.sim.now

    for datanode in dfs.datanodes:
        disk = datanode.disk
        name = disk.name
        stats = disk.stats
        metrics.counter("disk_reads", disk=name).value = stats.reads
        metrics.counter("disk_writes", disk=name).value = stats.writes
        metrics.counter("disk_bytes_read", disk=name).value = stats.bytes_read
        metrics.counter("disk_bytes_written", disk=name).value = (
            stats.bytes_written
        )
        metrics.counter("disk_seeks", disk=name).value = stats.seeks
        metrics.register_gauge("disk_queue_depth", disk.queue_gauge, disk=name)
        metrics.register_histogram("disk_io_latency", disk.io_latency, disk=name)

        metrics.counter("dn_blocks_written", dn=datanode.name).value = (
            datanode.stats_blocks_written
        )
        metrics.counter("dn_blocks_read", dn=datanode.name).value = (
            datanode.stats_blocks_read
        )

        lstors = getattr(datanode, "lstors", None)
        if lstors is not None:
            for lstor in lstors.lstors:
                journal = lstor.journal
                metrics.register_gauge(
                    "journal_outstanding",
                    journal.outstanding_gauge,
                    journal=lstor.name,
                )
                metrics.counter("journal_appends", journal=lstor.name).value = (
                    journal.total_appends
                )
                metrics.counter("journal_clears", journal=lstor.name).value = (
                    journal.total_clears
                )
                metrics.counter(
                    "journal_used_bytes", journal=lstor.name
                ).value = journal.used_bytes

    switch = dfs.switch
    metrics.counter("net_bytes_total").value = switch.total_bytes
    metrics.register_gauge("net_active_flows", switch.flows_gauge)

    # Blocks below their replication target right now: the cluster's
    # exposure to the next failure.
    at_risk = metrics.gauge("blocks_at_risk", now=now)
    at_risk.set(float(len(dfs.namenode.under_replicated())), now)
    return metrics


def cluster_snapshot(dfs: Any, now: Optional[float] = None) -> dict:
    """One-shot metrics snapshot of the whole cluster."""
    metrics = cluster_metrics(dfs)
    return metrics.as_dict(now=now if now is not None else dfs.sim.now)
