"""Cluster-wide metrics registry: one MetricSet over every component.

The simulator's components each keep their own cheap always-on
instruments -- per-disk :class:`~repro.sim.stats.DiskStats` counters, a
queue-depth :class:`~repro.sim.stats.TimeWeightedGauge` and an I/O
latency :class:`~repro.sim.stats.Histogram` on every :class:`Disk`, an
active-flow gauge on the :class:`Switch`, and an outstanding-record
gauge per journal.  This module gathers them into a single labeled
:class:`~repro.sim.stats.MetricSet` so an experiment (or ``raidpctl``
or the flight-recorder :class:`~repro.obs.timeseries.Sampler`) can
snapshot the whole cluster in one call.

``cluster_metrics`` registers *live views*: gauges and histograms are
the component-owned objects themselves, and component counts (plain int
attributes on ``DiskStats``, datanodes, clients) are exposed through
read-only :class:`~repro.sim.stats.CounterView` suppliers that re-read
the component on every access.  One registry built at cluster
construction therefore stays correct for the cluster's whole lifetime
-- there is nothing to refresh.  ``cluster_snapshot`` is the one-shot
convenience: build, register, and return ``as_dict(now)``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.stats import MetricSet


def cluster_metrics(
    dfs: Any,
    metrics: Optional[MetricSet] = None,
    monitor: Optional[Any] = None,
) -> MetricSet:
    """Register every component instrument of ``dfs`` into one registry.

    Counters are live read-only views over the components' cumulative
    counts (the registry never goes stale); gauges and histograms are
    the live objects themselves.  Labels identify the component:
    ``disk=<name>``, ``dn=<name>``, ``journal=<name>``,
    ``client=<index>``.  Passing a :class:`ClusterMonitor` additionally
    registers recovery repair-traffic views (``repair_bytes_total``,
    ``recoveries_total``, ``recovery_errors_total``).
    """
    metrics = metrics if metrics is not None else MetricSet()

    for datanode in dfs.datanodes:
        disk = datanode.disk
        name = disk.name
        stats = disk.stats
        metrics.register_counter("disk_reads", lambda s=stats: s.reads, disk=name)
        metrics.register_counter("disk_writes", lambda s=stats: s.writes, disk=name)
        metrics.register_counter(
            "disk_bytes_read", lambda s=stats: s.bytes_read, disk=name
        )
        metrics.register_counter(
            "disk_bytes_written", lambda s=stats: s.bytes_written, disk=name
        )
        metrics.register_counter("disk_seeks", lambda s=stats: s.seeks, disk=name)
        metrics.register_gauge("disk_queue_depth", disk.queue_gauge, disk=name)
        metrics.register_histogram("disk_io_latency", disk.io_latency, disk=name)

        metrics.register_counter(
            "dn_blocks_written",
            lambda d=datanode: d.stats_blocks_written,
            dn=datanode.name,
        )
        metrics.register_counter(
            "dn_blocks_read",
            lambda d=datanode: d.stats_blocks_read,
            dn=datanode.name,
        )

        lstors = getattr(datanode, "lstors", None)
        if lstors is not None:
            for lstor in lstors.lstors:
                journal = lstor.journal
                metrics.register_gauge(
                    "journal_outstanding",
                    journal.outstanding_gauge,
                    journal=lstor.name,
                )
                metrics.register_counter(
                    "journal_appends",
                    lambda j=journal: j.total_appends,
                    journal=lstor.name,
                )
                metrics.register_counter(
                    "journal_clears",
                    lambda j=journal: j.total_clears,
                    journal=lstor.name,
                )
                metrics.register_counter(
                    "journal_used_bytes",
                    lambda j=journal: j.used_bytes,
                    journal=lstor.name,
                )

    for index, client in enumerate(getattr(dfs, "clients", ()) or ()):
        if hasattr(client, "stats_pipeline_recoveries"):
            metrics.register_counter(
                "client_pipeline_recoveries",
                lambda c=client: c.stats_pipeline_recoveries,
                client=index,
            )
        if hasattr(client, "stats_read_failovers"):
            metrics.register_counter(
                "client_read_failovers",
                lambda c=client: c.stats_read_failovers,
                client=index,
            )
        if hasattr(client, "stats_degraded_reads"):
            metrics.register_counter(
                "client_degraded_reads",
                lambda c=client: c.stats_degraded_reads,
                client=index,
            )

    switch = dfs.switch
    metrics.register_counter("net_bytes_total", lambda s=switch: s.total_bytes)
    metrics.register_gauge("net_active_flows", switch.flows_gauge)

    # Blocks below their replication target right now: the cluster's
    # exposure to the next failure.  A live view -- the sampler reads it
    # at every tick, so the recovery-window exposure curve is visible.
    namenode = dfs.namenode
    metrics.register_gauge_view(
        "blocks_at_risk", lambda n=namenode: float(len(n.under_replicated()))
    )

    if monitor is not None:
        metrics.register_counter(
            "repair_bytes_total", lambda m=monitor: _repair_bytes(m)
        )
        metrics.register_counter(
            "recoveries_total", lambda m=monitor: len(m.reports)
        )
        metrics.register_counter(
            "recovery_errors_total", lambda m=monitor: len(m.recovery_errors)
        )
    return metrics


def _repair_bytes(monitor: Any) -> int:
    """Cumulative repair traffic implied by the monitor's reports.

    Reconstruction bytes are recorded directly; each remirrored
    superchunk moves one superchunk of payload from sender to receiver.
    """
    total = 0
    layout = getattr(monitor.dfs, "layout", None)
    superchunk_size = layout.spec.superchunk_size if layout is not None else 0
    for report in monitor.reports:
        total += report.bytes_reconstructed
        total += len(report.remirrored) * superchunk_size
    return total


def cluster_snapshot(dfs: Any, now: Optional[float] = None) -> dict:
    """One-shot metrics snapshot of the whole cluster."""
    metrics = cluster_metrics(dfs)
    return metrics.as_dict(now=now if now is not None else dfs.sim.now)
