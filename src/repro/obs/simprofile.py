"""Deterministic hot-path profiler for the simulation event loop.

Answers "where do the events, the simulated time, and the wall-clock
time go?" for any simulated run, attributed to *process/callsite
buckets*: the code object a dispatched entry resumes (a process body's
generator frame, a bound callback's method, a bare deferred function),
classified under the span categories registered in
:mod:`repro.obs.taxonomy`.

Design constraints, mirroring :mod:`repro.obs.tracer`:

1. **Determinism.**  Attribution never touches the simulator's schedule
   or its tie-breaking sequence counter, so a profiled run executes the
   exact same schedule as an unprofiled one (tested bit-for-bit in
   ``tests/test_profile.py``).  Event counts and simulated-time totals
   are therefore exactly reproducible; wall-clock samples are
   measurements of the host and naturally vary between runs, but their
   bucket keys do not.
2. **Zero cost when disabled.**  The engine consults
   :func:`active_profiler` once per ``run()`` call -- never per event --
   and takes the ordinary inlined drain loop when no profiler is
   active.  The ``profile_overhead`` bench kernel guards this.
3. **No sim imports.**  ``sim/engine.py`` imports this module; the
   reverse would be a cycle, so classification duck-types dispatched
   entries (``_callbacks`` / ``fn`` / ``body``) instead of naming
   engine classes.

This module is allow-listed for ``RDP001``: a wall-clock profiler
exists to read the host clock.
"""

from __future__ import annotations

import time
from math import fsum
from types import CodeType, TracebackType
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.obs.taxonomy import is_registered

__all__ = [
    "BucketStats",
    "SimProfiler",
    "activate",
    "deactivate",
    "active_profiler",
    "capture",
    "classify_code",
]

#: Bucket key: (taxonomy category, "module:qualname" callsite label).
BucketKey = Tuple[str, str]

#: ``sim/`` modules whose callsites deserve their own category.
_SIM_MODULE_CATEGORIES = {
    "disk.py": "disk",
    "network.py": "net",
}

#: ``core/`` modules mapped onto the taxonomy of their emission sites.
_CORE_MODULE_CATEGORIES = {
    "client.py": "hdfs",
    "journal.py": "journal",
    "recovery.py": "recovery",
    "monitor.py": "recovery",
    "lstor.py": "disk",
}


def classify_code(code: CodeType) -> BucketKey:
    """Map a code object to its (category, callsite-label) bucket.

    The category comes from the defining module's place in the tree --
    the same layer boundaries the trace taxonomy documents -- and the
    label is ``module:qualname`` so two callsites in one file stay
    distinct.  Unknown locations fall back to the ``engine`` category
    rather than inventing unregistered ones.
    """
    filename = code.co_filename.replace("\\", "/")
    parts = filename.split("/")
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[index + 1:]
    else:
        rel = parts[-1:]
    category = "engine"
    if rel:
        leaf = rel[-1]
        if rel[0] == "sim":
            category = _SIM_MODULE_CATEGORIES.get(leaf, "engine")
        elif rel[0] == "core":
            category = _CORE_MODULE_CATEGORIES.get(leaf, "engine")
        elif rel[0] == "hdfs":
            category = "dn" if leaf == "datanode.py" else "hdfs"
        elif rel[0] == "workloads":
            category = "workload"
        elif rel[0] == "analysis":
            category = "durability"
        elif rel[0] == "tools":
            category = "bench"
        elif leaf == "faults.py":
            category = "fault"
    if not is_registered(category):  # pragma: no cover - registry guards this
        category = "engine"
    module = rel[-1][:-3] if rel and rel[-1].endswith(".py") else "?"
    qualname = getattr(code, "co_qualname", code.co_name)
    return category, f"{module}:{qualname}"


class BucketStats:
    """Accumulated attribution for one (category, callsite) bucket."""

    __slots__ = ("category", "callsite", "events", "sim_seconds", "wall_seconds")

    def __init__(self, category: str, callsite: str) -> None:
        self.category = category
        self.callsite = callsite
        self.events = 0
        self.sim_seconds = 0.0
        self.wall_seconds = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "category": self.category,
            "callsite": self.callsite,
            "events": self.events,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
        }


class SimProfiler:
    """Collects per-bucket dispatch counts, simulated time and wall time.

    One profiler may observe several sequential simulators (an
    experiment sweeping seeds); buckets accumulate across all of them.
    ``enabled`` may be flipped to ``False`` to mute an existing profiler;
    the engine re-checks it at every ``run()`` entry.
    """

    enabled: bool = True

    #: The wall clock used around each dispatch; engine code calls this
    #: through the profiler so the clock read stays inside this module.
    clock = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self.buckets: Dict[BucketKey, BucketStats] = {}
        self._code_cache: Dict[CodeType, BucketKey] = {}

    # -- attribution ----------------------------------------------------
    def bucket_for(self, entry: Any) -> BucketKey:
        """The bucket a schedule entry belongs to, read *before* dispatch.

        The consumer -- the callback (or first of several) the dispatch
        will run -- identifies the callsite better than the event object
        itself: a Timeout is anonymous, but the process body it resumes
        is exactly the code that asked for the delay.
        """
        callbacks = getattr(entry, "_callbacks", None)
        if callbacks is None:
            target = getattr(entry, "fn", None)
            if target is None:
                # A triggered event nobody waits on (fire-and-forget).
                return ("engine", f"engine:{type(entry).__name__}.orphan")
        elif type(callbacks) is list:
            target = callbacks[0] if callbacks else entry
        else:
            target = callbacks
        func = getattr(target, "__func__", None)
        if func is not None:
            # Bound method: a process resume attributes to the process
            # *body* (the real callsite); other methods to themselves.
            body = getattr(target.__self__, "body", None)
            code = getattr(body, "gi_code", None)
            if code is None:
                code = func.__code__
        else:
            code = getattr(target, "__code__", None)
            if code is None:
                return ("engine", f"engine:{type(target).__name__}")
        key = self._code_cache.get(code)
        if key is None:
            key = classify_code(code)
            self._code_cache[code] = key
        return key

    def record(self, key: BucketKey, sim_dt: float, wall_dt: float) -> None:
        """Account one dispatched entry to ``key``."""
        stats = self.buckets.get(key)
        if stats is None:
            stats = BucketStats(key[0], key[1])
            self.buckets[key] = stats
        stats.events += 1
        stats.sim_seconds += sim_dt
        stats.wall_seconds += wall_dt

    # -- reporting ------------------------------------------------------
    def ranked(self) -> List[BucketStats]:
        """Buckets hottest-first: wall time, then events, then label.

        The label tie-break keeps the report deterministic when wall
        samples tie (e.g. all-zero on a mocked clock).
        """
        return sorted(
            self.buckets.values(),
            key=lambda b: (-b.wall_seconds, -b.events, b.category, b.callsite),
        )

    def totals(self) -> Dict[str, Any]:
        ranked = self.buckets.values()
        return {
            "events": sum(b.events for b in ranked),
            "sim_seconds": fsum(b.sim_seconds for b in ranked),
            "wall_seconds": fsum(b.wall_seconds for b in ranked),
            "buckets": len(self.buckets),
        }

    def __len__(self) -> int:
        return len(self.buckets)


# The currently active profiler.  New Simulators pick this up at
# construction time; already-built simulators keep whatever they bound.
_ACTIVE: Optional[SimProfiler] = None


def activate(profiler: Optional[SimProfiler] = None) -> SimProfiler:
    """Install ``profiler`` (or a fresh one) for subsequently built sims."""
    global _ACTIVE
    if profiler is None:
        profiler = SimProfiler()
    _ACTIVE = profiler
    return profiler


def deactivate() -> None:
    """Restore the disabled default."""
    global _ACTIVE
    _ACTIVE = None


def active_profiler() -> Optional[SimProfiler]:
    """The profiler new Simulators bind to (None when disabled)."""
    return _ACTIVE


class capture:
    """``with capture() as profiler:`` -- activate for the block's duration."""

    __slots__ = ("_profiler", "_previous")

    def __init__(self, profiler: Optional[SimProfiler] = None) -> None:
        self._profiler = profiler if profiler is not None else SimProfiler()
        self._previous: Optional[SimProfiler] = None

    def __enter__(self) -> SimProfiler:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._profiler
        return self._profiler

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
