"""Redundancy invariant auditor: the paper's state invariants, checked live.

The paper's §2-§3 redundancy argument rests on state invariants the
implementation is supposed to preserve at every instant -- every block
has two replicas *or* is enumerated as degraded/at-risk, each Lstor's
parity covers exactly the live chunks of its tracked disks, remirror
rollback leaves no orphaned superchunks, and the network solver
conserves flows.  Tests assert these at the *end* of a scenario; this
module checks them *throughout*: an :class:`Auditor` probes the cluster
at flight-recorder sample points and on fault/recovery events, raising
structured :class:`AuditViolation` records (fail-fast in tests,
recorded for the chaos health report).

Everything is observer-only: checks read component state, never mutate
it and never touch the schedule, so audited runs are bitwise-identical
to unaudited ones.  Expensive content checks (parity XOR, mirror
equality, replica presence) run only at ``final`` audits where the
cluster is quiescent; per-tick checks are metadata-only.

Violations carry a ``waived`` flag: chaos knows its fault windows
(injection until recovery completion), during which "replica on a dead
node" is the *expected* detection lag rather than a bug.
:meth:`Auditor.waive_between` applies those windows post-hoc so the
acceptance bar is "zero **un-waived** violations".
"""

from __future__ import annotations

from dataclasses import dataclass
from types import TracebackType
from typing import Any, Dict, List, Optional, Set, Tuple, Type

from repro.errors import AuditError, DfsError, LayoutError

__all__ = [
    "AuditViolation",
    "Auditor",
    "activate",
    "deactivate",
    "active_auditor",
    "capture",
]

#: Events that trigger the deeper (metadata-graph) checks on top of the
#: cheap per-tick ones.
DEEP_EVENTS = ("detect", "recovered", "final")


@dataclass
class AuditViolation:
    """One invariant failure observed at one instant."""

    check: str
    ts: float
    subject: str
    detail: str
    event: str = "sample"
    waived: bool = False
    waiver: str = ""

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "check": self.check,
            "ts": self.ts,
            "subject": self.subject,
            "detail": self.detail,
            "event": self.event,
        }
        if self.waived:
            record["waived"] = True
            record["waiver"] = self.waiver
        return record


@dataclass
class _Attachment:
    """What one audited cluster exposes (all optional, duck-typed)."""

    dfs: Any
    monitor: Optional[Any] = None


class Auditor:
    """Runs the invariant catalogue against an attached cluster.

    ``fail_fast=True`` (the test posture) raises :class:`AuditError` on
    the first violation; the default records and continues (the chaos
    posture).  ``enabled`` may be flipped to ``False`` to mute an
    installed auditor.
    """

    enabled: bool = True

    def __init__(self, fail_fast: bool = False) -> None:
        self.fail_fast = fail_fast
        self.violations: List[AuditViolation] = []
        self.checks_run = 0
        self.audits_run = 0
        self._attachment: Optional[_Attachment] = None

    # -- wiring ---------------------------------------------------------
    def attach(self, dfs: Any, monitor: Optional[Any] = None) -> None:
        """Point the auditor at a cluster facade (and optionally its
        monitor).  Probes are no-ops until attached."""
        self._attachment = _Attachment(dfs=dfs, monitor=monitor)

    def on_sample(self, sim: Any, now: float) -> None:
        """Sampler hook signature: cheap checks at every tick."""
        self.audit(sim, now, event="sample")

    # -- the catalogue --------------------------------------------------
    def audit(self, sim: Any, now: float, event: str = "sample") -> List[AuditViolation]:
        """Run the checks appropriate for ``event``; returns new records.

        ``sample`` runs the metadata-cheap subset; ``detect`` /
        ``recovered`` add the layout-graph checks; ``final`` adds the
        content checks (parity XOR, mirror equality, replica presence)
        that require a quiescent cluster.
        """
        attachment = self._attachment
        if attachment is None or not self.enabled:
            return []
        dfs = attachment.dfs
        before = len(self.violations)
        self.audits_run += 1
        self._check_replication(dfs, now, event)
        self._check_flows(dfs, now, event)
        self._check_disks(dfs, now, event)
        if event in DEEP_EVENTS:
            self._check_layout(dfs, now, event)
            self._check_superchunk_homes(dfs, now, event)
        if event == "final":
            self._check_presence(dfs, now, event)
            self._check_parity(dfs, now, event)
        new = self.violations[before:]
        trace = getattr(sim, "trace", None)
        if trace is not None and trace.enabled:
            trace.instant(
                "audit", event, ts=now, checks=self.checks_run, violations=len(new)
            )
        return new

    # -- waivers and reporting ------------------------------------------
    def waive_between(
        self, windows: List[Tuple[float, float]], reason: str
    ) -> int:
        """Waive violations whose timestamp falls inside any window.

        Chaos passes its (injection, recovery-completion) windows: a
        replica listed on a dead node *during detection lag* is the
        protocol working as designed, not an invariant break.  Returns
        the number of newly waived records.
        """
        waived = 0
        for violation in self.violations:
            if violation.waived:
                continue
            for start, end in windows:
                if start <= violation.ts <= end:
                    violation.waived = True
                    violation.waiver = reason
                    waived += 1
                    break
        return waived

    def unwaived(self) -> List[AuditViolation]:
        return [v for v in self.violations if not v.waived]

    def summary(self) -> Dict[str, Any]:
        return {
            "audits": self.audits_run,
            "checks": self.checks_run,
            "violations": len(self.violations),
            "unwaived": len(self.unwaived()),
            "records": [v.as_dict() for v in self.violations],
        }

    # -- individual checks ----------------------------------------------
    def _record(
        self, check: str, ts: float, subject: str, detail: str, event: str
    ) -> None:
        violation = AuditViolation(
            check=check, ts=ts, subject=subject, detail=detail, event=event
        )
        self.violations.append(violation)
        if self.fail_fast:
            raise AuditError(f"[{check}] {subject} at t={ts:.3f}: {detail}")

    def _check_replication(self, dfs: Any, now: float, event: str) -> None:
        """Every block is fully replicated or enumerated as degraded.

        Metadata-only: replica lists reference existing datanodes, carry
        no duplicates, never exceed the replication target, and any
        short block shows up in ``under_replicated()``/``lost_blocks()``
        (the lists recovery works from).  Replicas listed on dead nodes
        are flagged -- expected during detection lag, hence waivable.
        """
        namenode = getattr(dfs, "namenode", None)
        if namenode is None:
            return
        self.checks_run += 1
        replication = dfs.config.replication
        degraded = {
            loc.block.block_id for loc in namenode.under_replicated()
        } | {loc.block.block_id for loc in namenode.lost_blocks()}
        for locations in namenode.all_blocks():
            block = locations.block
            replicas = locations.datanodes
            if len(set(replicas)) != len(replicas):
                self._record(
                    "replication", now, block.name,
                    f"duplicate replica entries {replicas}", event,
                )
            if len(replicas) > replication:
                self._record(
                    "replication", now, block.name,
                    f"{len(replicas)} replicas exceed target {replication}",
                    event,
                )
            if len(replicas) < replication and block.block_id not in degraded:
                self._record(
                    "replication", now, block.name,
                    f"short ({len(replicas)}/{replication}) but not "
                    "enumerated as degraded", event,
                )
            for name in replicas:
                try:
                    datanode = namenode.datanode(name)
                except DfsError:
                    self._record(
                        "replication", now, block.name,
                        f"replica on unknown datanode {name}", event,
                    )
                    continue
                if not datanode.alive:
                    self._record(
                        "replica-liveness", now, block.name,
                        f"replica listed on dead datanode {name}", event,
                    )

    def _check_flows(self, dfs: Any, now: float, event: str) -> None:
        """Network-solver flow conservation (delegated to the switch)."""
        switch = getattr(dfs, "switch", None)
        audit = getattr(switch, "audit_flow_conservation", None)
        if audit is None:
            return
        self.checks_run += 1
        for problem in audit():
            self._record("flow-conservation", now, switch.name, problem, event)

    def _check_disks(self, dfs: Any, now: float, event: str) -> None:
        """Per-disk accounting sanity (delegated to each disk)."""
        datanodes = getattr(dfs, "datanodes", None)
        if not datanodes:
            return
        self.checks_run += 1
        for datanode in datanodes:
            audit = getattr(datanode.disk, "audit_state", None)
            if audit is None:
                continue
            for problem in audit():
                self._record("disk-state", now, datanode.disk.name, problem, event)

    def _check_layout(self, dfs: Any, now: float, event: str) -> None:
        """The layout's own invariants (1-sharing, slot tables, caps)."""
        layout = getattr(dfs, "layout", None)
        if layout is None:
            return
        self.checks_run += 1
        try:
            layout.verify()
        except LayoutError as exc:
            self._record("layout", now, "layout", str(exc), event)

    def _check_superchunk_homes(self, dfs: Any, now: float, event: str) -> None:
        """No silently orphaned superchunks after remirror/rollback.

        A superchunk with fewer than two live homes must be *accounted
        for*: frozen (recovery in flight) or named by a degraded block.
        Fires during fault windows (waived by chaos); after recovery
        completes it must be clean.
        """
        layout = getattr(dfs, "layout", None)
        sc_map = getattr(dfs, "map", None)
        if layout is None or sc_map is None:
            return
        self.checks_run += 1
        superchunks = getattr(layout, "_superchunks", None)
        if superchunks is None:
            return
        namenode = getattr(dfs, "namenode", None)
        degraded_scs: Set[int] = set()
        if namenode is not None:
            for loc in namenode.under_replicated():
                if loc.sc_id is not None:
                    degraded_scs.add(loc.sc_id)
            for loc in namenode.lost_blocks():
                if loc.sc_id is not None:
                    degraded_scs.add(loc.sc_id)
        disks = layout.disks
        for sc in superchunks.values():
            live = [d for d in (sc.disk_a, sc.disk_b) if d in disks]
            if len(live) >= 2:
                continue
            if sc_map.is_frozen(sc.sc_id):
                continue  # mid-recovery, intentionally single-homed
            if sc.sc_id in degraded_scs:
                continue  # enumerated: recovery knows about it
            if sc_map.used_slots(sc.sc_id) == 0:
                continue  # empty superchunk: nothing at risk
            self._record(
                "superchunk-orphan", now, f"sc{sc.sc_id}",
                f"{len(live)} live home(s), not frozen and not enumerated "
                "as degraded", event,
            )

    def _check_presence(self, dfs: Any, now: float, event: str) -> None:
        """Alive replicas actually hold their blocks (quiescent only)."""
        namenode = getattr(dfs, "namenode", None)
        if namenode is None:
            return
        self.checks_run += 1
        for locations in namenode.all_blocks():
            for name in locations.datanodes:
                datanode = namenode.datanode(name)
                if datanode.alive and not datanode.has_block(locations.block.name):
                    self._record(
                        "replica-presence", now, locations.block.name,
                        f"alive datanode {name} does not hold the block",
                        event,
                    )

    def _check_parity(self, dfs: Any, now: float, event: str) -> None:
        """Lstor parity covers exactly the live chunks (quiescent only).

        Reuses the cluster's own verifiers -- they already encode the
        guards (dead/evicted datanodes, failed Lstors) -- but converts
        the raise into a structured record.  Skipped while any journal
        record is outstanding: parity legitimately trails the data until
        the journal clears.
        """
        verify_parity = getattr(dfs, "verify_parity", None)
        if verify_parity is None:
            return
        journals_empty = getattr(dfs, "journals_empty", None)
        if journals_empty is not None and not journals_empty():
            return
        self.checks_run += 1
        try:
            verify_parity()
        except LayoutError as exc:
            self._record("parity-coverage", now, "lstor", str(exc), event)
        verify_mirrors = getattr(dfs, "verify_mirrors", None)
        if verify_mirrors is not None:
            self.checks_run += 1
            try:
                verify_mirrors()
            except LayoutError as exc:
                self._record("mirror-equality", now, "mirrors", str(exc), event)


# The currently active auditor.  Monitor/recovery probe sites consult
# this on their (rare) events; None means auditing is off.
_ACTIVE: Optional[Auditor] = None


def activate(auditor: Optional[Auditor] = None) -> Auditor:
    """Install ``auditor`` (or a fresh one) as the ambient auditor."""
    global _ACTIVE
    if auditor is None:
        auditor = Auditor()
    _ACTIVE = auditor
    return auditor


def deactivate() -> None:
    """Restore the disabled default."""
    global _ACTIVE
    _ACTIVE = None


def active_auditor() -> Optional[Auditor]:
    """The ambient auditor (None when auditing is off)."""
    return _ACTIVE


class capture:
    """``with capture(fail_fast=True) as auditor:`` -- scoped activation."""

    __slots__ = ("_auditor", "_previous")

    def __init__(
        self, auditor: Optional[Auditor] = None, fail_fast: bool = False
    ) -> None:
        self._auditor = auditor if auditor is not None else Auditor(fail_fast=fail_fast)
        self._previous: Optional[Auditor] = None

    def __enter__(self) -> Auditor:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._auditor
        return self._auditor

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
