"""Observability: span tracing, metric collection, and trace export.

The package is deliberately dependency-free in the direction that
matters: :mod:`repro.obs.tracer` imports nothing from the simulation
stack, so ``sim/engine.py`` can import it without cycles.  All event
timestamps are *simulated* seconds -- never wall clock -- so traces are
as deterministic as the runs that produce them.
"""

from repro.obs.export import (
    load_trace,
    recovery_breakdown,
    render_summary,
    summarize,
    write_trace,
)
from repro.obs.metrics import cluster_metrics, cluster_snapshot
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    activate,
    active_tracer,
    capture,
    deactivate,
)

__all__ = [
    "NULL_TRACER",
    "Tracer",
    "activate",
    "active_tracer",
    "capture",
    "cluster_metrics",
    "cluster_snapshot",
    "deactivate",
    "load_trace",
    "recovery_breakdown",
    "render_summary",
    "summarize",
    "write_trace",
]
