"""Declarative SLOs over flight-recorder windows, and the health report.

ROADMAP item 4 frames the north star as tail-latency SLOs under
recovery storms.  This module supplies the evaluation half: an
:class:`SloSpec` names a time-series (a :class:`~repro.obs.timeseries`
series such as ``disk_io_latency:p99``), an objective, and an error
budget; :func:`evaluate_slos` scores specs over sampler windows --
optionally split into named phases (pre-fault / fault / recovery /
drain) -- computing the *burn rate*: the fraction of samples out of
objective divided by the budgeted fraction.  Burn <= 1 means the window
lived within its budget.

:func:`health_report` bundles per-phase series statistics, SLO
verdicts, audit findings, and repair-traffic accounting into one
JSON-serializable dict (the chaos artifact), and :func:`render_dash`
draws it for a terminal: per-phase sparklines plus verdicts -- the
``raidpctl dash`` renderer.

Stdlib-only and observer-only, like the rest of the flight recorder:
everything here *reads* a sampler's store after (or between) runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from math import fsum, inf
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SloSpec",
    "SloResult",
    "default_slos",
    "evaluate_slos",
    "health_report",
    "render_dash",
    "sparkline",
    "load_health_report",
    "write_health_report",
    "HEALTH_SCHEMA",
]

#: Schema tag stamped on every health report.
HEALTH_SCHEMA = "raidp-health-v1"

#: Glyph ramp for terminal sparklines (deterministic, 8 levels).
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Series the per-phase breakdown always summarizes when present.
KEY_SERIES = (
    "disk_io_latency:p50",
    "disk_io_latency:p99",
    "disk_io_latency:count",
    "blocks_at_risk",
    "net_active_flows",
    "repair_bytes_total",
)


@dataclass(frozen=True)
class SloSpec:
    """One objective over one time-series.

    ``mode="each"`` scores every sample in the window against the
    objective and burns the error budget by the out-of-objective
    fraction.  ``mode="final"`` scores only the last sample (cumulative
    budgets -- e.g. total repair bytes -- where intermediate values are
    by construction below the final one).
    """

    name: str
    series: str
    objective: float
    comparison: str = "<="  # "<=" or ">="
    budget: float = 0.0  # allowed out-of-objective sample fraction
    mode: str = "each"  # "each" or "final"
    unit: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in ("<=", ">="):
            raise ValueError(f"unknown comparison {self.comparison!r}")
        if self.mode not in ("each", "final"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if not 0.0 <= self.budget < 1.0:
            raise ValueError("budget must be a fraction in [0, 1)")

    def meets(self, value: float) -> bool:
        if self.comparison == "<=":
            return value <= self.objective
        return value >= self.objective


@dataclass
class SloResult:
    """The verdict of one spec over one window."""

    spec: SloSpec
    samples: int
    breaches: int
    burn_rate: float
    ok: bool
    worst: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.spec.name,
            "series": self.spec.series,
            "objective": self.spec.objective,
            "comparison": self.spec.comparison,
            "budget": self.spec.budget,
            "mode": self.spec.mode,
            "unit": self.spec.unit,
            "samples": self.samples,
            "breaches": self.breaches,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
            "worst": self.worst,
        }


def default_slos() -> Tuple[SloSpec, ...]:
    """The chaos recovery-storm defaults.

    Latency objectives come from the disk model's service-time scale
    (an uncontended I/O is ~5-20 ms; queueing under recovery pushes the
    tail); the at-risk objective allows a small budget because the
    recovery window legitimately exposes blocks until remirroring
    completes; the repair budget is a generous cumulative ceiling that
    flags runaway re-replication loops rather than normal repair.
    """
    gib = float(1 << 30)
    return (
        SloSpec(
            "disk-p50-latency", "disk_io_latency:p50", 0.05,
            comparison="<=", budget=0.05, unit="s",
        ),
        SloSpec(
            "disk-p99-latency", "disk_io_latency:p99", 0.5,
            comparison="<=", budget=0.05, unit="s",
        ),
        SloSpec(
            "blocks-at-risk", "blocks_at_risk", 0.0,
            comparison="<=", budget=0.25,
        ),
        SloSpec(
            "repair-traffic", "repair_bytes_total", 64.0 * gib,
            comparison="<=", mode="final", unit="B",
        ),
    )


def _window(
    points: Sequence[Tuple[float, float]], t0: Optional[float], t1: Optional[float]
) -> List[Tuple[float, float]]:
    return [
        (ts, value)
        for ts, value in points
        if (t0 is None or ts >= t0) and (t1 is None or ts <= t1)
    ]


def evaluate_slo(
    spec: SloSpec, points: Sequence[Tuple[float, float]]
) -> SloResult:
    """Score one spec over one window of ``(ts, value)`` samples."""
    values = [value for _ts, value in points]
    if not values:
        return SloResult(spec=spec, samples=0, breaches=0, burn_rate=0.0, ok=True)
    if spec.mode == "final":
        final = values[-1]
        ok = spec.meets(final)
        burn = (final / spec.objective) if spec.objective else (inf if not ok else 0.0)
        return SloResult(
            spec=spec, samples=len(values), breaches=0 if ok else 1,
            burn_rate=burn, ok=ok, worst=final,
        )
    breaches = sum(0 if spec.meets(value) else 1 for value in values)
    fraction = breaches / len(values)
    if spec.budget > 0.0:
        burn = fraction / spec.budget
    else:
        burn = 0.0 if breaches == 0 else inf
    worst = max(values) if spec.comparison == "<=" else min(values)
    return SloResult(
        spec=spec, samples=len(values), breaches=breaches,
        burn_rate=burn, ok=burn <= 1.0, worst=worst,
    )


def evaluate_slos(
    store: Any,
    specs: Sequence[SloSpec],
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    run: Optional[int] = None,
) -> List[SloResult]:
    """Score every spec against one store window."""
    results = []
    for spec in specs:
        points = _window(store.series(spec.series, run=run), t0, t1)
        results.append(evaluate_slo(spec, points))
    return results


def _series_stats(points: Sequence[Tuple[float, float]]) -> Dict[str, Any]:
    values = [value for _ts, value in points]
    if not values:
        return {"samples": 0}
    return {
        "samples": len(values),
        "min": min(values),
        "max": max(values),
        "mean": fsum(values) / len(values),
        "last": values[-1],
        "points": [[ts, value] for ts, value in points],
    }


def health_report(
    sampler: Any,
    auditor: Optional[Any] = None,
    specs: Optional[Sequence[SloSpec]] = None,
    phases: Optional[Sequence[Tuple[str, float, float]]] = None,
    title: str = "",
    run: Optional[int] = None,
) -> Dict[str, Any]:
    """One JSON-serializable verdict over a sampled (and audited) run.

    ``phases`` are ``(name, t0, t1)`` windows (chaos passes pre-fault /
    fault / recovery / drain); omitted, the whole retained window is one
    phase.  The report carries, per phase, summary statistics and the
    retained points of the key series (p50/p99 disk latency among them)
    plus SLO verdicts; globally, the audit summary and repair-GB
    accounting.  ``ok`` requires every overall SLO green and zero
    un-waived audit violations.
    """
    store = sampler.store
    specs = tuple(specs) if specs is not None else default_slos()
    if phases is None:
        phases = (("all", -inf, inf),)
    phase_rows: List[Dict[str, Any]] = []
    for name, t0, t1 in phases:
        series: Dict[str, Any] = {}
        for key in KEY_SERIES:
            points = _window(store.series(key, run=run), t0, t1)
            if points:
                series[key] = _series_stats(points)
        phase_rows.append(
            {
                "phase": name,
                "t0": None if t0 == -inf else t0,
                "t1": None if t1 == inf else t1,
                "series": series,
                "slos": [
                    r.as_dict() for r in evaluate_slos(store, specs, t0, t1, run)
                ],
            }
        )
    overall = evaluate_slos(store, specs, None, None, run)
    repair_points = store.series("repair_bytes_total", run=run)
    repair_bytes = repair_points[-1][1] if repair_points else 0.0
    audit_summary = auditor.summary() if auditor is not None else None
    unwaived = audit_summary["unwaived"] if audit_summary else 0
    report: Dict[str, Any] = {
        "schema": HEALTH_SCHEMA,
        "title": title,
        "interval": getattr(sampler, "interval", None),
        "samples": getattr(sampler, "samples_taken", len(store)),
        "phases": phase_rows,
        "slos": [r.as_dict() for r in overall],
        "audit": audit_summary,
        "repair_bytes": repair_bytes,
        "repair_gb": repair_bytes / float(1 << 30),
        "ok": all(r.ok for r in overall) and unwaived == 0,
    }
    return report


def load_health_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as stream:
        report = json.load(stream)
    if report.get("schema") != HEALTH_SCHEMA:
        raise ValueError(f"unexpected health schema {report.get('schema')!r}")
    return report


def write_health_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")


# ---------------------------------------------------------------------------
# Terminal rendering (raidpctl dash).
# ---------------------------------------------------------------------------
def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Downsample ``values`` into ``width`` glyph buckets.

    Buckets average their samples (``fsum``, determinism) and the ramp
    normalizes min..max; a flat series renders as the lowest glyph.
    """
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        buckets = []
        for index in range(width):
            lo = index * len(values) // width
            hi = max(lo + 1, (index + 1) * len(values) // width)
            chunk = values[lo:hi]
            buckets.append(fsum(chunk) / len(chunk))
        values = buckets
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    ramp = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[int((value - low) / span * ramp + 0.5)] for value in values
    )


def _format_value(value: float, unit: str) -> str:
    if unit == "B":
        return f"{value / float(1 << 30):.2f} GiB"
    if unit == "s":
        if value < 0.1:
            return f"{value * 1000.0:.1f} ms"
        return f"{value:.3f} s"
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"


def _burn_label(burn: float) -> str:
    if burn == inf:
        return "inf"
    return f"{burn:.2f}"


def render_dash(report: Dict[str, Any], width: int = 40) -> str:
    """The ``raidpctl dash`` view: per-phase sparklines + SLO verdicts."""
    lines: List[str] = []
    title = report.get("title") or "cluster health"
    lines.append(f"=== {title} ===")
    lines.append(
        f"samples: {report.get('samples', 0)}  "
        f"interval: {report.get('interval')}s  "
        f"repair: {report.get('repair_gb', 0.0):.2f} GiB"
    )
    for phase in report.get("phases", []):
        t0 = phase.get("t0")
        t1 = phase.get("t1")
        window = (
            f"[{t0:.1f}s..{t1:.1f}s]"
            if t0 is not None and t1 is not None
            else "[all]"
        )
        lines.append("")
        lines.append(f"-- phase {phase['phase']} {window}")
        for key in KEY_SERIES:
            stats = phase.get("series", {}).get(key)
            if not stats or not stats.get("samples"):
                continue
            points = stats.get("points") or []
            spark = sparkline([p[1] for p in points], width=width)
            lines.append(
                f"  {key:<28} {spark}  "
                f"min {stats['min']:.4g}  max {stats['max']:.4g}"
            )
        breaches = [s for s in phase.get("slos", []) if not s["ok"]]
        if breaches:
            for slo in breaches:
                lines.append(
                    f"  !! {slo['name']}: burn {_burn_label(slo['burn_rate'])} "
                    f"({slo['breaches']}/{slo['samples']} samples over "
                    f"{slo['comparison']}{_format_value(slo['objective'], slo['unit'])})"
                )
    lines.append("")
    lines.append("-- SLO verdicts (whole run)")
    for slo in report.get("slos", []):
        mark = "ok " if slo["ok"] else "FAIL"
        worst = slo.get("worst")
        worst_label = (
            f"worst {_format_value(worst, slo['unit'])}" if worst is not None else ""
        )
        lines.append(
            f"  [{mark}] {slo['name']:<20} burn {_burn_label(slo['burn_rate']):>5}  "
            f"target {slo['comparison']}{_format_value(slo['objective'], slo['unit'])} "
            f"{worst_label}"
        )
    audit = report.get("audit")
    if audit is not None:
        waived = audit["violations"] - audit["unwaived"]
        lines.append(
            f"  audit: {audit['checks']} checks / {audit['audits']} audits, "
            f"{audit['violations']} violations ({waived} waived, "
            f"{audit['unwaived']} unwaived)"
        )
    lines.append("")
    lines.append(f"overall: {'HEALTHY' if report.get('ok') else 'UNHEALTHY'}")
    return "\n".join(lines)
