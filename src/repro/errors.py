"""Exception hierarchy for the RAIDP reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming mistakes.
The hierarchy mirrors the subsystem structure: simulation, layout,
distributed-filesystem, device, and recovery errors each get a branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class LayoutError(ReproError):
    """A superchunk layout violates 1-sharing or 1-mirroring."""


class CapacityError(LayoutError):
    """No legal superchunk slot is available for an allocation."""


class DeviceError(ReproError):
    """A simulated device was used incorrectly or is unavailable."""


class DiskFailedError(DeviceError):
    """I/O was issued against a disk that has failed."""


class LstorFailedError(DeviceError):
    """An Lstor access was issued against a failed Lstor."""


class DfsError(ReproError):
    """Distributed-filesystem level failure."""


class FileNotFoundInDfsError(DfsError):
    """The requested path does not exist in the namespace."""


class FileExistsInDfsError(DfsError):
    """The path being created already exists in the namespace."""


class BlockMissingError(DfsError):
    """No live replica of a block is reachable."""


class PlacementError(DfsError):
    """The placement policy could not find a legal set of targets."""


class RecoveryError(ReproError):
    """Failure recovery could not complete."""


class DataLossError(RecoveryError):
    """Failures exceeded the redundancy of the configuration."""


class AuditError(ReproError):
    """A redundancy-state invariant failed a flight-recorder audit."""


class JournalError(ReproError):
    """Journal protocol violation (e.g. replay of a corrupt record)."""


class CodingError(ReproError):
    """Erasure-coding failure (e.g. too few shards to decode)."""


class MatchingError(ReproError):
    """No feasible assignment exists for a matching problem."""
