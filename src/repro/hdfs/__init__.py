"""An HDFS-like distributed filesystem substrate.

The paper implements RAIDP as a ~3 kLoC patch to HDFS 1.0.4.  This
package recreates the slice of HDFS the patch interacts with, running on
the :mod:`repro.sim` cluster:

- :mod:`repro.hdfs.config` -- block/packet sizes and replication knobs.
- :mod:`repro.hdfs.block` -- block identities and location records.
- :mod:`repro.hdfs.localfs` -- the per-disk local-filesystem allocation
  model (ext4-style extent allocation vs fixed preallocated offsets);
  this is what makes concurrent HDFS writers sequential on disk and
  unoptimized RAIDP writers seek-bound.
- :mod:`repro.hdfs.namenode` -- namespace, block map, placement policies,
  failure handling.
- :mod:`repro.hdfs.datanode` -- block storage, packet-level and
  accumulated write paths, replica serving.
- :mod:`repro.hdfs.client` -- the DFS client: pipelined writes and
  replica-choice reads.
"""

from repro.hdfs.block import Block, BlockLocations
from repro.hdfs.client import DfsClient
from repro.hdfs.config import DfsConfig
from repro.hdfs.datanode import DataNode
from repro.hdfs.localfs import LocalFs
from repro.hdfs.namenode import NameNode, ReplicationPlacement

__all__ = [
    "Block",
    "BlockLocations",
    "DataNode",
    "DfsClient",
    "DfsConfig",
    "LocalFs",
    "NameNode",
    "ReplicationPlacement",
]
