"""Local-filesystem allocation model for one disk.

Two allocation policies reproduce the behaviour the paper leans on
(Section 5, "Optimizations"):

- **extent** (ext4-like): physical space is assigned at write time from
  an allocation frontier (or the free list after deletions).  Several
  files being appended concurrently receive *interleaved but consecutive*
  extents, so the disk streams sequentially -- this is why baseline HDFS
  pays no seek penalty for concurrent block writes on a fresh filesystem.
- **fixed**: files are preallocated at fixed physical offsets (RAIDP's
  superchunk directories).  Writes always land at their preassigned
  location, so interleaved writers "ping-pong" the head between
  superchunks unless a higher layer serializes them.

Files are extent lists; reads walk the extents, paying seeks whenever the
physical layout is discontiguous -- which is how previously-interleaved
writes come back to bite sequential readers (paper §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import DeviceError
from repro.sim.disk import Disk
from repro.sim.engine import Simulator
from repro.sim.snapshot import InlineState


@dataclass
class _Extent(InlineState):
    """One contiguous physical run backing part of a file."""

    file_offset: int
    disk_offset: int
    length: int

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length


@dataclass
class _File(InlineState):
    name: str
    extents: List[_Extent] = field(default_factory=list)
    fixed_base: Optional[int] = None
    size: int = 0


class LocalFs(InlineState):
    """Extent-mapped files over one simulated disk."""

    def __init__(self, sim: Simulator, disk: Disk, policy: str = "extent") -> None:
        if policy not in ("extent", "fixed"):
            raise ValueError(f"unknown allocation policy {policy!r}")
        self.sim = sim
        self.disk = disk
        self.policy = policy
        self._files: Dict[str, _File] = {}
        self._frontier = 0
        self._free: List[Tuple[int, int]] = []  # (offset, length), sorted

    # ------------------------------------------------------------------
    # Namespace.
    # ------------------------------------------------------------------
    def create(self, name: str, fixed_offset: Optional[int] = None) -> None:
        """Create an empty file.

        ``fixed_offset`` pins the file to a physical location (RAIDP's
        preallocated superchunk slots); required iff policy is "fixed".
        """
        if name in self._files:
            raise DeviceError(f"file {name!r} already exists on {self.disk.name}")
        if self.policy == "fixed" and fixed_offset is None:
            raise DeviceError("fixed policy requires a fixed_offset")
        self._files[name] = _File(name=name, fixed_base=fixed_offset)

    def exists(self, name: str) -> bool:
        return name in self._files

    def size_of(self, name: str) -> int:
        return self._get(name).size

    def delete(self, name: str) -> None:
        """Remove a file, returning its extents to the free list."""
        file = self._get(name)
        del self._files[name]
        if file.fixed_base is None:
            for extent in file.extents:
                self._free.append((extent.disk_offset, extent.length))
            self._free.sort()
            self._coalesce_free()

    def _coalesce_free(self) -> None:
        merged: List[Tuple[int, int]] = []
        for offset, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((offset, length))
        self._free = merged

    def _get(self, name: str) -> _File:
        try:
            return self._files[name]
        except KeyError:
            raise DeviceError(f"no such file {name!r} on {self.disk.name}") from None

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------
    def _allocate(self, nbytes: int) -> int:
        """Assign physical space: free list first-fit, else the frontier."""
        for index, (offset, length) in enumerate(self._free):
            if length >= nbytes:
                if length == nbytes:
                    del self._free[index]
                else:
                    self._free[index] = (offset + nbytes, length - nbytes)
                return offset
        offset = self._frontier
        if offset + nbytes > self.disk.geometry.capacity:
            raise DeviceError(f"disk {self.disk.name} is full")
        self._frontier += nbytes
        return offset

    def _physical_for_write(self, file: _File, file_offset: int, nbytes: int) -> int:
        """Physical offset for a write, allocating if necessary."""
        if file.fixed_base is not None:
            return file.fixed_base + file_offset
        # Overwrite of an existing extent region?
        for extent in file.extents:
            if extent.file_offset <= file_offset < extent.file_end:
                if file_offset + nbytes > extent.file_end:
                    raise DeviceError("write straddles extents; split it")
                return extent.disk_offset + (file_offset - extent.file_offset)
        if file_offset != file.size:
            raise DeviceError(
                f"sparse write to {file.name!r}: offset {file_offset}, size {file.size}"
            )
        disk_offset = self._allocate(nbytes)
        # Merge with the previous extent when physically contiguous.
        if (
            file.extents
            and file.extents[-1].file_end == file_offset
            and file.extents[-1].disk_offset + file.extents[-1].length == disk_offset
        ):
            file.extents[-1].length += nbytes
        else:
            file.extents.append(_Extent(file_offset, disk_offset, nbytes))
        return disk_offset

    # ------------------------------------------------------------------
    # I/O (process bodies).
    # ------------------------------------------------------------------
    def write(self, name: str, file_offset: int, nbytes: int) -> Generator:
        """Write ``nbytes`` at ``file_offset``; charges disk time."""
        file = self._get(name)
        disk_offset = self._physical_for_write(file, file_offset, nbytes)
        yield from self.disk.write(disk_offset, nbytes)
        file.size = max(file.size, file_offset + nbytes)
        return None

    def read(self, name: str, file_offset: int, nbytes: int) -> Generator:
        """Read a byte range, walking extents (seeks between fragments)."""
        file = self._get(name)
        if file_offset + nbytes > file.size and file.fixed_base is None:
            raise DeviceError(
                f"read past EOF of {file.name!r}: "
                f"{file_offset}+{nbytes} > {file.size}"
            )
        if file.fixed_base is not None:
            yield from self.disk.read(file.fixed_base + file_offset, nbytes)
            return None
        remaining = nbytes
        cursor = file_offset
        for extent in file.extents:
            if remaining == 0:
                break
            if extent.file_end <= cursor or extent.file_offset >= cursor + remaining:
                continue
            start_in_extent = max(cursor, extent.file_offset)
            run = min(extent.file_end - start_in_extent, remaining)
            physical = extent.disk_offset + (start_in_extent - extent.file_offset)
            yield from self.disk.read(physical, run)
            cursor += run
            remaining -= run
        if remaining:
            raise DeviceError(f"file {file.name!r} has a hole at {cursor}")
        return None

    def read_modify_write(
        self,
        name: str,
        file_offset: int,
        nbytes: int,
        read_bytes: Optional[int] = None,
    ) -> Generator:
        """Read then rewrite a region with no intervening I/O.

        Only supported for fixed-offset files (the RAIDP superchunk
        path); extent files would need per-extent splitting, which no
        caller requires.  ``read_bytes`` limits the media read (cache).
        """
        file = self._get(name)
        if file.fixed_base is None:
            raise DeviceError("read_modify_write requires a fixed-offset file")
        yield from self.disk.read_modify_write(
            file.fixed_base + file_offset, nbytes, read_bytes=read_bytes
        )
        file.size = max(file.size, file_offset + nbytes)
        return None

    def sync(self) -> Generator:
        yield from self.disk.sync()
        return None

    # ------------------------------------------------------------------
    # Introspection for tests.
    # ------------------------------------------------------------------
    def fragmentation_of(self, name: str) -> int:
        """Number of physical extents backing the file."""
        return len(self._get(name).extents)

    @property
    def frontier(self) -> int:
        return self._frontier
