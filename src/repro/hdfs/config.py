"""Configuration knobs for the DFS substrate.

Defaults follow the paper's evaluation setup: Hadoop 1.0.4 defaults with
64 MB blocks, 64 KB network packets, and a sync when a block write
concludes (which the paper adds to both RAIDP and the HDFS baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.sim.snapshot import InlineState


@dataclass(frozen=True)
class DfsConfig(InlineState):
    """DFS-wide settings shared by the NameNode, DataNodes, and clients."""

    block_size: int = 64 * units.MiB
    packet_size: int = 64 * units.KiB
    replication: int = 3
    #: Sync the disk when a block write concludes (the paper adds this to
    #: both systems for a fair comparison; stock HDFS 1.0.4 lacked it).
    sync_on_block_close: bool = True
    #: Tasks per node for the MapReduce-style workloads (Hadoop default).
    tasks_per_node: int = 2
    #: Size of the tiny control messages (journal acks, RPC).
    ack_size: int = 1 * units.KiB
    #: Per-replica stream-processing rate: packet handling plus CRC32
    #: checksum computation/verification in the DataNode (JVM-era HDFS
    #: moves data well below NIC speed).  Charged per block on the write
    #: and read paths; 0 disables.
    pipeline_process_rate: float = 800 * units.MB
    #: Read-path failover: extra replica attempts after the first read
    #: fails mid-flight (HDFS clients rotate through the located replicas
    #: before giving up).  Each retry excludes the replicas that already
    #: failed this read.
    read_retries: int = 2
    #: Linear backoff between read attempts (seconds; attempt k waits
    #: ``k * read_backoff``).  Models the client-side retry pause.
    read_backoff: float = 10 * units.MSEC
    #: Write-path allocation retries when placement is transiently
    #: impossible (e.g. every eligible superchunk is frozen while a
    #: recovery is in flight).  0 keeps the historical fail-fast
    #: behavior; chaos/soak configurations opt in.
    allocate_retries: int = 0
    #: Linear backoff between allocation attempts (seconds).
    allocate_backoff: float = 1.0

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.packet_size <= 0:
            raise ValueError("sizes must be positive")
        if self.block_size % self.packet_size != 0:
            raise ValueError("block size must be a multiple of packet size")
        if self.replication < 1:
            raise ValueError("replication must be at least 1")
        if self.read_retries < 0 or self.allocate_retries < 0:
            raise ValueError("retry counts must be non-negative")
        if self.read_backoff < 0 or self.allocate_backoff < 0:
            raise ValueError("backoffs must be non-negative")

    @property
    def packets_per_block(self) -> int:
        return self.block_size // self.packet_size
