"""Block identities and location bookkeeping.

HDFS stores every block as an ordinary file named after the block id
(plus a checksum file).  We carry the same identity scheme: a block's
``name`` doubles as its local-filesystem file name on each replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional
from repro.sim.snapshot import InlineState


@dataclass(frozen=True)
class Block(InlineState):
    """Immutable identity of one DFS block."""

    block_id: int
    path: str  # the DFS file this block belongs to
    index: int  # position within the file
    size: int

    @property
    def name(self) -> str:
        """The local file name replicas store this block under."""
        return f"blk_{self.block_id}"


@dataclass
class BlockLocations(InlineState):
    """NameNode-side record: where a block's replicas live."""

    block: Block
    datanodes: List[str] = field(default_factory=list)  # datanode names
    #: RAIDP annotation: the superchunk this block was placed into, and
    #: its block slot within that superchunk.  None for plain HDFS.
    sc_id: Optional[int] = None
    slot: Optional[int] = None
    #: Content version, bumped on every rewrite of the same block slot.
    version: int = 1

    def remove_datanode(self, name: str) -> None:
        if name in self.datanodes:
            self.datanodes.remove(name)

    @property
    def replica_count(self) -> int:
        return len(self.datanodes)
