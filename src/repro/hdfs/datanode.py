"""DataNode: block storage and the packet/accumulated write paths.

A DataNode owns one simulated server node (and its primary disk), an
extent-allocating local filesystem, and an in-memory content store of
block payloads (real bytes or symbolic tokens, see :mod:`repro.storage`).

Write paths (paper §5 and §6.1):

- **streamed** (stock HDFS): packets are written to disk as they arrive.
  The local filesystem's extent allocator serializes concurrent writers,
  so the disk streams sequentially; packets are batched into ``io_batch``
  sized disk I/Os (pure event-count reduction -- the allocation pattern,
  and thus fragmentation and seeks, is preserved at batch granularity).
- **accumulated** (RAIDP optimized, also available to HDFS): the whole
  block is buffered in RAM and written in one I/O, optionally under the
  node-wide writer lock that stops concurrent writers from ping-ponging
  the head between superchunks.

Subclasses (RAIDP's DataNode in :mod:`repro.core.node`) override the
block-file creation and the write hooks to add superchunk placement,
parity maintenance, and journaling.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro import units
from repro.errors import BlockMissingError, DfsError
from repro.hdfs.block import Block, BlockLocations
from repro.hdfs.config import DfsConfig
from repro.hdfs.localfs import LocalFs
from repro.sim.disk import Disk
from repro.sim.engine import Event, Simulator
from repro.sim.node import Node
from repro.sim.resources import Lock
from repro.storage.payload import ContentFactory, Payload
from repro.sim.snapshot import InlineState


class DataNode(InlineState):
    """One storage server in the DFS."""

    #: Disk I/O granularity for the streamed write path: the page cache
    #: coalesces 64 KB packets into writeback-sized runs before they hit
    #: the disk (also keeps the simulated event count sane).
    DEFAULT_IO_BATCH = 16 * units.MiB

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: DfsConfig,
        factory: ContentFactory,
        fs_policy: str = "extent",
        io_batch: Optional[int] = None,
        disk: Optional[Disk] = None,
        name: Optional[str] = None,
    ) -> None:
        """``disk``/``name`` support multi-disk servers: one DataNode per
        disk, all sharing the server's node (CPU, NICs)."""
        self.sim = sim
        self.node = node
        self.config = config
        self.factory = factory
        self._disk = disk if disk is not None else node.primary_disk
        self._name = name if name is not None else node.name
        self.fs = LocalFs(sim, self._disk, policy=fs_policy)
        self.io_batch = io_batch or self.DEFAULT_IO_BATCH
        self.writer_lock = Lock(sim, name=f"{self._name}.writer")
        self._contents: Dict[str, Payload] = {}
        self._versions: Dict[str, int] = {}
        # Checksum records (HDFS keeps a CRC file beside every block);
        # updated on store, *not* by media decay -- the scrubber's anchor.
        self._checksums: Dict[str, int] = {}
        self.alive = True
        self.stats_blocks_written = 0
        self.stats_blocks_read = 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def disk(self) -> Disk:
        return self._disk

    # ------------------------------------------------------------------
    # Content store (the data plane).
    # ------------------------------------------------------------------
    def store_content(self, block_name: str, payload: Payload, version: int) -> None:
        # CRC-based (never hash(): PYTHONHASHSEED-randomized), so the
        # checksum record is stable across processes and runs.
        self._contents[block_name] = payload
        self._versions[block_name] = version
        self._checksums[block_name] = payload.checksum()

    def content_checksum_ok(self, block_name: str) -> bool:
        """Does the stored content still match its checksum record?"""
        expected = self._checksums.get(block_name)
        if expected is None:
            return False
        return self.content_of(block_name).checksum() == expected

    def content_of(self, block_name: str) -> Payload:
        try:
            return self._contents[block_name]
        except KeyError:
            raise BlockMissingError(
                f"{self.name} holds no content for {block_name}"
            ) from None

    def version_of(self, block_name: str) -> int:
        return self._versions.get(block_name, 0)

    def has_block(self, block_name: str) -> bool:
        return block_name in self._contents

    def block_report(self) -> List[str]:
        """All DFS block names this replica actually holds (sorted)."""
        return sorted(self._contents)

    def drop_content(self, block_name: str) -> None:
        self._contents.pop(block_name, None)
        self._versions.pop(block_name, None)
        self._checksums.pop(block_name, None)

    def purge_block(self, block_name: str) -> None:
        """Drop one replica without a locations record (rejoin cleanup:
        orphaned or stale blocks flagged by the NameNode's block-report
        reconciliation).  Charges no simulated time, like HDFS's lazy
        deletion."""
        self.drop_content(block_name)
        if self.fs.exists(block_name):
            self.fs.delete(block_name)

    def wipe_storage(self) -> None:
        """Model a replaced (empty) disk: forget every stored payload.

        Used when a node rejoins after its data was re-homed elsewhere --
        the revived DataNode starts from clean media.
        """
        for block_name in list(self._contents):
            self.purge_block(block_name)

    # ------------------------------------------------------------------
    # Block file lifecycle hooks (overridden by RAIDP).
    # ------------------------------------------------------------------
    def create_block_file(self, locations: BlockLocations) -> None:
        """Create the local file that will hold the block."""
        name = locations.block.name
        if not self.fs.exists(name):
            self.fs.create(name)

    def delete_block(self, locations: BlockLocations) -> None:
        """Remove a replica (metadata + local file)."""
        name = locations.block.name
        self.drop_content(name)
        if self.fs.exists(name):
            self.fs.delete(name)

    # ------------------------------------------------------------------
    # Write paths (process bodies).
    # ------------------------------------------------------------------
    def write_block(
        self,
        locations: BlockLocations,
        payload: Payload,
        inbound: Optional[Event] = None,
        accumulate: bool = True,
        use_writer_lock: bool = False,
    ) -> Generator:
        """Receive and persist one block replica.

        ``inbound`` is the network-arrival event (None for a local
        write).  With ``accumulate`` the block is buffered and written in
        one I/O once fully received; otherwise packets are streamed to
        disk as they arrive (batched into ``io_batch`` I/Os).
        """
        if not self.alive:
            raise DfsError(f"write to dead datanode {self.name}")
        trace = self.sim.trace
        t0 = self.sim.now
        self.create_block_file(locations)
        if accumulate:
            if inbound is not None:
                yield inbound
            # Packet handling and checksum work happens while the block
            # accumulates in RAM -- before the writer lock, so it
            # overlaps other writers' disk I/O.
            yield from self._process_stream(locations.block.size)
            # Admission runs *before* the writer lock: a subclass may
            # block here on resources whose release depends on remote
            # progress (RAIDP's journal space), and holding the writer
            # lock across such a wait can deadlock two mirrors.
            yield from self.admit_block(locations)
            grant = (yield self.writer_lock.request()) if use_writer_lock else None
            try:
                yield from self._commit_block(locations, payload)
            finally:
                if grant is not None:
                    self.writer_lock.release(grant)
        else:
            yield from self._stream_block(locations, payload, inbound)
        self.stats_blocks_written += 1
        if trace.enabled:
            trace.complete(
                "dn", "write", t0, self.sim.now,
                dn=self.name, block=locations.block.name,
                bytes=locations.block.size,
            )
        return None

    def admit_block(self, locations: BlockLocations) -> Generator:
        """Hook: gate a block write on subclass-specific resources."""
        return
        yield  # pragma: no cover - makes this a generator

    def _process_stream(self, nbytes: int) -> Generator:
        """Per-replica packet handling + checksum charge (see DfsConfig)."""
        rate = self.config.pipeline_process_rate
        if rate > 0:
            yield self.sim.timeout(nbytes / rate)
        return None

    def _commit_block(self, locations: BlockLocations, payload: Payload) -> Generator:
        """One-shot write of a fully buffered block (hookable)."""
        block = locations.block
        yield from self.fs.write(block.name, 0, block.size)
        if self.config.sync_on_block_close:
            yield from self.fs.sync()
        self.store_content(block.name, payload, locations.version)
        return None

    def _stream_block(
        self,
        locations: BlockLocations,
        payload: Payload,
        inbound: Optional[Event],
    ) -> Generator:
        """Packet-streamed write (hookable)."""
        block = locations.block
        offset = 0
        while offset < block.size:
            run = min(self.io_batch, block.size - offset)
            yield from self._process_stream(run)
            yield from self.fs.write(block.name, offset, run)
            offset += run
        if inbound is not None:
            yield inbound
        if self.config.sync_on_block_close:
            yield from self.fs.sync()
        self.store_content(block.name, payload, locations.version)
        return None

    # ------------------------------------------------------------------
    # In-place updates (paper §8 future work; RAIDP-only).
    # ------------------------------------------------------------------
    def update_block_range(
        self, locations: BlockLocations, block_offset: int, nbytes: int
    ) -> Generator:
        """Rewrite a byte range of an existing block in place.

        Stock HDFS is append-only (paper §5): updating means deleting
        the file and rewriting it.  Only the RAIDP DataNode overrides
        this with a real sub-block read-modify-write path.
        """
        raise DfsError(
            f"{self.name}: HDFS blocks are append-only; delete and rewrite "
            "(in-place updates are a RAIDP extension)"
        )
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Read path.
    # ------------------------------------------------------------------
    def read_block(self, locations: BlockLocations) -> Generator:
        """Read a replica from disk; returns its payload."""
        if not self.alive:
            raise DfsError(f"read from dead datanode {self.name}")
        trace = self.sim.trace
        t0 = self.sim.now
        block = locations.block
        payload = self.content_of(block.name)
        yield from self.fs.read(block.name, 0, block.size)
        yield from self._process_stream(block.size)  # checksum verification
        self.stats_blocks_read += 1
        if trace.enabled:
            trace.complete(
                "dn", "read", t0, self.sim.now,
                dn=self.name, block=block.name, bytes=block.size,
            )
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DataNode {self.name} blocks={len(self._contents)}>"
