"""HdfsCluster: one-call assembly of a complete baseline DFS.

Builds the simulator, the hardware cluster, the NameNode with stock
replication placement, one DataNode per node, and a client per node.
This is the HDFS-2 / HDFS-3 baseline of the paper's evaluation; the RAIDP
variant lives in :mod:`repro.core.cluster`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hdfs.client import DfsClient
from repro.hdfs.config import DfsConfig
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode, PlacementPolicy, ReplicationPlacement
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.engine import Simulator
from repro.storage.payload import ContentFactory
from repro.sim.snapshot import InlineState


class HdfsCluster(InlineState):
    """A ready-to-run baseline DFS over the simulated cluster."""

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        config: Optional[DfsConfig] = None,
        payload_mode: str = "tokens",
        placement: Optional[PlacementPolicy] = None,
        accumulate_writes: bool = False,
        seed: int = 0xF00D,
    ) -> None:
        self.sim = Simulator()
        self.spec = spec or ClusterSpec()
        self.config = config or DfsConfig()
        self.cluster = Cluster(self.sim, self.spec)
        self.factory = ContentFactory(mode=payload_mode, seed=seed)
        self.namenode = NameNode(
            self.config,
            placement or ReplicationPlacement(self.config.replication, seed=seed),
        )
        #: The server hosting the NameNode process (heartbeat endpoint).
        self.namenode_node = self.cluster.nodes[0]
        self.datanodes: List[DataNode] = []
        for node in self.cluster.nodes:
            datanode = DataNode(self.sim, node, self.config, self.factory)
            self.namenode.register_datanode(datanode)
            self.datanodes.append(datanode)
        self.clients: List[DfsClient] = [
            DfsClient(
                self.sim,
                node,
                self.namenode,
                self.cluster.switch,
                self.factory,
                accumulate_writes=accumulate_writes,
                seed=seed + index,
            )
            for index, node in enumerate(self.cluster.nodes)
        ]

    def client(self, index: int = 0) -> DfsClient:
        return self.clients[index]

    def datanode(self, index: int) -> DataNode:
        return self.datanodes[index]

    @property
    def switch(self):
        return self.cluster.switch

    def total_network_bytes(self) -> int:
        return self.cluster.total_network_bytes()

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Warm-start snapshots (see repro.sim.snapshot).
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Capture the quiescent cluster for later :meth:`from_snapshot`.

        Only legal between runs: the simulator refuses to pickle while
        events are scheduled or a process is mid-body.
        """
        from repro.sim.snapshot import capture

        return capture(self)

    @classmethod
    def from_snapshot(cls, blob: bytes) -> "HdfsCluster":
        """Restore a fresh, unshared cluster from :meth:`snapshot` bytes."""
        from repro.sim.snapshot import checked_restore

        return checked_restore(blob, cls)
