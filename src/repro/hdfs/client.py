"""DFS client: pipelined block writes and replica-choice reads.

The client runs on a cluster node (Hadoop tasks are collocated with
DataNodes).  A file write proceeds block by block, as through one HDFS
output stream:

1. ask the NameNode for a block and its replica pipeline,
2. stream the block along the pipeline -- modeled as cut-through: the
   client->dn1, dn1->dn2, ... flows run concurrently, each full-block
   sized, so pipeline latency is the max hop time rather than the sum,
3. each DataNode persists its replica (streamed or accumulated path),
4. run the post-block hook (RAIDP's journal acknowledgment exchange).

Reads pick one replica per block -- the local one when present, else
seeded-random -- and overlap the replica's disk read with the network
transfer, approximating streaming.
"""

from __future__ import annotations

import random
import zlib
from typing import Generator, List, Optional

from repro.errors import BlockMissingError, DeviceError, DfsError, PlacementError
from repro.hdfs.block import BlockLocations
from repro.hdfs.config import DfsConfig
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.sim.engine import Event, Simulator
from repro.sim.network import Switch
from repro.sim.node import Node
from repro.storage.payload import ContentFactory, Payload
from repro.sim.snapshot import InlineState


class DfsClient(InlineState):
    """A client bound to one node of the cluster."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        namenode: NameNode,
        switch: Switch,
        factory: ContentFactory,
        accumulate_writes: bool = True,
        use_writer_lock: bool = False,
        prefer_local_read: bool = False,
        seed: int = 0xC11E,
    ) -> None:
        # prefer_local_read defaults off: the paper's read benchmarks
        # observe a 50/50 replica choice (tasks are not data-local in
        # TestDFSIO's read phase), which is what produces Fig. 10's
        # nonzero read network traffic.
        self.sim = sim
        self.node = node
        self.namenode = namenode
        self.switch = switch
        self.factory = factory
        self.config = namenode.config
        self.accumulate_writes = accumulate_writes
        self.use_writer_lock = use_writer_lock
        self.prefer_local_read = prefer_local_read
        # Stable per-node seed (str.__hash__ is randomized per process).
        self._rng = random.Random(seed ^ zlib.crc32(node.name.encode()))
        #: Blocks completed short because a pipeline member died mid-write.
        self.stats_pipeline_recoveries = 0
        #: Read attempts that failed over to another replica.
        self.stats_read_failovers = 0

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def write_file(self, path: str, nbytes: int) -> Generator:
        """Create ``path`` and write ``nbytes`` of generated data."""
        if nbytes <= 0:
            raise DfsError("refusing to write an empty file")
        self.namenode.create_file(path)
        remaining = nbytes
        while remaining > 0:
            size = min(self.config.block_size, remaining)
            locations = yield from self._allocate_with_retry(path, size)
            yield from self.write_block(locations)
            remaining -= size
        return None

    def _allocate_with_retry(self, path: str, size: int) -> Generator:
        """Allocate a block, optionally retrying transient placement holes.

        During recovery every eligible superchunk may be frozen (write
        diversion, paper §3.4); with ``allocate_retries`` > 0 the client
        backs off and retries instead of failing the whole file write.
        """
        attempt = 0
        while True:
            try:
                return self.namenode.allocate_block(
                    path, size, writer=self.node.name
                )
            except PlacementError:
                if attempt >= self.config.allocate_retries:
                    raise
                attempt += 1
                yield self.sim.timeout(self.config.allocate_backoff * attempt)

    def rewrite_file(self, path: str) -> Generator:
        """Overwrite every block of an existing file in place.

        Used by the update-oriented workloads: block identities, placement
        and superchunk slots stay fixed; only the content version bumps,
        which on RAIDP forces the read-modify-write parity path.
        """
        for block in self.namenode.file_blocks(path):
            locations = self.namenode.locate_block(block.block_id)
            locations.version += 1
            yield from self.write_block(locations)
        return None

    def update_file_range(self, path: str, offset: int, nbytes: int) -> Generator:
        """Rewrite ``[offset, offset + nbytes)`` of ``path`` in place.

        An extension over stock HDFS (paper §8): supported only when the
        DataNodes implement a sub-block update path (RAIDP's do).  The
        update is applied per overlapping block on both replicas, with
        the usual journal acknowledgment; tiny control traffic aside, the
        network moves nothing -- the point of local parity.
        """
        if nbytes <= 0:
            raise DfsError("empty update range")
        end = offset + nbytes
        file_size = self.namenode.file_size(path)
        if end > file_size:
            raise DfsError(f"update past EOF of {path}: {end} > {file_size}")
        cursor = 0
        for block in self.namenode.file_blocks(path):
            block_start, block_end = cursor, cursor + block.size
            cursor = block_end
            lo, hi = max(offset, block_start), min(end, block_end)
            if lo >= hi:
                continue
            locations = self.namenode.locate_block(block.block_id)
            locations.version += 1
            targets = [self.namenode.datanode(n) for n in locations.datanodes]
            updates = [
                self.sim.process(
                    dn.update_block_range(locations, lo - block_start, hi - lo),
                    name=f"update:{block.name}@{dn.name}",
                )
                for dn in targets
            ]
            yield self.sim.all_of(updates)
        return None

    def write_block(self, locations: BlockLocations) -> Generator:
        """Drive one block through the replica pipeline.

        Survives a pipeline member dying mid-write (HDFS pipeline
        recovery): the dead target is dropped, the block completes on the
        surviving replicas, and the short block is reported to the
        NameNode so the re-replication machinery can top it up.  Only
        when *every* replica fails does the write itself fail.
        """
        block = locations.block
        payload = self.factory.make(block.name, locations.version, block.size)
        targets = [self.namenode.datanode(n) for n in locations.datanodes]
        if not targets:
            raise DfsError(f"block {block.name} has no targets")
        trace = self.sim.trace
        t0 = self.sim.now

        # Cut-through pipeline: one full-block flow per inter-node hop.
        inbound: List[Optional[Event]] = []
        upstream = self.node
        for datanode in targets:
            if datanode.node is upstream:
                inbound.append(None)  # local hop: no network transfer
            else:
                inbound.append(
                    self.switch.transfer(
                        upstream.primary_nic, datanode.node.primary_nic, block.size
                    )
                )
            upstream = datanode.node

        writes = [
            self.sim.process(
                datanode.write_block(
                    locations,
                    payload,
                    inbound=arrival,
                    accumulate=self.accumulate_writes,
                    use_writer_lock=self.use_writer_lock,
                ),
                name=f"write:{block.name}@{datanode.name}",
            )
            for datanode, arrival in zip(targets, inbound)
        ]
        # Wait on each replica write individually (rather than all_of,
        # which fails fast): a single member dying must not abort the
        # surviving writes, and every failure must be observed here.
        survivors: List[DataNode] = []
        failures: List[DataNode] = []
        last_error: Optional[BaseException] = None
        for datanode, proc in zip(targets, writes):
            try:
                yield proc
            except (DfsError, DeviceError) as exc:
                failures.append(datanode)
                last_error = exc
            else:
                survivors.append(datanode)
        if not survivors:
            raise DfsError(
                f"pipeline for block {block.name} lost every replica"
            ) from last_error
        if failures:
            self.stats_pipeline_recoveries += 1
            if trace.enabled:
                trace.instant(
                    "hdfs", "pipeline_recover", self.sim.now,
                    block=block.name, failed=[dn.name for dn in failures],
                )
            self.namenode.note_pipeline_failure(
                locations, [dn.name for dn in failures]
            )
            self._after_pipeline_failure(locations, survivors)
        yield from self.post_block_hook(locations, survivors)
        if trace.enabled:
            trace.complete(
                "hdfs", "write_block", t0, self.sim.now,
                block=block.name, bytes=block.size, replicas=len(targets),
            )
        return None

    def _after_pipeline_failure(
        self, locations: BlockLocations, survivors: List[DataNode]
    ) -> None:
        """Hook: tidy per-replica state after a short pipeline completes.

        A survivor may be waiting on an acknowledgment that the dead
        member will never send (RAIDP's journal protocol); nodes that
        implement :meth:`resolve_orphan_ack` get the chance to settle it.
        """
        for datanode in survivors:
            resolve = getattr(datanode, "resolve_orphan_ack", None)
            if resolve is not None:
                resolve(locations.block.name, locations.version)

    def post_block_hook(
        self, locations: BlockLocations, targets: List[DataNode]
    ) -> Generator:
        """Overridable: runs after all replicas of a block are durable."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def read_file(self, path: str, prefer_local: Optional[bool] = None) -> Generator:
        """Read every block of ``path``; returns total bytes read.

        ``prefer_local`` overrides the client's replica-choice policy for
        this call (map tasks scheduled data-local pass True).
        """
        total = 0
        for block in self.namenode.file_blocks(path):
            locations = self.namenode.locate_block(block.block_id)
            yield from self.read_block(locations, prefer_local=prefer_local)
            total += block.size
        return total

    def read_block(
        self, locations: BlockLocations, prefer_local: Optional[bool] = None
    ) -> Generator:
        """Read one block from a chosen replica; returns its payload.

        A replica dying between selection and completion fails over to
        another replica with bounded retry/backoff, excluding the ones
        that already failed this read.  When every attempt is exhausted
        the read surfaces as :class:`BlockMissingError`, which RAIDP
        clients turn into an Lstor-assisted degraded read.
        """
        trace = self.sim.trace
        t0 = self.sim.now
        failed_names: set = set()
        attempt = 0
        while True:
            datanode = self._choose_replica(
                locations, prefer_local=prefer_local, exclude=failed_names
            )
            try:
                payload = yield from self._read_replica(datanode, locations)
                if trace.enabled:
                    trace.complete(
                        "hdfs", "read_block", t0, self.sim.now,
                        block=locations.block.name, replica=datanode.name,
                        failovers=attempt,
                    )
                return payload
            except (DfsError, DeviceError) as exc:
                failed_names.add(datanode.name)
                attempt += 1
                self.stats_read_failovers += 1
                if trace.enabled:
                    trace.instant(
                        "hdfs", "read_failover", self.sim.now,
                        block=locations.block.name, replica=datanode.name,
                    )
                if attempt > self.config.read_retries:
                    raise BlockMissingError(
                        f"block {locations.block.name}: "
                        f"{attempt} read attempts all failed"
                    ) from exc
                if self.config.read_backoff > 0:
                    yield self.sim.timeout(self.config.read_backoff * attempt)

    def _read_replica(
        self, datanode: DataNode, locations: BlockLocations
    ) -> Generator:
        """One read attempt against one replica."""
        reader = self.sim.process(
            datanode.read_block(locations),
            name=f"read:{locations.block.name}@{datanode.name}",
        )
        if datanode.node is self.node:
            payload = yield reader
        else:
            # Overlap the replica's disk read with the network transfer.
            flow = self.switch.transfer(
                datanode.node.primary_nic,
                self.node.primary_nic,
                locations.block.size,
            )
            results = yield self.sim.all_of([reader, flow])
            payload = results[0]
        return payload

    def _replica_healthy(self, datanode: DataNode) -> bool:
        """Same health predicate as the cluster monitor: the DataNode
        process is up, its disk works, and its host node is alive."""
        return (
            datanode.alive
            and not datanode.disk.failed
            and datanode.node.alive
        )

    def _choose_replica(
        self,
        locations: BlockLocations,
        prefer_local: Optional[bool] = None,
        exclude: frozenset = frozenset(),
    ) -> DataNode:
        live = [
            datanode
            for name in locations.datanodes
            if name not in exclude
            and self._replica_healthy(datanode := self.namenode.datanode(name))
        ]
        if not live:
            raise BlockMissingError(
                f"no live replica of block {locations.block.name}"
            )
        local_first = (
            self.prefer_local_read if prefer_local is None else prefer_local
        )
        if local_first:
            for datanode in live:
                if datanode.node is self.node:
                    return datanode
        return self._rng.choice(live)

    # ------------------------------------------------------------------
    # Deletion (lazy, as in HDFS).
    # ------------------------------------------------------------------
    def delete_file(self, path: str) -> Generator:
        """Remove a file; replicas are dropped without charging disk time
        (HDFS purges lazily, and RAIDP defers parity work to idle times --
        paper §5)."""
        records = self.namenode.delete_file(path)
        for locations in records:
            for name in locations.datanodes:
                self.namenode.datanode(name).delete_block(locations)
        return None
        yield  # pragma: no cover - makes this a generator
