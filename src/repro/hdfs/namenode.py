"""NameNode: namespace, block map, placement, and failure bookkeeping.

The NameNode is pure metadata -- it never touches simulated time.  All
data-plane work (packet pipelines, disk I/O) happens in the DataNodes and
clients; the NameNode answers allocation and lookup RPCs synchronously,
matching HDFS's in-memory namespace design.

Placement is a strategy object so RAIDP can substitute its
pair-with-a-common-superchunk policy (paper §5) without touching the
NameNode itself.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.errors import (
    DfsError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
    PlacementError,
)
from repro.hdfs.block import Block, BlockLocations
from repro.hdfs.config import DfsConfig
from repro.sim.snapshot import InlineState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hdfs.datanode import DataNode


def healthy_datanode(datanode) -> bool:
    """The full health predicate: registered alive, disk serving, host up.

    Placement and replica choice must agree on this -- a DataNode whose
    disk already died but whose heartbeat staleness has not yet been
    declared is *not* a valid target, even though its metadata still says
    ``alive``.  Minimal DataNode stand-ins (tests) may lack the device
    attributes; only the checks they support apply.
    """
    if not datanode.alive:
        return False
    disk = getattr(datanode, "disk", None)
    if disk is not None and disk.failed:
        return False
    node = getattr(datanode, "node", None)
    if node is not None and not node.alive:
        return False
    return True


class PlacementPolicy(InlineState):
    """Chooses the replica set for a new block."""

    def choose_targets(
        self,
        block: Block,
        writer: Optional[str],
        datanodes: Sequence["DataNode"],
    ) -> BlockLocations:
        raise NotImplementedError


class ReplicationPlacement(PlacementPolicy):
    """Stock HDFS-style placement: writer-local first, then load-balanced
    random peers.

    HDFS balances replicas by remaining space; we approximate with the
    replica count already placed on each node, breaking ties with a
    seeded shuffle.  Deterministic given the seed, as everything in the
    reproduction must be.  (The residual imbalance relative to RAIDP's
    superchunk-slot placement is what makes RAIDP's "only superchunks"
    bar marginally beat HDFS-2 in Fig. 8.)
    """

    def __init__(self, replication: int, seed: int = 0xDA7A) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = replication
        self._rng = random.Random(seed)
        self._placed: dict = {}

    def choose_targets(
        self,
        block: Block,
        writer: Optional[str],
        datanodes: Sequence["DataNode"],
    ) -> BlockLocations:
        alive = [dn for dn in datanodes if healthy_datanode(dn)]
        if len(alive) < self.replication:
            raise PlacementError(
                f"need {self.replication} live datanodes, have {len(alive)}"
            )
        chosen: List[str] = []
        by_name = {dn.name: dn for dn in alive}
        if writer is not None and writer in by_name:
            chosen.append(writer)
        remaining = [dn.name for dn in alive if dn.name not in chosen]
        self._rng.shuffle(remaining)  # random tie-break, then least-loaded
        remaining.sort(key=lambda name: self._placed.get(name, 0))
        # HDFS picks randomly among under-loaded candidates rather than
        # strictly least-loaded, leaving the marginal imbalance the paper
        # observes; sample from the bottom three quarters.
        pool_size = max(3 * len(remaining) // 4, self.replication)
        pool = remaining[:pool_size]
        self._rng.shuffle(pool)
        chosen.extend(pool[: self.replication - len(chosen)])
        for name in chosen:
            self._placed[name] = self._placed.get(name, 0) + 1
        return BlockLocations(block=block, datanodes=chosen)


class NameNode(InlineState):
    """The metadata master: files, blocks, locations, liveness."""

    def __init__(self, config: DfsConfig, placement: PlacementPolicy) -> None:
        self.config = config
        self.placement = placement
        self._datanodes: Dict[str, "DataNode"] = {}
        self._files: Dict[str, List[Block]] = {}
        self._blocks: Dict[int, BlockLocations] = {}
        self._next_block_id = 0
        #: (block name, dropped replica names) per pipeline recovery the
        #: clients reported -- the short blocks awaiting re-replication.
        self.pipeline_failures: List[tuple] = []

    # ------------------------------------------------------------------
    # Cluster membership.
    # ------------------------------------------------------------------
    def register_datanode(self, datanode: "DataNode") -> None:
        if datanode.name in self._datanodes:
            raise DfsError(f"datanode {datanode.name} registered twice")
        self._datanodes[datanode.name] = datanode

    def datanode(self, name: str) -> "DataNode":
        try:
            return self._datanodes[name]
        except KeyError:
            raise DfsError(f"unknown datanode {name}") from None

    @property
    def datanodes(self) -> List["DataNode"]:
        return list(self._datanodes.values())

    def live_datanodes(self) -> List["DataNode"]:
        return [dn for dn in self._datanodes.values() if dn.alive]

    # ------------------------------------------------------------------
    # Namespace.
    # ------------------------------------------------------------------
    def create_file(self, path: str) -> None:
        if path in self._files:
            raise FileExistsInDfsError(path)
        self._files[path] = []

    def file_exists(self, path: str) -> bool:
        return path in self._files

    def file_blocks(self, path: str) -> List[Block]:
        try:
            return list(self._files[path])
        except KeyError:
            raise FileNotFoundInDfsError(path) from None

    def file_size(self, path: str) -> int:
        return sum(b.size for b in self.file_blocks(path))

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def delete_file(self, path: str) -> List[BlockLocations]:
        """Drop a file; returns the location records of its ex-blocks.

        The caller (client) is responsible for telling the datanodes to
        delete the replicas -- matching HDFS, where deletion is lazy.
        """
        blocks = self.file_blocks(path)
        del self._files[path]
        records = []
        release = getattr(self.placement, "release", None)
        for block in blocks:
            record = self._blocks.pop(block.block_id)
            if release is not None:
                release(record)  # free the superchunk slot (RAIDP)
            records.append(record)
        return records

    # ------------------------------------------------------------------
    # Block allocation and lookup.
    # ------------------------------------------------------------------
    def allocate_block(
        self, path: str, size: int, writer: Optional[str] = None
    ) -> BlockLocations:
        if path not in self._files:
            raise FileNotFoundInDfsError(path)
        if size <= 0 or size > self.config.block_size:
            raise DfsError(f"bad block size {size}")
        block = Block(
            block_id=self._next_block_id,
            path=path,
            index=len(self._files[path]),
            size=size,
        )
        self._next_block_id += 1
        locations = self.placement.choose_targets(
            block, writer, list(self._datanodes.values())
        )
        self._files[path].append(block)
        self._blocks[block.block_id] = locations
        return locations

    def locate_block(self, block_id: int) -> BlockLocations:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise DfsError(f"unknown block {block_id}") from None

    def all_blocks(self) -> List[BlockLocations]:
        return list(self._blocks.values())

    # ------------------------------------------------------------------
    # Failure bookkeeping.
    # ------------------------------------------------------------------
    def mark_datanode_dead(self, name: str) -> List[BlockLocations]:
        """Record a datanode loss; returns the now-under-replicated blocks."""
        datanode = self.datanode(name)
        datanode.alive = False
        affected = []
        for locations in self._blocks.values():
            if name in locations.datanodes:
                locations.remove_datanode(name)
                affected.append(locations)
        return affected

    def note_pipeline_failure(
        self, locations: BlockLocations, failed_names: Iterable[str]
    ) -> None:
        """A client completed a block short: drop the dead pipeline
        members from the block's locations (HDFS pipeline recovery).

        The block then shows up in :meth:`under_replicated` for the
        recovery machinery; the failed DataNodes themselves are left for
        the heartbeat detector to declare dead (a single slow write must
        not evict a whole node).
        """
        dropped = []
        for name in failed_names:
            if name in locations.datanodes:
                locations.remove_datanode(name)
                dropped.append(name)
        self.pipeline_failures.append((locations.block.name, tuple(dropped)))

    def readopt_replicas(
        self, datanode_name: str, held: Iterable[str], version_of=None
    ):
        """Reconcile a *rejoining* DataNode's holdings with the block map.

        The inverse of the death path: replicas the namespace still knows
        about, at the current version, and still under-replicated, are
        re-adopted into the block's locations.  Everything else the node
        holds is returned for purging, split into ``orphans`` (blocks the
        namespace no longer references, or already fully replicated
        elsewhere) and ``stale`` (the block exists but was rewritten at a
        newer version while the node was down).  Returns
        ``(readopted, orphans, stale)`` as sorted block-name lists.
        """
        by_name = {loc.block.name: loc for loc in self._blocks.values()}
        readopted: List[str] = []
        orphans: List[str] = []
        stale: List[str] = []
        for block_name in held:
            locations = by_name.get(block_name)
            if locations is None:
                orphans.append(block_name)
                continue
            if datanode_name in locations.datanodes:
                readopted.append(block_name)
                continue
            if version_of is not None and version_of(block_name) != locations.version:
                stale.append(block_name)
                continue
            if locations.replica_count >= self.config.replication:
                orphans.append(block_name)
                continue
            locations.datanodes.append(datanode_name)
            readopted.append(block_name)
        return sorted(readopted), sorted(orphans), sorted(stale)

    def under_replicated(self) -> List[BlockLocations]:
        return [
            loc
            for loc in self._blocks.values()
            if loc.replica_count < self.config.replication
        ]

    def lost_blocks(self) -> List[BlockLocations]:
        """Blocks with zero live replicas (recoverable only via Lstors)."""
        return [loc for loc in self._blocks.values() if loc.replica_count == 0]

    # ------------------------------------------------------------------
    # Block reports (HDFS's metadata anti-entropy).
    # ------------------------------------------------------------------
    def process_block_report(self, datanode_name: str, held: Iterable[str]):
        """Reconcile one DataNode's actual holdings with the block map.

        HDFS DataNodes periodically report every block they store.
        Blocks the NameNode *expected* there but that are gone (a wiped
        disk, partial crash) are dropped from the node's locations --
        surfacing under-replication for the recovery machinery.  Blocks
        the node holds that the namespace no longer references (deleted
        files, aborted writes) are returned as *orphans* for the node to
        purge.  Returns ``(missing, orphans)`` as block-name lists.
        """
        datanode = self.datanode(datanode_name)
        held_set = set(held)
        missing: List[str] = []
        expected: set = set()
        for locations in self._blocks.values():
            if datanode_name not in locations.datanodes:
                continue
            expected.add(locations.block.name)
            if locations.block.name not in held_set:
                locations.remove_datanode(datanode_name)
                missing.append(locations.block.name)
        orphans = sorted(held_set - expected)
        return sorted(missing), orphans
