"""Erasure-coding substrate built from scratch.

The paper's baseline comparisons (RAID-6 in Table 2, the n+2 erasure
column of Table 1) and the "stacked Lstors" extension (k local parities
tolerating k+1 failures) all need real erasure codes:

- :mod:`repro.ec.gf256` -- arithmetic in GF(2^8) with log/antilog tables
  and numpy-vectorized bulk operations.
- :mod:`repro.ec.reed_solomon` -- a systematic Reed-Solomon codec built
  from a Vandermonde-derived generator matrix; decodes from any k of n
  shards (MDS).
- :mod:`repro.ec.raid6` -- the classic P+Q array code with closed-form
  one- and two-erasure recovery, plus an array model used as the Table 2
  recovery baseline.
"""

from repro.ec.gf256 import GF256
from repro.ec.reed_solomon import ReedSolomon
from repro.ec.raid6 import Raid6Array, pq_encode, pq_recover_two_data

__all__ = [
    "GF256",
    "Raid6Array",
    "ReedSolomon",
    "pq_encode",
    "pq_recover_two_data",
]
