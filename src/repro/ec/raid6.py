"""RAID-6 (P+Q) array code and the recovery-time baseline of Table 2.

The classic RAID-6 construction stores, per stripe of ``k`` data blocks
``D_0..D_{k-1}``::

    P = D_0 ^ D_1 ^ ... ^ D_{k-1}
    Q = g^0*D_0 ^ g^1*D_1 ^ ... ^ g^{k-1}*D_{k-1}     (g = 2 in GF(256))

One erasure is repaired from P (or Q); two data erasures are solved in
closed form from P and Q.  :class:`Raid6Array` wraps the math in an
array-of-disks model with enough structure for the recovery experiment:
given two failed disks, every surviving disk's full contents must be read
and shipped to rebuild both, which is what makes RAID-6 an order of
magnitude slower than RAIDP's single-superchunk rebuild in Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ec.gf256 import GF256
from repro.errors import CodingError


def pq_encode(data: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Compute the P and Q parities for one stripe of data blocks."""
    if not data:
        raise CodingError("empty stripe")
    arrays = [np.asarray(d, dtype=np.uint8) for d in data]
    length = len(arrays[0])
    if any(len(a) != length for a in arrays):
        raise CodingError("stripe block length mismatch")
    p = np.zeros(length, dtype=np.uint8)
    q = np.zeros(length, dtype=np.uint8)
    for index, block in enumerate(arrays):
        np.bitwise_xor(p, block, out=p)
        GF256.addmul_bytes(q, GF256.exp(index), block)
    return p, q


def pq_recover_one_data(
    data: Dict[int, np.ndarray], missing: int, p: np.ndarray
) -> np.ndarray:
    """Repair a single missing data block using P."""
    length = len(p)
    accum = np.asarray(p, dtype=np.uint8).copy()
    for index, block in data.items():
        if index == missing:
            raise CodingError("missing block supplied as survivor")
        np.bitwise_xor(accum, np.asarray(block, dtype=np.uint8), out=accum)
    if len(accum) != length:
        raise CodingError("length mismatch in recovery")
    return accum


def pq_recover_two_data(
    data: Dict[int, np.ndarray],
    missing_x: int,
    missing_y: int,
    p: np.ndarray,
    q: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the classic two-data-erasure case from P and Q.

    With ``Pxy``/``Qxy`` the parities of the surviving blocks alone::

        D_x = A*(P ^ Pxy) ^ B*(Q ^ Qxy)
        D_y = (P ^ Pxy) ^ D_x

    where ``A = g^{y-x} / (g^{y-x} ^ 1)`` and ``B = g^{-x} / (g^{y-x} ^ 1)``.
    """
    if missing_x == missing_y:
        raise CodingError("the two missing indices must differ")
    if missing_x > missing_y:
        missing_x, missing_y = missing_y, missing_x
    p_arr = np.asarray(p, dtype=np.uint8)
    q_arr = np.asarray(q, dtype=np.uint8)
    pxy = np.zeros_like(p_arr)
    qxy = np.zeros_like(q_arr)
    for index, block in data.items():
        if index in (missing_x, missing_y):
            raise CodingError("missing block supplied as survivor")
        arr = np.asarray(block, dtype=np.uint8)
        np.bitwise_xor(pxy, arr, out=pxy)
        GF256.addmul_bytes(qxy, GF256.exp(index), arr)
    p_delta = np.bitwise_xor(p_arr, pxy)
    q_delta = np.bitwise_xor(q_arr, qxy)

    g_yx = GF256.exp(missing_y - missing_x)
    denom = g_yx ^ 1
    coeff_a = GF256.div(g_yx, denom)
    coeff_b = GF256.div(GF256.inv(GF256.exp(missing_x)), denom)

    d_x = GF256.mul_bytes(coeff_a, p_delta)
    np.bitwise_xor(d_x, GF256.mul_bytes(coeff_b, q_delta), out=d_x)
    d_y = np.bitwise_xor(p_delta, d_x)
    return d_x, d_y


class Raid6Array:
    """A (k data + P + Q) array of equal-size disks holding real bytes.

    Disks are indexed 0..k-1 for data, k for P, k+1 for Q.  The array is
    rotation-free (non-rotated parity) to mirror the paper's comparison;
    rotation would not change recovery *volume*, which is what Table 2
    measures.
    """

    def __init__(self, data_disks: int, disk_size: int) -> None:
        if data_disks < 2:
            raise ValueError("RAID-6 needs at least two data disks")
        self.data_disks = data_disks
        self.disk_size = disk_size
        self._data = [np.zeros(disk_size, dtype=np.uint8) for _ in range(data_disks)]
        self._p = np.zeros(disk_size, dtype=np.uint8)
        self._q = np.zeros(disk_size, dtype=np.uint8)
        self._failed: set = set()

    @property
    def total_disks(self) -> int:
        return self.data_disks + 2

    # ------------------------------------------------------------------
    # I/O.
    # ------------------------------------------------------------------
    def write(self, disk: int, offset: int, payload: bytes) -> None:
        """Write to a data disk, updating P and Q incrementally."""
        self._check_data_index(disk)
        if disk in self._failed:
            raise CodingError(f"write to failed disk {disk}")
        new = np.frombuffer(bytes(payload), dtype=np.uint8)
        end = offset + len(new)
        if offset < 0 or end > self.disk_size:
            raise ValueError("write outside disk")
        old = self._data[disk][offset:end].copy()
        delta = np.bitwise_xor(old, new)
        self._data[disk][offset:end] = new
        np.bitwise_xor(self._p[offset:end], delta, out=self._p[offset:end])
        GF256.addmul_bytes(self._q[offset:end], GF256.exp(disk), delta)

    def read(self, disk: int, offset: int, length: int) -> bytes:
        self._check_data_index(disk)
        if disk in self._failed:
            raise CodingError(f"read from failed disk {disk}")
        return self._data[disk][offset : offset + length].tobytes()

    def _check_data_index(self, disk: int) -> None:
        if not 0 <= disk < self.data_disks:
            raise ValueError(f"bad data disk index {disk}")

    # ------------------------------------------------------------------
    # Failure and recovery.
    # ------------------------------------------------------------------
    def fail(self, disk: int) -> None:
        self._check_data_index(disk)
        self._failed.add(disk)
        if len(self._failed) > 2:
            raise CodingError("RAID-6 cannot survive a third failure")

    def recover(self) -> Dict[str, int]:
        """Rebuild all failed disks in place.

        Returns accounting of the recovery volume: bytes read from
        survivors and bytes written to replacements.  This is the quantity
        Table 2's RAID-6 rows are made of.
        """
        failed = sorted(self._failed)
        survivors = {
            i: self._data[i] for i in range(self.data_disks) if i not in self._failed
        }
        bytes_read = 0
        if len(failed) == 1:
            rebuilt = pq_recover_one_data(survivors, failed[0], self._p)
            self._data[failed[0]] = rebuilt
            bytes_read = (len(survivors) + 1) * self.disk_size  # survivors + P
        elif len(failed) == 2:
            d_x, d_y = pq_recover_two_data(
                survivors, failed[0], failed[1], self._p, self._q
            )
            self._data[failed[0]] = d_x
            self._data[failed[1]] = d_y
            bytes_read = (len(survivors) + 2) * self.disk_size  # survivors + P + Q
        elif failed:
            raise CodingError("unrecoverable: more than two failures")
        bytes_written = len(failed) * self.disk_size
        self._failed.clear()
        return {"bytes_read": bytes_read, "bytes_written": bytes_written}

    def verify(self) -> bool:
        """Check parity consistency over the entire array."""
        p, q = pq_encode(self._data)
        return bool(np.array_equal(p, self._p) and np.array_equal(q, self._q))
