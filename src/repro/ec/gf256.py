"""Arithmetic in the Galois field GF(2^8).

The field is constructed over the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d), the same polynomial used by
virtually every storage erasure code (RAID-6, Jerasure, ISA-L).  Addition
is XOR; multiplication uses log/antilog tables built once at import time.

Scalar helpers operate on ints; the ``*_bytes`` helpers are vectorized
with numpy for whole-buffer encode/decode, which is what the Reed-Solomon
and RAID-6 layers use on superchunk-sized payloads.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D

#: The field generator element used to build the log tables.
GENERATOR = 0x02

_FIELD_SIZE = 256


def _build_tables() -> tuple:
    exp = [0] * (_FIELD_SIZE * 2)  # doubled so mul can skip a modulo
    log = [0] * _FIELD_SIZE
    value = 1
    for power in range(_FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    for power in range(_FIELD_SIZE - 1, _FIELD_SIZE * 2):
        exp[power] = exp[power - (_FIELD_SIZE - 1)]
    return exp, log


_EXP, _LOG = _build_tables()

# Full 256x256 multiplication table as a numpy array: lets bulk operations
# multiply a byte buffer by a scalar with one fancy-index.  Built
# vectorized -- exp[log[a] + log[b]] over an outer sum of the log table --
# instead of a 65k-iteration Python loop at import time.
_EXP_ARR = np.asarray(_EXP, dtype=np.uint8)
_LOG_ARR = np.asarray(_LOG, dtype=np.int32)
_MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
_MUL_TABLE[1:, 1:] = _EXP_ARR[np.add.outer(_LOG_ARR[1:], _LOG_ARR[1:])]


class GF256:
    """Namespace of GF(2^8) operations (all methods are static)."""

    ORDER = _FIELD_SIZE

    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        return a ^ b  # characteristic 2: subtraction is addition

    @staticmethod
    def mul(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return _EXP[_LOG[a] + _LOG[b]]

    @staticmethod
    def div(a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return _EXP[(_LOG[a] - _LOG[b]) % 255]

    @staticmethod
    def inv(a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return _EXP[255 - _LOG[a]]

    @staticmethod
    def pow(base: int, exponent: int) -> int:
        if base == 0:
            return 0 if exponent != 0 else 1
        return _EXP[(_LOG[base] * exponent) % 255]

    @staticmethod
    def exp(power: int) -> int:
        """The generator raised to ``power``."""
        return _EXP[power % 255]

    @staticmethod
    def log(a: int) -> int:
        if a == 0:
            raise ValueError("log of zero in GF(256)")
        return _LOG[a]

    # ------------------------------------------------------------------
    # Vectorized buffer operations.
    # ------------------------------------------------------------------
    @staticmethod
    def mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
        """Multiply every byte of ``data`` by ``scalar``."""
        if scalar == 0:
            return np.zeros_like(data)
        if scalar == 1:
            return data.copy()
        return _MUL_TABLE[scalar][data]

    @staticmethod
    def addmul_bytes(accum: np.ndarray, scalar: int, data: np.ndarray) -> None:
        """``accum ^= scalar * data`` in place (the codec inner loop)."""
        if scalar == 0:
            return
        if scalar == 1:
            np.bitwise_xor(accum, data, out=accum)
        else:
            np.bitwise_xor(accum, _MUL_TABLE[scalar][data], out=accum)

    # ------------------------------------------------------------------
    # Matrix algebra over the field (small matrices: k x k decode).
    # ------------------------------------------------------------------
    @staticmethod
    def mat_mul(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> List[List[int]]:
        rows, inner, cols = len(a), len(b), len(b[0])
        if any(len(row) != inner for row in a):
            raise ValueError("matrix dimension mismatch")
        result = [[0] * cols for _ in range(rows)]
        for i in range(rows):
            for j in range(cols):
                acc = 0
                for k in range(inner):
                    acc ^= GF256.mul(a[i][k], b[k][j])
                result[i][j] = acc
        return result

    @staticmethod
    def mat_invert(matrix: Sequence[Sequence[int]]) -> List[List[int]]:
        """Invert a square matrix by Gauss-Jordan elimination."""
        size = len(matrix)
        if any(len(row) != size for row in matrix):
            raise ValueError("matrix is not square")
        # Augment with the identity.
        work = [list(row) + [int(i == j) for j in range(size)] for i, row in enumerate(matrix)]
        for col in range(size):
            # Find a pivot.
            pivot_row = next((r for r in range(col, size) if work[r][col] != 0), None)
            if pivot_row is None:
                raise ValueError("matrix is singular over GF(256)")
            work[col], work[pivot_row] = work[pivot_row], work[col]
            # Normalize the pivot row.
            pivot_inv = GF256.inv(work[col][col])
            work[col] = [GF256.mul(pivot_inv, v) for v in work[col]]
            # Eliminate the column everywhere else.
            for row in range(size):
                if row != col and work[row][col] != 0:
                    factor = work[row][col]
                    work[row] = [
                        v ^ GF256.mul(factor, p) for v, p in zip(work[row], work[col])
                    ]
        return [row[size:] for row in work]

    @staticmethod
    def vandermonde(rows: int, cols: int) -> List[List[int]]:
        """The Vandermonde matrix V[i][j] = i**j over GF(256)."""
        return [[GF256.pow(i, j) for j in range(cols)] for i in range(rows)]
