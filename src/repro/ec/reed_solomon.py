"""Systematic Reed-Solomon codec over GF(2^8).

The generator matrix is derived from an (n x k) Vandermonde matrix whose
top k x k block is reduced to the identity (the standard construction used
by Jerasure, Backblaze, and others).  Because every k x k submatrix of a
Vandermonde matrix is invertible, the resulting code is MDS: the original
data is recoverable from *any* k of the n shards.

Stacked Lstors (paper Section 3.3) reuse this codec: k parities over a
disk's superchunks tolerate k Lstor-assisted superchunk losses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ec.gf256 import GF256
from repro.errors import CodingError


class ReedSolomon:
    """An (n = data + parity, k = data) systematic Reed-Solomon code."""

    def __init__(self, data_shards: int, parity_shards: int) -> None:
        if data_shards < 1 or parity_shards < 0:
            raise ValueError("need data_shards >= 1 and parity_shards >= 0")
        if data_shards + parity_shards > GF256.ORDER:
            raise ValueError("total shards cannot exceed 256 in GF(256)")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = data_shards + parity_shards
        self._matrix = self._build_matrix(data_shards, self.total_shards)

    @staticmethod
    def _build_matrix(k: int, n: int) -> List[List[int]]:
        """An n x k generator whose top k x k block is the identity."""
        vandermonde = GF256.vandermonde(n, k)
        top = [row[:] for row in vandermonde[:k]]
        top_inv = GF256.mat_invert(top)
        return GF256.mat_mul(vandermonde, top_inv)

    # ------------------------------------------------------------------
    # Encoding.
    # ------------------------------------------------------------------
    def encode(self, data: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Compute parity shards for ``data`` (k equal-length byte arrays).

        Returns the parity shards only; the code is systematic so the data
        shards are stored as-is.
        """
        shards = self._as_arrays(data, self.data_shards)
        length = len(shards[0])
        parities = []
        for parity_index in range(self.parity_shards):
            row = self._matrix[self.data_shards + parity_index]
            accum = np.zeros(length, dtype=np.uint8)
            for coeff, shard in zip(row, shards):
                GF256.addmul_bytes(accum, coeff, shard)
            parities.append(accum)
        return parities

    def parity_delta(
        self, shard_index: int, old: np.ndarray, new: np.ndarray
    ) -> List[np.ndarray]:
        """Parity *updates* when one data shard changes (RMW path).

        Returns, per parity, the buffer to XOR into the stored parity:
        ``coeff * (old ^ new)``.  This is the operation a single Lstor
        performs on every in-place update.
        """
        if not 0 <= shard_index < self.data_shards:
            raise ValueError(f"bad shard index {shard_index}")
        old_arr = np.asarray(old, dtype=np.uint8)
        new_arr = np.asarray(new, dtype=np.uint8)
        if old_arr.shape != new_arr.shape:
            raise CodingError("old/new shard size mismatch")
        delta = np.bitwise_xor(old_arr, new_arr)
        updates = []
        for parity_index in range(self.parity_shards):
            coeff = self._matrix[self.data_shards + parity_index][shard_index]
            updates.append(GF256.mul_bytes(coeff, delta))
        return updates

    # ------------------------------------------------------------------
    # Decoding.
    # ------------------------------------------------------------------
    def decode(self, shards: Dict[int, np.ndarray]) -> List[np.ndarray]:
        """Reconstruct all k data shards from any k available shards.

        ``shards`` maps shard index (0..n-1; parity shards follow data
        shards) to its byte array.  Raises :class:`CodingError` when fewer
        than k shards are supplied.
        """
        if len(shards) < self.data_shards:
            raise CodingError(
                f"need {self.data_shards} shards to decode, have {len(shards)}"
            )
        available = sorted(shards)[: self.data_shards]
        arrays = self._as_arrays([shards[i] for i in available], self.data_shards)
        submatrix = [self._matrix[i] for i in available]
        inverse = GF256.mat_invert(submatrix)
        length = len(arrays[0])
        data = []
        for row in inverse:
            accum = np.zeros(length, dtype=np.uint8)
            for coeff, shard in zip(row, arrays):
                GF256.addmul_bytes(accum, coeff, shard)
            data.append(accum)
        return data

    def reconstruct_shard(
        self, shards: Dict[int, np.ndarray], missing: int
    ) -> np.ndarray:
        """Rebuild one shard (data or parity) from any k others."""
        if not 0 <= missing < self.total_shards:
            raise ValueError(f"bad shard index {missing}")
        usable = {i: s for i, s in shards.items() if i != missing}
        data = self.decode(usable)
        if missing < self.data_shards:
            return data[missing]
        row = self._matrix[missing]
        accum = np.zeros(len(data[0]), dtype=np.uint8)
        for coeff, shard in zip(row, data):
            GF256.addmul_bytes(accum, coeff, shard)
        return accum

    def verify(self, data: Sequence[np.ndarray], parity: Sequence[np.ndarray]) -> bool:
        """Check that stored parity matches the data."""
        expected = self.encode(data)
        if len(parity) != len(expected):
            return False
        return all(
            np.array_equal(np.asarray(p, dtype=np.uint8), e)
            for p, e in zip(parity, expected)
        )

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def _as_arrays(shards: Sequence[np.ndarray], expected: int) -> List[np.ndarray]:
        if len(shards) != expected:
            raise CodingError(f"expected {expected} shards, got {len(shards)}")
        arrays = [np.asarray(s, dtype=np.uint8) for s in shards]
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise CodingError(f"shard length mismatch: {sorted(lengths)}")
        return arrays

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ReedSolomon {self.data_shards}+{self.parity_shards}>"
