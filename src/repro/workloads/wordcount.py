"""WordCount (paper §6.3): read-dominated I/O plus heavy CPU.

The input is 100 GB of word instances but only ~100 distinct words, so
the output (word, count) histogram is tiny: runtime is reads plus the
counting CPU, with negligible write and shuffle volume.  A functional
core (:func:`count_words`) implements the actual counting for the
correctness tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Generator, List, Optional

from repro import units
from repro.workloads.driver import WorkloadResult, run_tasks, spread_tasks

#: CPU intensity of tokenizing and counting, relative to the base rate.
#: WordCount is markedly heavier than TeraSort's comparison passes.
COUNT_INTENSITY = 2.2

#: Size of the per-task histogram shipped to the reducer (100 unique
#: words with counts).
HISTOGRAM_BYTES = 4 * units.KiB


def count_words(text: str) -> Dict[str, int]:
    """The functional core: whitespace-tokenized word frequencies."""
    return dict(Counter(text.split()))


def generate_text(num_words: int, vocabulary: Optional[List[str]] = None, seed: int = 0) -> str:
    """Deterministic corpus of ``num_words`` drawn from a small vocabulary."""
    import random

    vocab = vocabulary or [f"word{i:03d}" for i in range(100)]
    rng = random.Random(seed)
    return " ".join(rng.choice(vocab) for _ in range(num_words))


def wordcount_input(dfs, total_bytes: int, tasks_per_node: Optional[int] = None) -> None:
    """Write the corpus (excluded from the measured runtime)."""
    tasks = (tasks_per_node or dfs.config.tasks_per_node) * len(dfs.clients)
    per_task = total_bytes // tasks
    clients = spread_tasks(dfs, tasks)

    def all_writes():
        procs = [
            dfs.sim.process(
                client.write_file(f"/wordcount/in/part-{i}", per_task),
                name=f"wc-gen:{i}",
            )
            for i, client in enumerate(clients)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(all_writes())


def wordcount(
    dfs,
    total_bytes: int,
    tasks_per_node: Optional[int] = None,
    name: str = "wordcount",
) -> WorkloadResult:
    """Run the measured WordCount over a previously written corpus."""
    tasks = (tasks_per_node or dfs.config.tasks_per_node) * len(dfs.clients)
    per_task = total_bytes // tasks
    clients = spread_tasks(dfs, tasks)
    switch = dfs.switch
    reducer = dfs.clients[0].node

    def task(index: int) -> Generator:
        client = clients[index]
        node = client.node
        # Like the read benchmark, counting tasks are not data-local:
        # replicas are picked uniformly (rotate away from the writer).
        part = (index + tasks // 2 + 1) % tasks
        yield from client.read_file(f"/wordcount/in/part-{part}")
        yield from node.compute_bytes(per_task, intensity=COUNT_INTENSITY)
        # Ship the tiny histogram to the single reducer.
        if node is not reducer:
            yield switch.transfer(
                node.primary_nic, reducer.primary_nic, HISTOGRAM_BYTES
            )
        return None

    def reduce_task() -> Generator:
        # Merge histograms and write the tiny output file.
        yield from reducer.compute(0.5)
        yield from dfs.clients[0].write_file("/wordcount/out/part-0", units.MiB)
        return None

    bodies = [task(i) for i in range(tasks)]
    bodies.append(reduce_task())
    return run_tasks(dfs, bodies, name)
