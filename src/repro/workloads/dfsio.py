"""TestDFSIO: the standard HDFS throughput benchmark (paper §6.1, §6.2).

``dfsio_write`` spawns ``tasks_per_node`` map tasks on every node; each
task writes its own file of ``total_bytes / tasks`` bytes through the DFS
client, exactly as Hadoop's TestDFSIO does.  ``dfsio_read`` reads the
files back (caches are cold by construction -- every read charges disk
time).
"""

from __future__ import annotations

from typing import List, Optional

from repro.workloads.driver import WorkloadResult, run_tasks, spread_tasks


def dfsio_paths(tasks: int) -> List[str]:
    return [f"/benchmarks/TestDFSIO/io_data/test_io_{i}" for i in range(tasks)]


def dfsio_write(
    dfs,
    total_bytes: int,
    tasks_per_node: Optional[int] = None,
    name: str = "dfsio-write",
) -> WorkloadResult:
    """Write ``total_bytes`` spread across one file per task."""
    tasks = (tasks_per_node or dfs.config.tasks_per_node) * len(dfs.clients)
    per_task = total_bytes // tasks
    if per_task <= 0:
        raise ValueError("total_bytes too small for the task count")
    clients = spread_tasks(dfs, tasks)
    bodies = [
        client.write_file(path, per_task)
        for client, path in zip(clients, dfsio_paths(tasks))
    ]
    return run_tasks(dfs, bodies, name)


def dfsio_read(
    dfs,
    tasks_per_node: Optional[int] = None,
    name: str = "dfsio-read",
) -> WorkloadResult:
    """Read back the files written by :func:`dfsio_write`.

    Read tasks are rotated relative to the writers: the paper's read
    phase is not data-local, observing a uniform choice among replicas
    (which is what makes Fig. 10's read network volume nonzero and ~7%
    higher on RAIDP -- fewer replicas, fewer chances of a local one).
    """
    tasks = (tasks_per_node or dfs.config.tasks_per_node) * len(dfs.clients)
    clients = spread_tasks(dfs, tasks)
    paths = dfsio_paths(tasks)
    # Rotate by an odd offset: with tasks_per_node tasks per client, an
    # even rotation could land every reader back on its file's writer.
    shift = tasks // 2 + 1
    rotated = paths[shift:] + paths[:shift]
    bodies = [client.read_file(path) for client, path in zip(clients, rotated)]
    return run_tasks(dfs, bodies, name)


def dfsio_rewrite(
    dfs,
    tasks_per_node: Optional[int] = None,
    name: str = "dfsio-rewrite",
) -> WorkloadResult:
    """Overwrite the DFSIO files in place (the update-oriented workload)."""
    tasks = (tasks_per_node or dfs.config.tasks_per_node) * len(dfs.clients)
    clients = spread_tasks(dfs, tasks)
    bodies = [
        client.rewrite_file(path)
        for client, path in zip(clients, dfsio_paths(tasks))
    ]
    return run_tasks(dfs, bodies, name)
