"""TeraGen + TeraSort (paper §6.3).

The timed model follows Hadoop's TeraSort execution:

1. **TeraGen** (not measured, like the paper): each task writes its slice
   of the input through the DFS.
2. **Map phase** (measured): every task reads its input slice from the
   DFS and partitions it by key range -- a CPU pass over the data.
3. **Shuffle** (measured): each node ships ``(N-1)/N`` of its map output
   to the other nodes (uniform keys, uniform partitions).
4. **Reduce phase** (measured): a CPU merge pass, then the sorted output
   is written through the DFS *at the configured replication factor* --
   the paper modifies stock TeraSort (which writes one replica) the same
   way, precisely to expose the replication difference.

A small functional core (``generate_records`` / ``sort_records``)
implements the actual 100-byte-record sort so correctness tests can
verify a real TeraSort on real bytes at laptop scale.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.workloads.driver import WorkloadResult, run_tasks, spread_tasks

#: TeraSort's record format: 10-byte key + 90-byte value.
KEY_SIZE = 10
RECORD_SIZE = 100

#: CPU intensity (passes over the data) of map partitioning and reduce
#: merging, relative to the node's base compute rate.
MAP_INTENSITY = 0.6
REDUCE_INTENSITY = 0.8


# ----------------------------------------------------------------------
# Functional core: a real record sort on real bytes.
# ----------------------------------------------------------------------
def generate_records(num_records: int, seed: int = 0) -> np.ndarray:
    """Deterministic TeraGen: ``num_records`` rows of 100 random bytes."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(num_records, RECORD_SIZE), dtype=np.uint8)


def sort_records(records: np.ndarray) -> np.ndarray:
    """Sort records by their 10-byte key, stable (TeraSort semantics)."""
    if records.ndim != 2 or records.shape[1] != RECORD_SIZE:
        raise ValueError("records must be an (n, 100) byte array")
    keys = records[:, :KEY_SIZE]
    # Lexicographic sort on the key bytes; np.lexsort sorts by the last
    # key first, so feed the columns most-significant-last.
    order = np.lexsort(tuple(keys[:, i] for i in reversed(range(KEY_SIZE))))
    return records[order]


def is_sorted(records: np.ndarray) -> bool:
    keys = records[:, :KEY_SIZE]
    prev = keys[:-1]
    cur = keys[1:]
    # Compare rows lexicographically via tobytes on the view.
    return all(prev[i].tobytes() <= cur[i].tobytes() for i in range(len(prev)))


# ----------------------------------------------------------------------
# Timed workload.
# ----------------------------------------------------------------------
def teragen(dfs, total_bytes: int, tasks_per_node: Optional[int] = None) -> None:
    """Generate the TeraSort input (excluded from the measured runtime)."""
    tasks = (tasks_per_node or dfs.config.tasks_per_node) * len(dfs.clients)
    per_task = total_bytes // tasks
    clients = spread_tasks(dfs, tasks)

    def all_gens():
        procs = [
            dfs.sim.process(
                client.write_file(f"/terasort/in/part-{i}", per_task),
                name=f"teragen:{i}",
            )
            for i, client in enumerate(clients)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(all_gens())


def terasort_tasks(
    dfs,
    total_bytes: int,
    tasks_per_node: Optional[int] = None,
    input_prefix: str = "/terasort/in",
    output_prefix: str = "/terasort/out",
    shuffle_counter: Optional[List[int]] = None,
) -> List[Generator]:
    """Build the TeraSort task bodies without driving the simulator.

    Each body does the map read (data-local), the partition CPU pass,
    the all-to-all shuffle, the reduce merge pass, and the replicated
    output write.  ``shuffle_counter`` (a one-element list) accumulates
    the MapReduce-internal shuffle volume for the caller.  Usable via
    :func:`~repro.workloads.driver.run_tasks` for measured runs or
    :func:`~repro.workloads.driver.workload_body` inside a live scenario
    (the chaos soak runs TeraSort under fault injection this way).
    """
    tasks = (tasks_per_node or dfs.config.tasks_per_node) * len(dfs.clients)
    per_task = total_bytes // tasks
    clients = spread_tasks(dfs, tasks)
    num_nodes = len(dfs.clients)
    switch = dfs.switch
    counter = shuffle_counter if shuffle_counter is not None else [0]

    def task(index: int) -> Generator:
        client = clients[index]
        node = client.node
        # Map: read the input slice (maps are scheduled data-local, as
        # Hadoop's scheduler does) and partition it (CPU pass).
        yield from client.read_file(f"{input_prefix}/part-{index}", prefer_local=True)
        yield from node.compute_bytes(per_task, intensity=MAP_INTENSITY)
        # Shuffle: ship (N-1)/N of the slice to the other nodes.
        share = per_task // num_nodes
        flows = []
        for peer_client in dfs.clients:
            peer = peer_client.node
            if peer is node or share == 0:
                continue
            flows.append(
                switch.transfer(node.primary_nic, peer.primary_nic, share)
            )
            counter[0] += share
        if flows:
            yield dfs.sim.all_of(flows)
        # Reduce: merge (CPU pass) and write the sorted output at the
        # configured replication.
        yield from node.compute_bytes(per_task, intensity=REDUCE_INTENSITY)
        yield from client.write_file(f"{output_prefix}/part-{index}", per_task)
        return None

    return [task(i) for i in range(tasks)]


def terasort(
    dfs,
    total_bytes: int,
    tasks_per_node: Optional[int] = None,
    output_replication: Optional[int] = None,
    name: str = "terasort",
) -> WorkloadResult:
    """Run the measured TeraSort over a previously TeraGen'd input."""
    shuffle_counter = [0]
    bodies = terasort_tasks(
        dfs, total_bytes, tasks_per_node, shuffle_counter=shuffle_counter
    )
    result = run_tasks(dfs, bodies, name)
    # Record the MapReduce-internal shuffle volume so the Fig. 10 metric
    # (accumulated DFS traffic) can be separated from it -- the paper's
    # counter tracks the HDFS layer, where replication dominates.
    result.extra["shuffle_bytes"] = float(shuffle_counter[0])
    return result
