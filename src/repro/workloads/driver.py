"""Shared workload plumbing: task fan-out and result accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List

from repro import units


@dataclass
class WorkloadResult:
    """What one workload run measured."""

    name: str
    runtime: float
    network_bytes: int
    disk_reads: int = 0
    disk_writes: int = 0
    disk_bytes_read: int = 0
    disk_bytes_written: int = 0
    disk_seeks: int = 0
    tasks: int = 0
    #: Workload-specific extras (e.g. TeraSort's shuffle volume, so the
    #: DFS-layer traffic can be separated from MapReduce-internal flows).
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def dfs_network_bytes(self) -> float:
        """Network volume minus MapReduce-internal (shuffle) traffic."""
        return self.network_bytes - self.extra.get("shuffle_bytes", 0.0)

    @property
    def runtime_minutes(self) -> float:
        return self.runtime / units.MINUTE

    @property
    def network_gb(self) -> float:
        return self.network_bytes / units.GB

    def summary(self) -> str:
        return (
            f"{self.name}: {units.format_duration(self.runtime)}, "
            f"network {self.network_gb:.1f} GB, "
            f"disk r/w {self.disk_reads}/{self.disk_writes}, "
            f"seeks {self.disk_seeks}"
        )


def workload_body(dfs, task_bodies: List[Generator], name: str) -> Generator:
    """Process body fanning the tasks out and waiting for all of them.

    Usable from *inside* a running simulation (a chaos scenario, a
    monitored run), unlike :func:`run_tasks`, which drives the simulator
    itself and therefore cannot coexist with live monitor loops.
    """
    procs = [
        dfs.sim.process(body, name=f"{name}:task{i}")
        for i, body in enumerate(task_bodies)
    ]
    yield dfs.sim.all_of(procs)
    return None


def run_tasks(dfs, task_bodies: List[Generator], name: str) -> WorkloadResult:
    """Run task process bodies concurrently; measure the workload window.

    ``dfs`` is an HdfsCluster or RaidpCluster.  Counters are measured as
    deltas across the run so preparatory phases (TeraGen, cache warm-up)
    are excluded, matching the paper's methodology.
    """
    start_time = dfs.sim.now
    start_network = dfs.total_network_bytes()
    start_disk = dfs.cluster.total_disk_stats()

    dfs.sim.run_process(workload_body(dfs, task_bodies, name))
    end_disk = dfs.cluster.total_disk_stats()
    return WorkloadResult(
        name=name,
        runtime=dfs.sim.now - start_time,
        network_bytes=dfs.total_network_bytes() - start_network,
        disk_reads=end_disk["reads"] - start_disk["reads"],
        disk_writes=end_disk["writes"] - start_disk["writes"],
        disk_bytes_read=end_disk["bytes_read"] - start_disk["bytes_read"],
        disk_bytes_written=end_disk["bytes_written"] - start_disk["bytes_written"],
        disk_seeks=end_disk["seeks"] - start_disk["seeks"],
        tasks=len(task_bodies),
    )


def spread_tasks(dfs, total_tasks: int) -> List:
    """Assign tasks to clients round-robin (Hadoop collocates tasks)."""
    clients = dfs.clients
    return [clients[i % len(clients)] for i in range(total_tasks)]
