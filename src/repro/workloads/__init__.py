"""Benchmark workloads: the paper's evaluation drivers.

- :mod:`repro.workloads.dfsio` -- TestDFSIO write/read (Fig. 8, Fig. 9).
- :mod:`repro.workloads.terasort` -- TeraGen + TeraSort with configurable
  output replication (Fig. 10), including a functional record sort used
  by the correctness tests.
- :mod:`repro.workloads.wordcount` -- WordCount: read-dominated I/O with
  a heavy CPU component (Fig. 10).

All drivers run against either an :class:`~repro.hdfs.filesystem.HdfsCluster`
or a :class:`~repro.core.cluster.RaidpCluster` (same duck type) and
return a :class:`~repro.workloads.driver.WorkloadResult` with runtime,
network volume, and disk counters.
"""

from repro.workloads.dfsio import dfsio_read, dfsio_write
from repro.workloads.driver import WorkloadResult
from repro.workloads.terasort import terasort, sort_records, generate_records
from repro.workloads.wordcount import wordcount

__all__ = [
    "WorkloadResult",
    "dfsio_read",
    "dfsio_write",
    "generate_records",
    "sort_records",
    "terasort",
    "wordcount",
]
