"""Trace-driven workloads (paper §8: "real-world traces from databases
could be used to showcase the I/O savings that [in-place] updates provide").

Provides a minimal trace format (:class:`TraceOp`), a seeded YCSB-style
generator with Zipfian key popularity, and a replayer that drives the
trace through DFS clients in one of two modes:

- ``in_place``: updates use :meth:`DfsClient.update_file_range` -- the
  RAIDP extension; only the touched ranges move.
- ``rewrite``: updates rewrite the whole file (the append-only HDFS way:
  delete + re-create).

Comparing the two modes on the same trace quantifies the §8 claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro import units
from repro.errors import DfsError
from repro.workloads.driver import WorkloadResult, run_tasks


@dataclass(frozen=True)
class TraceOp:
    """One operation of a storage trace."""

    kind: str  # "write" | "read" | "update"
    path: str
    offset: int = 0
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("write", "read", "update"):
            raise ValueError(f"unknown trace op {self.kind!r}")


def zipf_weights(n: int, skew: float = 0.99) -> List[float]:
    """Zipfian popularity weights for ranks 1..n."""
    weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def generate_ycsb_trace(
    num_records: int = 20,
    record_size: int = 4 * units.MiB,
    operations: int = 200,
    update_fraction: float = 0.5,
    update_size: int = 64 * units.KiB,
    skew: float = 0.99,
    seed: int = 0x7AACE,
) -> List[TraceOp]:
    """A YCSB-A-like trace: zipfian reads and small in-record updates.

    Begins with a load phase (one write per record), then ``operations``
    reads/updates with Zipfian record popularity.
    """
    if not 0.0 <= update_fraction <= 1.0:
        raise ValueError("update_fraction must be within [0, 1]")
    rng = random.Random(seed)
    paths = [f"/ycsb/record-{i:04d}" for i in range(num_records)]
    trace = [TraceOp("write", path, 0, record_size) for path in paths]
    weights = zipf_weights(num_records, skew)
    for _ in range(operations):
        path = rng.choices(paths, weights=weights)[0]
        if rng.random() < update_fraction:
            offset = rng.randrange(0, max(record_size - update_size, 1))
            trace.append(TraceOp("update", path, offset, update_size))
        else:
            trace.append(TraceOp("read", path, 0, record_size))
    return trace


def replay_trace(
    dfs,
    trace: Sequence[TraceOp],
    mode: str = "in_place",
    clients_used: Optional[int] = None,
    name: Optional[str] = None,
) -> WorkloadResult:
    """Replay a trace against a cluster; returns the usual counters.

    ``mode`` selects how updates are executed: ``in_place`` (RAIDP's
    sub-block path) or ``rewrite`` (delete + full re-write, the
    append-only fallback that works on any DFS).
    """
    if mode not in ("in_place", "rewrite"):
        raise ValueError(f"unknown replay mode {mode!r}")
    clients = dfs.clients[: clients_used or len(dfs.clients)]
    # Per-path ownership keeps per-file op order while allowing different
    # records to proceed in parallel (like independent DB shards).
    by_path: Dict[str, List[TraceOp]] = {}
    for op in trace:
        by_path.setdefault(op.path, []).append(op)

    def shard_task(path: str, ops: List[TraceOp], client) -> Generator:
        size_of: Dict[str, int] = {}
        for op in ops:
            if op.kind == "write":
                if dfs.namenode.file_exists(op.path):
                    yield from client.delete_file(op.path)
                yield from client.write_file(op.path, op.nbytes)
                size_of[op.path] = op.nbytes
            elif op.kind == "read":
                yield from client.read_file(op.path)
            elif op.kind == "update":
                if mode == "in_place":
                    yield from client.update_file_range(op.path, op.offset, op.nbytes)
                else:
                    # Append-only fallback: rewrite the whole record.
                    yield from client.rewrite_file(op.path)
        return None

    bodies = [
        shard_task(path, ops, clients[index % len(clients)])
        for index, (path, ops) in enumerate(sorted(by_path.items()))
    ]
    return run_tasks(dfs, bodies, name or f"trace-{mode}")


def update_amplification(trace: Sequence[TraceOp]) -> float:
    """Bytes a rewrite-mode replay moves per byte an in-place one does.

    Pure trace arithmetic (no simulation): every update costs its range
    in-place, but the whole record under rewrite.
    """
    sizes: Dict[str, int] = {}
    in_place = 0
    rewrite = 0
    for op in trace:
        if op.kind == "write":
            sizes[op.path] = op.nbytes
        elif op.kind == "update":
            in_place += op.nbytes
            rewrite += sizes.get(op.path, op.nbytes)
    if in_place == 0:
        raise DfsError("trace contains no updates")
    return rewrite / in_place
