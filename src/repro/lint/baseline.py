"""Reviewed-baseline support: accept known findings, flag everything new.

A baseline is a reviewed snapshot of findings the team has decided to
tolerate for now.  Each finding gets a *fingerprint* that survives
unrelated edits: it hashes the path, rule id, message, and an occurrence
counter -- **not** the line number, so inserting a docstring above a
tolerated finding does not resurrect it, while a genuinely new instance
of the same (path, rule, message) gets occurrence ``n+1`` and fails the
gate.  The same fingerprints ride in the SARIF ``partialFingerprints``
so code-scanning identity matches the local gate.

The file format is deliberately reviewable in diffs::

    {
      "schema": 1,
      "fingerprints": {"<hex>": "path:line: RULE message", ...}
    }

The value is a human-readable hint only; matching uses the key.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from .engine import Finding

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "fingerprint_findings",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
]

BASELINE_SCHEMA_VERSION = 1


def fingerprint_findings(
    findings: List[Finding],
) -> Iterator[Tuple[Finding, str]]:
    """Each finding with its stable fingerprint, input order preserved."""
    occurrence: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        key = (finding.path, finding.rule, finding.message)
        n = occurrence.get(key, 0)
        occurrence[key] = n + 1
        digest = hashlib.sha256(
            f"{finding.path}\x00{finding.rule}\x00{finding.message}\x00{n}".encode(
                "utf-8"
            )
        ).hexdigest()[:20]
        yield finding, digest


def write_baseline(findings: List[Finding], path: str) -> int:
    """Write the reviewed baseline; returns the number of entries."""
    fingerprints = {
        digest: f"{finding.path}:{finding.line}: {finding.rule} {finding.message}"
        for finding, digest in fingerprint_findings(findings)
    }
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "fingerprints": dict(sorted(fingerprints.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(fingerprints)


def load_baseline(path: str) -> Dict[str, str]:
    """fingerprint -> hint; a missing file is an empty baseline."""
    file = Path(path)
    if not file.exists():
        return {}
    payload = json.loads(file.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema {payload.get('schema')!r}; "
            f"this tool reads schema {BASELINE_SCHEMA_VERSION}"
        )
    fingerprints = payload.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise ValueError(f"baseline {path}: 'fingerprints' must be an object")
    return fingerprints


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, str]
) -> Tuple[List[Finding], int]:
    """(findings not in the baseline, count of baselined ones)."""
    if not baseline:
        return findings, 0
    kept: List[Finding] = []
    matched = 0
    for finding, digest in fingerprint_findings(findings):
        if digest in baseline:
            matched += 1
        else:
            kept.append(finding)
    return kept, matched
