"""The RDP rule set: simulation-correctness invariants as AST checks.

Each rule turns one prose invariant from DESIGN.md into a machine check:

``RDP001``
    No wall-clock or entropy in deterministic code: ``time.time``,
    ``datetime.now``, ``os.urandom``, module-level ``random.*``,
    unseeded ``random.Random()`` / ``default_rng()``, and ``hash()`` of
    runtime values (string hashing is randomized per process by
    ``PYTHONHASHSEED``) outside ``__hash__``.
``RDP002``
    No iteration over unordered containers where the order can steer
    scheduling or placement: ``for x in some_set``, comprehensions over
    sets, ``list(set(...))`` -- unless the result immediately feeds an
    order-insensitive consumer (``sorted``, ``sum``, ``len``, ...).
    ``dict.keys()`` iteration is flagged as a warning: iterate the dict
    itself (insertion order is the contract).
``RDP003``
    Simulation code must not block on the OS: no ``time.sleep``,
    ``threading``/``subprocess``/``socket`` imports, raw ``open()`` or
    ``input()`` inside ``sim/``, ``core/``, ``hdfs/`` (the simulated
    data plane) -- real I/O belongs to ``storage/``, ``hdfs/localfs``,
    exporters, and tools.
``RDP004``
    Every literal span category at a tracer emission site must be
    registered in :data:`repro.obs.taxonomy.CATEGORIES`.
``RDP005``
    Float accumulation in stats code goes through ``math.fsum`` /
    ``MetricSet`` idioms, not bare ``sum()`` (associativity drift).
``RDP006``
    Public functions in ``core/`` and ``sim/`` are fully annotated
    (every parameter and the return type) -- the static half of the
    strict mypy gate.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .engine import FileContext, Finding, Rule

__all__ = [
    "WallClockRule",
    "UnorderedIterationRule",
    "BlockingCallRule",
    "TraceTaxonomyRule",
    "FloatSumRule",
    "AnnotationRule",
    "DEFAULT_RULES",
    "default_rules",
]


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested attributes, ``name`` for plain names."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    links: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            links[child] = parent
    return links


# ----------------------------------------------------------------------
# RDP001 -- wall clock and entropy.
# ----------------------------------------------------------------------
class WallClockRule(Rule):
    id = "RDP001"
    title = "no wall-clock or entropy sources in deterministic code"
    severity = "error"

    #: Dotted call suffixes that read the host clock or OS entropy.
    CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "date.today",
            "os.urandom",
            "uuid.uuid1",
            "uuid.uuid4",
            "secrets.token_bytes",
            "secrets.token_hex",
            "secrets.randbits",
            "secrets.choice",
        }
    )
    #: Module-level ``random.*`` functions (share hidden global state
    #: seeded from the OS; sim code must use a seeded ``random.Random``).
    RANDOM_MODULE_CALLS = frozenset(
        {
            "random.random",
            "random.randint",
            "random.randrange",
            "random.choice",
            "random.choices",
            "random.shuffle",
            "random.sample",
            "random.uniform",
            "random.gauss",
            "random.expovariate",
            "random.getrandbits",
            "random.seed",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Manual DFS carrying "inside __hash__" so hash() in a __hash__
        # implementation (hashing *is* its contract) is exempt.
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, False, findings)
        return iter(findings)

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        in_hash_method: bool,
        findings: List[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_hash_method = node.name == "__hash__"
        if isinstance(node, ast.Call):
            self._check_call(ctx, node, in_hash_method, findings)
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, in_hash_method, findings)

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        in_hash_method: bool,
        findings: List[Finding],
    ) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in self.RANDOM_MODULE_CALLS:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"module-level {dotted}() uses hidden OS-seeded global "
                    "state; use an explicitly seeded random.Random(seed)",
                )
            )
            return
        for suffix in self.CLOCK_CALLS:
            if dotted == suffix or dotted.endswith("." + suffix):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{dotted}() reads the wall clock / OS entropy; "
                        "simulation results must derive only from sim time "
                        "and explicit seeds",
                    )
                )
                return
        if dotted in ("random.Random", "Random") and not node.args and not node.keywords:
            findings.append(
                self.finding(
                    ctx, node, "random.Random() without a seed is OS-seeded; pass one"
                )
            )
            return
        if dotted.endswith("default_rng") and not node.args and not node.keywords:
            findings.append(
                self.finding(
                    ctx, node, "default_rng() without a seed is OS-seeded; pass one"
                )
            )
            return
        if dotted == "hash" and not in_hash_method:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "hash() of str/bytes is randomized per process "
                    "(PYTHONHASHSEED); derive stable values via zlib.crc32 "
                    "or use it only for in-process comparison",
                )
            )


# ----------------------------------------------------------------------
# RDP002 -- unordered iteration.
# ----------------------------------------------------------------------
class UnorderedIterationRule(Rule):
    id = "RDP002"
    title = "no iteration over unordered sets feeding decisions"
    severity = "error"

    #: Consumers whose result does not depend on element order.
    ORDER_INSENSITIVE = frozenset(
        {"sorted", "sum", "fsum", "len", "any", "all", "set", "frozenset", "min", "max"}
    )
    #: Conversions that freeze the (arbitrary) order into a sequence.
    ORDER_FREEZING = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = _parents(ctx.tree)
        known_by_scope = self._known_set_names(ctx.tree, parents)
        for node in ast.walk(ctx.tree):
            known_sets = self._names_in_scope(node, parents, known_by_scope)
            if isinstance(node, ast.For):
                yield from self._check_iter(ctx, node.iter, known_sets, exempt=False)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                exempt = self._feeds_order_insensitive(node, parents)
                for comp in node.generators:
                    yield from self._check_iter(ctx, comp.iter, known_sets, exempt)
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in self.ORDER_FREEZING and node.args:
                    if self._is_setish(node.args[0], known_sets):
                        yield self.finding(
                            ctx,
                            node,
                            f"{dotted}() over a set freezes arbitrary hash "
                            "order into a sequence; use sorted(...)",
                        )
                elif (
                    dotted in ("min", "max")
                    and node.args
                    and any(kw.arg == "key" for kw in node.keywords)
                    and self._is_setish(node.args[0], known_sets)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}(..., key=...) over a set breaks key ties "
                        "in hash order; iterate sorted(...) instead",
                    )

    def _check_iter(
        self,
        ctx: FileContext,
        iter_node: ast.AST,
        known_sets: Set[str],
        exempt: bool,
    ) -> Iterator[Finding]:
        if exempt:
            return
        if self._is_setish(iter_node, known_sets):
            yield self.finding(
                ctx,
                iter_node,
                "iterating a set: element order is arbitrary hash order "
                "and can steer scheduling/placement; wrap in sorted(...)",
            )
        elif self._is_keys_call(iter_node):
            yield Finding(
                path=ctx.path,
                line=iter_node.lineno,
                col=iter_node.col_offset + 1,
                rule=self.id,
                severity="warning",
                message="iterate the dict directly instead of .keys(); "
                ".keys() at an iteration site suggests hash-order thinking",
            )

    def _feeds_order_insensitive(
        self, node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        """True when a comprehension is an argument of sorted()/sum()/...

        ``sorted(r for r in free if legal(r))`` is deterministic even
        though ``free`` is a set -- the outer consumer re-establishes
        the order (or never observes one).  min/max only qualify here
        without a key (key ties would resurface the hash order).
        """
        parent = parents.get(node)
        if not isinstance(parent, ast.Call) or node not in parent.args:
            return False
        dotted = _dotted(parent.func)
        if dotted is None:
            return False
        name = dotted.rsplit(".", 1)[-1]
        if name not in self.ORDER_INSENSITIVE:
            return False
        if name in ("min", "max") and any(kw.arg == "key" for kw in parent.keywords):
            return False
        return True

    @staticmethod
    def _enclosing_scope(
        node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[ast.AST]:
        """The innermost function def containing ``node`` (None = module)."""
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        return None

    @classmethod
    def _names_in_scope(
        cls,
        node: ast.AST,
        parents: Dict[ast.AST, ast.AST],
        known_by_scope: Dict[Optional[ast.AST], Set[str]],
    ) -> Set[str]:
        """Set-typed names visible at ``node``: its scope chain's union."""
        names: Set[str] = set(known_by_scope.get(None, ()))
        current: Optional[ast.AST] = cls._enclosing_scope(node, parents)
        while current is not None:
            names.update(known_by_scope.get(current, ()))
            current = cls._enclosing_scope(current, parents)
        return names

    @classmethod
    def _known_set_names(
        cls, tree: ast.Module, parents: Dict[ast.AST, ast.AST]
    ) -> Dict[Optional[ast.AST], Set[str]]:
        """Names assigned a set, grouped by enclosing function scope.

        Per-scope tracking avoids cross-function false positives (the
        same name bound to a list elsewhere); within a scope the
        tracking is flow-insensitive -- a false positive is one
        ``sorted()`` away, and that keeps the pass to a single walk.
        """
        known: Dict[Optional[ast.AST], Set[str]] = {}
        set_annotations = {"set", "Set", "frozenset", "FrozenSet", "MutableSet"}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                scope = cls._enclosing_scope(node, parents)
                if cls._is_setish(node.value, known.get(scope, set())):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            known.setdefault(scope, set()).add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                annotation = node.annotation
                base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
                dotted = _dotted(base)
                if dotted is not None and dotted.rsplit(".", 1)[-1] in set_annotations:
                    scope = cls._enclosing_scope(node, parents)
                    known.setdefault(scope, set()).add(node.target.id)
        return known

    @staticmethod
    def _is_setish(node: ast.AST, known_sets: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            return dotted in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in known_sets
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return UnorderedIterationRule._is_setish(
                node.left, known_sets
            ) or UnorderedIterationRule._is_setish(node.right, known_sets)
        return False

    @staticmethod
    def _is_keys_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
        )


# ----------------------------------------------------------------------
# RDP003 -- blocking / OS calls inside the simulated data plane.
# ----------------------------------------------------------------------
class BlockingCallRule(Rule):
    id = "RDP003"
    title = "sim processes must not block on the OS"
    severity = "error"
    paths = (
        "*/repro/sim/*",
        "*/repro/core/*",
        "*/repro/hdfs/*",
        "*/repro/faults.py",
    )

    BLOCKING_IMPORTS = frozenset(
        {"threading", "multiprocessing", "subprocess", "socket", "asyncio", "select"}
    )
    BLOCKING_CALLS = frozenset(
        {"time.sleep", "os.system", "os.popen", "os.fork", "os.wait"}
    )
    BLOCKING_BUILTINS = frozenset({"open", "input"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in self.BLOCKING_IMPORTS:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} in simulated code: "
                            "concurrency and I/O happen in simulated time "
                            "(sim.timeout / disk models), not OS primitives",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in self.BLOCKING_IMPORTS:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {node.module!r} in simulated code: "
                        "use simulated primitives instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                if dotted in self.BLOCKING_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}() blocks the host inside a sim process; "
                        "yield sim.timeout(...) to model latency",
                    )
                elif dotted in self.BLOCKING_BUILTINS:
                    yield self.finding(
                        ctx,
                        node,
                        f"raw {dotted}() in the simulated data plane; real "
                        "file I/O belongs to storage/, exporters, or tools/",
                    )


# ----------------------------------------------------------------------
# RDP004 -- trace categories must be registered.
# ----------------------------------------------------------------------
class TraceTaxonomyRule(Rule):
    id = "RDP004"
    title = "trace span categories must be registered in the taxonomy"
    severity = "error"

    #: method name -> index of its category argument.
    EMITTERS = {"complete": 0, "instant": 0, "count": 0, "span": 1}

    def __init__(self, categories: Optional[frozenset] = None) -> None:
        if categories is None:
            from repro.obs.taxonomy import CATEGORIES

            categories = frozenset(CATEGORIES)
        self.categories = categories

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            index = self.EMITTERS.get(node.func.attr)
            if index is None or not self._is_tracer(node.func.value):
                continue
            if len(node.args) <= index:
                continue
            category = node.args[index]
            if not isinstance(category, ast.Constant) or not isinstance(
                category.value, str
            ):
                continue
            if category.value not in self.categories:
                yield self.finding(
                    ctx,
                    node,
                    f"span category {category.value!r} is not registered in "
                    "repro.obs.taxonomy.CATEGORIES; register it (one line) "
                    "so exporters and summaries can see these events",
                )

    @staticmethod
    def _is_tracer(receiver: ast.AST) -> bool:
        dotted = _dotted(receiver)
        if dotted is None:
            return False
        last = dotted.rsplit(".", 1)[-1].lstrip("_").lower()
        return last in ("trace", "tracer")


# ----------------------------------------------------------------------
# RDP005 -- float accumulation hygiene in stats code.
# ----------------------------------------------------------------------
class FloatSumRule(Rule):
    id = "RDP005"
    title = "float accumulation goes through math.fsum / MetricSet"
    severity = "error"
    paths = (
        "*/repro/sim/*",
        "*/repro/obs/*",
        "*/repro/analysis/*",
        "*/repro/experiments/*",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = _parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _dotted(node.func) != "sum" or not node.args:
                continue
            if self._float_typed(node.args[0]) or self._result_divided(node, parents):
                yield self.finding(
                    ctx,
                    node,
                    "bare sum() over floats accumulates rounding error "
                    "order-sensitively; use math.fsum() (or a MetricSet "
                    "counter for integral series)",
                )

    @staticmethod
    def _float_typed(node: ast.AST) -> bool:
        """Heuristic: the summed expression visibly does float math."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func) or ""
                if dotted.rsplit(".", 1)[-1] in ("float", "average", "mean"):
                    return True
        return False

    @staticmethod
    def _result_divided(node: ast.Call, parents: Dict[ast.AST, ast.AST]) -> bool:
        """``sum(xs) / n`` is a mean of floats in all our stats code."""
        parent = parents.get(node)
        return (
            isinstance(parent, ast.BinOp)
            and isinstance(parent.op, ast.Div)
            and parent.left is node
        )


# ----------------------------------------------------------------------
# RDP006 -- public API annotation completeness.
# ----------------------------------------------------------------------
class AnnotationRule(Rule):
    id = "RDP006"
    title = "public functions in core/ and sim/ are fully annotated"
    severity = "error"
    paths = ("*/repro/core/*", "*/repro/sim/*")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_body(ctx, ctx.tree.body, depth=0)

    def _check_body(
        self, ctx: FileContext, body: List[ast.stmt], depth: int
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(ctx, node.body, depth)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth == 0 and self._is_public(node.name):
                    missing = self._missing(node)
                    if missing:
                        yield self.finding(
                            ctx,
                            node,
                            f"public function {node.name}() is missing "
                            f"annotations: {', '.join(missing)}",
                        )
                # Nested defs are implementation detail; don't recurse
                # into them for *public* checks, but sim process bodies
                # defined inline still get their enclosing def checked.

    @staticmethod
    def _is_public(name: str) -> bool:
        if name == "__init__":
            return True
        return not name.startswith("_")

    @staticmethod
    def _missing(node: ast.stmt) -> List[str]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        ordered = args.posonlyargs + args.args + args.kwonlyargs
        missing = [
            arg.arg
            for index, arg in enumerate(ordered)
            if arg.annotation is None
            and not (index == 0 and arg.arg in ("self", "cls"))
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return")
        return missing


def default_rules(taxonomy: Optional[frozenset] = None) -> List[Rule]:
    """The standard rule set, in id order: flat rules then flow rules."""
    from .flowrules import FLOW_RULES

    return [
        WallClockRule(),
        UnorderedIterationRule(),
        BlockingCallRule(),
        TraceTaxonomyRule(categories=taxonomy),
        FloatSumRule(),
        AnnotationRule(),
    ] + FLOW_RULES()


#: Instantiated standard rules (module-import side-effect free except
#: for the taxonomy import inside TraceTaxonomyRule).
DEFAULT_RULES = default_rules
