"""A worklist dataflow framework over :mod:`repro.lint.cfg` graphs.

Two lattices cover the RDP1xx rules:

* **Reaching definitions with yield staleness** -- the classic
  var -> {definition sites} map, augmented with one bit per definition:
  has the definition *crossed a yield point* since it was made?  A
  simulation process that reads shared state into a local, yields, and
  writes the local back is exactly "a stale definition reaches a
  write-back", so the staleness bit turns RDP102 into a set-membership
  test.
* **Live acquires** -- a may-analysis over gen/kill sets supplied by the
  rule: tokens (grants) enter the set at acquire sites and leave at
  release/escape sites.  A token alive at the normal or exceptional
  exit is a leak.  Exception edges normally carry the state *before*
  the raising statement; ``exc_kills`` lets a rule declare per-node
  kills that hold even on the exception edge (a ``release`` inside a
  ``finally`` is trusted to run -- cleanup code is assumed
  non-throwing, the standard analyzer concession).

The solver is a plain round-robin worklist over reverse postorder.
States are compared with ``==`` and joined per edge; everything
iterates in deterministic order so the linter's output is byte-stable.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Generic, List, Optional, Tuple, TypeVar

from .cfg import CFG, CFGNode

__all__ = [
    "ForwardAnalysis",
    "run_forward",
    "ReachingDefinitions",
    "Definition",
    "GenKillAnalysis",
    "assigned_names",
]

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Interface a forward dataflow analysis implements."""

    def initial(self, cfg: CFG) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        raise NotImplementedError

    def transfer_exc(self, node: CFGNode, state: S) -> S:
        """State carried on an exception edge out of ``node``.

        Default: the in-state -- the statement aborted before taking
        effect.
        """
        return state


def run_forward(cfg: CFG, analysis: ForwardAnalysis[S]) -> Tuple[List[Optional[S]], List[Optional[S]]]:
    """Solve a forward analysis; returns (in_states, out_states) by index.

    Unreached nodes keep ``None``.  Termination relies on the analysis
    being monotone over a finite lattice (all ours are: finite sets
    grow, maps of finite sets grow).
    """
    order = cfg.reverse_postorder()
    position = {index: pos for pos, index in enumerate(order)}
    in_states: List[Optional[S]] = [None] * len(cfg.nodes)
    out_states: List[Optional[S]] = [None] * len(cfg.nodes)
    exc_states: List[Optional[S]] = [None] * len(cfg.nodes)
    in_states[CFG.ENTRY] = analysis.initial(cfg)

    # The worklist holds RPO *positions* (unique ints), so min() below is
    # tie-free and the schedule is deterministic.
    pending = set(range(len(order)))
    while pending:
        pos = min(pending)
        pending.discard(pos)
        index = order[pos]
        node = cfg.nodes[index]
        state = in_states[index]
        if index != CFG.ENTRY:
            state = None
            for pred_index, kind in node.preds:
                source = (
                    exc_states[pred_index] if kind == "exc" else out_states[pred_index]
                )
                if source is None:
                    continue
                state = source if state is None else analysis.join(state, source)
            if state is None:
                continue  # no reaching predecessor yet
            if state == in_states[index] and out_states[index] is not None:
                continue  # fixpoint at this node
            in_states[index] = state
        new_out = analysis.transfer(node, state)
        new_exc = analysis.transfer_exc(node, state) if node.can_raise else state
        if new_out != out_states[index] or new_exc != exc_states[index]:
            out_states[index] = new_out
            exc_states[index] = new_exc
            for succ_index, _kind in node.succs:
                succ_pos = position.get(succ_index)
                if succ_pos is not None:
                    pending.add(succ_pos)
        elif out_states[index] is None:
            out_states[index] = new_out
            exc_states[index] = new_exc
    return in_states, out_states


# ----------------------------------------------------------------------
# Reaching definitions with yield staleness.
# ----------------------------------------------------------------------
#: One definition: (defining node index, crossed_a_yield_since).
Definition = Tuple[int, bool]

#: State: variable name -> reaching definitions.  Immutable values so
#: states can be shared between nodes safely.
ReachState = Dict[str, FrozenSet[Definition]]


def assigned_names(stmt: ast.AST) -> List[str]:
    """Variable names a statement (re)binds, in source order."""
    names: List[str] = []

    def targets(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets(elt)
        elif isinstance(node, ast.Starred):
            targets(node.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            names.append((alias.asname or alias.name).split(".", 1)[0])
    # Walrus assignments can hide anywhere in an expression.
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.NamedExpr) and isinstance(sub.target, ast.Name):
            names.append(sub.target.id)
    return names


class ReachingDefinitions(ForwardAnalysis[ReachState]):
    """var -> {(def site, crossed yield)} with union join."""

    def initial(self, cfg: CFG) -> ReachState:
        # Parameters are definitions made at the entry node.
        func = cfg.func
        params: List[str] = []
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = func.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                params.append(arg.arg)
            if args.vararg:
                params.append(args.vararg.arg)
            if args.kwarg:
                params.append(args.kwarg.arg)
        return {name: frozenset({(CFG.ENTRY, False)}) for name in params}

    def join(self, a: ReachState, b: ReachState) -> ReachState:
        if a == b:
            return a
        merged: ReachState = dict(a)
        for name, defs in b.items():
            existing = merged.get(name)
            merged[name] = defs if existing is None else existing | defs
        return merged

    def transfer(self, node: CFGNode, state: ReachState) -> ReachState:
        stmt = node.stmt
        stale = node.is_yield
        killed = assigned_names(stmt) if stmt is not None else []
        if not stale and not killed:
            return state
        new: ReachState = {}
        for name, defs in state.items():
            if stale:
                defs = frozenset((site, True) for site, _crossed in defs)
            new[name] = defs
        for name in killed:
            new[name] = frozenset({(node.index, False)})
        return new


# ----------------------------------------------------------------------
# Generic gen/kill set analysis (the live-acquire lattice).
# ----------------------------------------------------------------------
T = TypeVar("T")


class GenKillAnalysis(ForwardAnalysis[FrozenSet[T]]):
    """May-analysis over token sets with per-node gen/kill tables.

    ``exc_kills`` are kills that apply even on the exception edge out of
    a node -- used for releases in cleanup blocks, which the leak rule
    trusts to complete.
    """

    def __init__(
        self,
        gens: Dict[int, FrozenSet[T]],
        kills: Dict[int, FrozenSet[T]],
        exc_kills: Optional[Dict[int, FrozenSet[T]]] = None,
    ) -> None:
        self.gens = gens
        self.kills = kills
        self.exc_kills = exc_kills or {}
        self._empty: FrozenSet[T] = frozenset()

    def initial(self, cfg: CFG) -> FrozenSet[T]:
        return self._empty

    def join(self, a: FrozenSet[T], b: FrozenSet[T]) -> FrozenSet[T]:
        return a | b

    def transfer(self, node: CFGNode, state: FrozenSet[T]) -> FrozenSet[T]:
        kills = self.kills.get(node.index)
        gens = self.gens.get(node.index)
        if kills:
            state = state - kills
        if gens:
            state = state | gens
        return state

    def transfer_exc(self, node: CFGNode, state: FrozenSet[T]) -> FrozenSet[T]:
        kills = self.exc_kills.get(node.index)
        return (state - kills) if kills else state
