"""``repro.lint``: determinism & invariant static analysis for this repo.

The simulator's headline guarantee -- bitwise-identical schedules and
fingerprints across runs, job counts, and tracing on/off -- used to be
enforced only after the fact by fingerprint tests.  This package checks
the *causes* statically: no wall clock or entropy in sim code (RDP001),
no hash-order iteration feeding decisions (RDP002), no OS blocking in
sim processes (RDP003), registered trace categories (RDP004), fsum-based
float accumulation in stats (RDP005), and fully annotated public APIs in
``core/``/``sim/`` (RDP006).

Run it as ``python -m repro.lint src/`` or ``make lint``; see
DESIGN.md section 10 for the ruleset and suppression policy.
"""

from .engine import (
    FileContext,
    Finding,
    LintConfig,
    LintEngine,
    Rule,
    Suppressions,
    SUPPRESSION_RULE_ID,
)
from .rules import default_rules
from .cli import build_engine, main

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintEngine",
    "Rule",
    "Suppressions",
    "SUPPRESSION_RULE_ID",
    "default_rules",
    "build_engine",
    "main",
]
