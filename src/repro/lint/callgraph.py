"""A module-level call graph with generator-process classification.

The RDP1xx rules are mostly intraprocedural (one CFG at a time), but
two questions need the module view:

* *Which functions are simulation processes?*  A generator function
  (its own body yields) models a process; one whose instantiation is
  passed to ``Simulator.process`` / ``run_process`` is a *process
  entry point* -- the roots the yield-hazard rules care most about.
* *Where do RNG streams flow?*  RDP103 checks call sites: a call that
  binds a function's rng-ish parameter must pass a value traceable to
  a seeded stream, which requires knowing callee signatures.

Resolution is deliberately module-local and name-based: ``self.m(...)``
inside class ``C`` resolves to ``C.m`` (walking module-local bases),
``f(...)`` to a module-level ``f``, ``C(...)`` to ``C.__init__``, and
anything else stays unresolved.  That covers the repo's idiom (flat
modules, explicit imports) without pretending to be a type checker.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

__all__ = ["CallSite", "FunctionInfo", "ModuleCallGraph"]


class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("callee", "node", "resolved")

    def __init__(self, callee: str, node: ast.Call, resolved: Optional[str]) -> None:
        self.callee = callee  # dotted name as written ("self.m", "f", "C.m")
        self.node = node
        self.resolved = resolved  # qualname within this module, if known


class FunctionInfo:
    """Signature + body facts for one function in the module."""

    __slots__ = ("qualname", "node", "cls", "params", "is_generator", "calls")

    def __init__(
        self,
        qualname: str,
        node: ast.AST,
        cls: Optional[str],
        params: List[str],
        is_generator: bool,
    ) -> None:
        self.qualname = qualname
        self.node = node
        self.cls = cls  # enclosing class name, if a method
        self.params = params  # in declaration order, self/cls included
        self.is_generator = is_generator
        self.calls: List[CallSite] = []


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _own_body_yields(func: ast.AST) -> bool:
    """True when the function's *own* body yields (nested defs opaque)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    found = False
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            found = True
            break
        stack.extend(ast.iter_child_nodes(node))
    return found


class ModuleCallGraph:
    """Functions, classes, edges, and process classification for a module."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        #: Module-local base classes, for method resolution up the chain.
        self.bases: Dict[str, List[str]] = {}
        #: Generator functions whose instantiation is handed to
        #: ``*.process(...)`` / ``*.run_process(...)`` somewhere in the module.
        self.process_entries: List[str] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, tree: ast.AST) -> "ModuleCallGraph":
        graph = cls()
        graph._collect(tree, prefix="", current_class=None)
        for info in graph.functions.values():
            graph._collect_calls(info)
        graph._classify_processes()
        return graph

    def _collect(self, node: ast.AST, prefix: str, current_class: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self.classes[child.name] = child
                self.bases[child.name] = [
                    base_name
                    for base in child.bases
                    if (base_name := _dotted(base)) is not None
                ]
                self._collect(child, prefix=f"{child.name}.", current_class=child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                args = child.args
                params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
                if args.vararg:
                    params.append(args.vararg.arg)
                if args.kwarg:
                    params.append(args.kwarg.arg)
                self.functions[qualname] = FunctionInfo(
                    qualname, child, current_class, params, _own_body_yields(child)
                )
                # Nested defs get their own entries (flattened qualname).
                self._collect(child, prefix=f"{qualname}.", current_class=current_class)

    def _collect_calls(self, info: FunctionInfo) -> None:
        stack: List[ast.AST] = list(ast.iter_child_nodes(info.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested bodies have their own FunctionInfo
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None:
                    info.calls.append(
                        CallSite(dotted, node, self._resolve(dotted, info))
                    )
            stack.extend(ast.iter_child_nodes(node))
        info.calls.sort(key=lambda site: (site.node.lineno, site.node.col_offset))

    def _resolve(self, dotted: str, caller: FunctionInfo) -> Optional[str]:
        parts = dotted.split(".")
        if len(parts) == 1:
            name = parts[0]
            if name in self.functions:
                return name
            if name in self.classes:
                return self._resolve_method(name, "__init__")
            return None
        if len(parts) == 2:
            base, method = parts
            if base in ("self", "cls") and caller.cls is not None:
                return self._resolve_method(caller.cls, method)
            if base in self.classes:
                return self._resolve_method(base, method)
        return None

    def _resolve_method(self, class_name: str, method: str) -> Optional[str]:
        seen = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            qualname = f"{current}.{method}"
            if qualname in self.functions:
                return qualname
            queue.extend(
                base for base in self.bases.get(current, []) if base in self.classes
            )
        return None

    # -- classification -------------------------------------------------
    _PROCESS_SPAWNERS = frozenset({"process", "run_process"})

    def _classify_processes(self) -> None:
        entries = []
        for info in self.functions.values():
            for site in info.calls:
                method = site.callee.rsplit(".", 1)[-1]
                if method not in self._PROCESS_SPAWNERS:
                    continue
                for arg in site.node.args:
                    if not isinstance(arg, ast.Call):
                        continue
                    inner = _dotted(arg.func)
                    if inner is None:
                        continue
                    resolved = self._resolve(inner, info)
                    if resolved is not None and self.functions[resolved].is_generator:
                        entries.append(resolved)
        self.process_entries = sorted(set(entries))

    # -- queries ---------------------------------------------------------
    def generators(self) -> List[str]:
        """Qualnames of all generator functions, sorted."""
        return sorted(q for q, f in self.functions.items() if f.is_generator)

    def callees(self, qualname: str) -> List[str]:
        info = self.functions.get(qualname)
        if info is None:
            return []
        return sorted({s.resolved for s in info.calls if s.resolved is not None})

    def callers(self, qualname: str) -> List[str]:
        out = []
        for name, info in self.functions.items():
            if any(site.resolved == qualname for site in info.calls):
                out.append(name)
        return sorted(out)
