"""``python -m repro.lint`` -- the determinism & invariant linter CLI.

Usage::

    python -m repro.lint src/                  # lint a tree (text output)
    python -m repro.lint --format json src/    # machine-readable findings
    python -m repro.lint --format sarif --output lint.sarif src/
    python -m repro.lint --select RDP101 src/  # one rule only
    python -m repro.lint --baseline .lint-baseline.json src/
    python -m repro.lint --no-cache src/       # force full re-analysis
    python -m repro.lint --list-rules          # the rule set and scopes

Findings are cached per file under ``.lint-cache/`` keyed on content
hash + ruleset version, so a warm run only re-analyzes edited files;
``--no-cache`` bypasses it.  ``--baseline FILE`` filters findings whose
fingerprint a reviewed baseline accepts; ``--write-baseline FILE``
snapshots the current findings as that baseline.

Exit codes: 0 clean, 1 unsuppressed error findings (or warnings under
``--strict``), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import DEFAULT_CACHE_DIR, LintCache
from .engine import Finding, LintConfig, LintEngine
from .rules import default_rules
from .sarif import render_sarif

#: Whole-file exemptions for rules whose premise a file's *purpose*
#: violates.  Kept here (not in each file) so the full exemption surface
#: is reviewable in one place; everything else uses inline
#: ``# raidp: noqa[RULE] -- reason`` suppressions.
DEFAULT_ALLOWLISTS: Dict[str, tuple] = {
    # The perf harness and the hot-path profiler exist to read the wall
    # clock.
    "RDP001": (
        "*/repro/tools/bench.py",
        "*/repro/tools/profile.py",
        "*/repro/obs/simprofile.py",
    ),
    # Real file I/O lives in the exporters and the CLI tools by design.
    "RDP003": ("*/repro/obs/export.py",),
}

#: JSON output schema version (bump on breaking shape changes).
JSON_SCHEMA_VERSION = 1


def build_engine(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    allowlists: Optional[Dict[str, tuple]] = None,
    cache_dir: Optional[str] = None,
) -> LintEngine:
    """The standard engine: default rules + repo allowlists.

    ``cache_dir`` enables the incremental cache (None = no caching --
    library callers opt in; the CLI passes it by default).
    """
    config = LintConfig(
        select=frozenset(select) if select else None,
        ignore=frozenset(ignore) if ignore else frozenset(),
        allowlists=dict(DEFAULT_ALLOWLISTS if allowlists is None else allowlists),
    )
    cache = (
        LintCache(cache_dir, config_key=config.cache_key())
        if cache_dir is not None
        else None
    )
    return LintEngine(default_rules(), config, cache=cache)


def _render_text(
    findings: List[Finding], engine: LintEngine, show_source: bool
) -> str:
    lines: List[str] = []
    sources: Dict[str, List[str]] = {}
    for finding in findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} [{finding.severity}] {finding.message}"
        )
        if show_source:
            try:
                text = sources.setdefault(
                    finding.path,
                    open(finding.path, encoding="utf-8").read().splitlines(),
                )
            except OSError:
                text = []
            if 1 <= finding.line <= len(text):
                source = text[finding.line - 1]
                lines.append(f"    {source.strip()}")
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        f"{engine.files_checked} files checked: "
        f"{errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def _render_json(findings: List[Finding], engine: LintEngine) -> str:
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "files_checked": engine.files_checked,
        "counts": {
            "error": sum(1 for f in findings if f.severity == "error"),
            "warning": sum(1 for f in findings if f.severity == "warning"),
        },
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _list_rules() -> str:
    lines = []
    for rule in default_rules():
        scope = ", ".join(rule.paths) if rule.paths else "all files"
        lines.append(f"{rule.id}  [{rule.severity:<7}] {rule.title}")
        lines.append(f"        scope: {scope}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static determinism & invariant checks for the RAIDP "
        "simulator: flat rules RDP001..RDP007 plus the flow-sensitive "
        "CFG/dataflow rules RDP101..RDP105.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="drop findings whose fingerprint the reviewed baseline accepts",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="snapshot current findings as the reviewed baseline and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental per-file cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"incremental cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-source",
        action="store_true",
        help="print the offending source line under each finding",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the run (exit 1)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src/)")

    select = [r.strip() for r in args.select.split(",")] if args.select else None
    ignore = [r.strip() for r in args.ignore.split(",")] if args.ignore else None
    engine = build_engine(
        select=select,
        ignore=ignore,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    findings = engine.lint_paths(args.paths)

    if args.write_baseline is not None:
        count = write_baseline(findings, args.write_baseline)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0

    baselined = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            parser.error(str(exc))
        findings, baselined = apply_baseline(findings, baseline)

    if args.format == "sarif":
        report = render_sarif(findings, engine.rules)
    elif args.format == "json":
        report = _render_json(findings, engine)
    else:
        report = _render_text(findings, engine, show_source=args.show_source)
        if baselined:
            report += f"\n({baselined} finding(s) accepted by baseline)"
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)

    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module shim
    sys.exit(main())
