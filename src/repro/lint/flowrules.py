"""Flow-sensitive rules RDP101..RDP105, built on cfg/dataflow/callgraph.

The flat rules check syntax; these check *paths*.  Every rule here
reasons over per-function CFGs (:mod:`repro.lint.cfg`), the worklist
analyses (:mod:`repro.lint.dataflow`), and -- where call-site context
matters -- the module call graph (:mod:`repro.lint.callgraph`).

``RDP101`` resource-leak
    A grant obtained by yielding ``resource.request()`` /
    ``lock.acquire(...)`` must be released on **every** CFG path out of
    the function, including exception edges (a failed ``yield`` inside
    a sim process is how disk/node faults surface).  Releases inside a
    ``finally`` satisfy all paths; any other mention of the grant
    (passed on, returned, guarded) counts as an ownership hand-off.

``RDP102`` stale-state-across-yield
    ``local = shared.attr`` ... ``yield`` ... ``shared.attr = f(local)``
    writes back a value read before the process was suspended; the
    calendar scheduler and same-instant batching make whatever ran
    during the suspension invisible to the write.  Re-read after
    resumption.

``RDP103`` RNG stream discipline
    Every random draw must flow from a *named, seeded* stream -- a
    ``Random(seed)`` / ``default_rng(seed)`` / ``SeedSequence`` spawn
    threaded through parameters or seeded in ``__init__`` -- never from
    an untraceable receiver.  Call sites that bind a callee's rng-ish
    parameter are checked interprocedurally via the call graph.

``RDP104`` zero-delay ordering hazard
    Two callbacks registered for the same instant (``add_callback``,
    ``_schedule_callback``, ``add_flush_hook``) that touch the same
    attribute chain -- one writing what a sibling reads or writes --
    are ordered only by now-bucket FIFO position, an accident of
    registration order.  Make the dependency an event edge instead.

``RDP105`` snapshot-safety
    Classes in the snapshot capture graph (``InlineState`` subclasses
    and ``snapshot()``-rooted facades) must not bind ambient handles
    (open files, tracers, std streams) in ``__init__`` unless they
    declare pickling custody via ``__getstate__`` or sit in the
    reviewed exclusion table; ``InlineState`` subclasses must not
    override ``__setstate__`` (that silently defeats the inline-storage
    restore), and declared ``__slots__`` must cover every attribute
    ``__init__`` assigns.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .cfg import CFG
from .dataflow import GenKillAnalysis, ReachingDefinitions, run_forward
from .engine import FileContext, Finding, Rule

__all__ = [
    "ResourceLeakRule",
    "StaleYieldStateRule",
    "RngDisciplineRule",
    "SameInstantHazardRule",
    "SnapshotSafetyRule",
    "FLOW_RULES",
]

#: The simulated data plane: where processes run and resources live.
DATA_PLANE_PATHS = (
    "*/repro/sim/*",
    "*/repro/core/*",
    "*/repro/hdfs/*",
    "*/repro/faults.py",
)


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _pure_chain(node: ast.AST) -> Optional[str]:
    """``a.b.c`` only when the expression is a bare name/attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _pure_chain(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _names_loaded(stmt: ast.AST) -> Set[str]:
    """Every plain name the statement mentions (any context)."""
    return {n.id for n in ast.walk(stmt) if isinstance(n, ast.Name)}


# ----------------------------------------------------------------------
# RDP101 -- resource leaks across CFG paths.
# ----------------------------------------------------------------------
#: token = (grant var, acquiring node index, receiver repr)
_Token = Tuple[str, int, str]


class ResourceLeakRule(Rule):
    id = "RDP101"
    title = "every acquired grant is released on every CFG path"
    severity = "error"
    paths = DATA_PLANE_PATHS

    ACQUIRE_METHODS = frozenset({"request", "acquire"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for qualname in sorted(ctx.function_cfgs()):
            cfg = ctx.function_cfgs()[qualname]
            if not cfg.is_generator:
                continue  # grants are obtained by yielding; nothing to do
            yield from self._check_function(ctx, qualname, cfg)

    # -- acquire/release matching ---------------------------------------
    def _acquire_call(self, value: ast.AST) -> Optional[ast.Call]:
        """The ``X.request()/X.acquire()`` call under a yielded RHS."""
        if isinstance(value, ast.IfExp):
            return self._acquire_call(value.body) or self._acquire_call(value.orelse)
        if isinstance(value, ast.Yield) and value.value is not None:
            call = value.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in self.ACQUIRE_METHODS
            ):
                return call
        return None

    @staticmethod
    def _is_release_stmt(stmt: ast.AST, var: str) -> bool:
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "release"
            and bool(stmt.value.args)
            and isinstance(stmt.value.args[0], ast.Name)
            and stmt.value.args[0].id == var
        )

    def _check_function(
        self, ctx: FileContext, qualname: str, cfg: CFG
    ) -> Iterator[Finding]:
        tokens: List[_Token] = []
        gens: Dict[int, FrozenSet[_Token]] = {}
        for node in cfg.statement_nodes():
            stmt = node.stmt
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                call = self._acquire_call(stmt.value)
                if call is not None:
                    receiver = _dotted(call.func.value) or "<resource>"  # type: ignore[union-attr]
                    token = (stmt.targets[0].id, node.index, receiver)
                    tokens.append(token)
                    gens[node.index] = frozenset({token})
        if not tokens:
            return

        kills: Dict[int, Set[_Token]] = {}
        exc_kills: Dict[int, Set[_Token]] = {}
        released_in_cleanup: Set[_Token] = set()
        for node in cfg.statement_nodes():
            stmt = node.stmt
            assert stmt is not None
            # Compound headers only carry their own expression; simple
            # statements carry everything.  Either way, any mention of
            # the grant var other than its own acquire is a release or
            # an ownership hand-off (returned, passed on, reassigned,
            # guarded) -- the token's fate is decided, so it leaves the
            # may-leak set.  Leaks are paths that never mention it.
            mentioned = _names_loaded(stmt)
            for token in tokens:
                var, acq_index, _receiver = token
                if node.index == acq_index or var not in mentioned:
                    continue
                kills.setdefault(node.index, set()).add(token)
                # The fate is decided on the exception edge too: a
                # release is trusted to complete, and a hand-off/guard
                # means we can no longer claim sole ownership -- either
                # way the token stops being *this* function's leak.
                exc_kills.setdefault(node.index, set()).add(token)
                if self._is_release_stmt(stmt, var) and node.in_cleanup:
                    released_in_cleanup.add(token)
        # Cleanup blocks that release a token are trusted end-to-end:
        # an exception edge out of any cleanup node does not leak tokens
        # whose release lives in cleanup code (the standard non-throwing
        # cleanup concession; without it every try/finally would flag).
        if released_in_cleanup:
            for node in cfg.nodes:
                if node.in_cleanup:
                    exc_kills.setdefault(node.index, set()).update(released_in_cleanup)

        analysis = GenKillAnalysis(
            gens,
            {index: frozenset(ts) for index, ts in kills.items()},
            {index: frozenset(ts) for index, ts in exc_kills.items()},
        )
        in_states, _out = run_forward(cfg, analysis)
        live_normal = in_states[CFG.EXIT] or frozenset()
        live_exc = in_states[CFG.RAISE_EXIT] or frozenset()
        for token in tokens:
            var, acq_index, receiver = token
            on_normal = token in live_normal
            on_exc = token in live_exc
            if not on_normal and not on_exc:
                continue
            if on_normal:
                how = "a return path"
                fix = "release it on every path (try/finally)"
            else:
                how = "an exception path (e.g. a failed yield)"
                fix = "wrap the critical section in try/finally with the release in the finally"
            yield self.finding(
                ctx,
                cfg.nodes[acq_index].stmt or cfg.func,
                f"grant {var!r} from {receiver}.{{request,acquire}}() can leak: "
                f"{how} leaves {qualname}() without releasing it; {fix}",
            )


# ----------------------------------------------------------------------
# RDP102 -- read-modify-write of shared state spanning a yield.
# ----------------------------------------------------------------------
class StaleYieldStateRule(Rule):
    id = "RDP102"
    title = "no write-back of shared state read before a yield"
    severity = "error"
    paths = DATA_PLANE_PATHS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for qualname in sorted(ctx.function_cfgs()):
            cfg = ctx.function_cfgs()[qualname]
            if not cfg.is_generator:
                continue
            yield from self._check_function(ctx, qualname, cfg)

    def _check_function(
        self, ctx: FileContext, qualname: str, cfg: CFG
    ) -> Iterator[Finding]:
        # var definitions of interest: local = <pure attribute chain>.
        chain_defs: Dict[Tuple[str, int], str] = {}  # (var, def node) -> chain
        writebacks: List[Tuple[int, str, Set[str]]] = []  # (node, chain, rhs names)
        for node in cfg.statement_nodes():
            stmt = node.stmt
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                chain = _pure_chain(stmt.value)
                if chain is not None and "." in chain:
                    chain_defs[(target.id, node.index)] = chain
            elif isinstance(target, ast.Attribute):
                chain = _pure_chain(target)
                if chain is not None:
                    writebacks.append((node.index, chain, _names_loaded(stmt.value)))
        if not chain_defs or not writebacks:
            return

        in_states, _out = run_forward(cfg, ReachingDefinitions())
        for node_index, chain, rhs_names in writebacks:
            state = in_states[node_index]
            if state is None:
                continue
            for var in sorted(rhs_names):
                for site, crossed in sorted(state.get(var, frozenset())):
                    if not crossed:
                        continue
                    if chain_defs.get((var, site)) != chain:
                        continue
                    stmt = cfg.nodes[node_index].stmt
                    assert stmt is not None
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{qualname}() writes {chain} back from {var!r}, which "
                        f"was read at line {getattr(cfg.nodes[site].stmt, 'lineno', '?')} "
                        "before a yield; the world can change across a "
                        "suspension -- re-read after resumption",
                    )


# ----------------------------------------------------------------------
# RDP103 -- every random draw flows from a named seeded stream.
# ----------------------------------------------------------------------
class RngDisciplineRule(Rule):
    id = "RDP103"
    title = "random draws flow from seeded streams threaded through parameters"
    severity = "error"
    paths = DATA_PLANE_PATHS + ("*/repro/analysis/*",)

    #: Method names that consume randomness from a stream object.
    DRAW_METHODS = frozenset(
        {
            "random", "randint", "randrange", "getrandbits", "choice", "choices",
            "shuffle", "sample", "uniform", "gauss", "normalvariate", "expovariate",
            "betavariate", "triangular", "vonmisesvariate", "paretovariate",
            "weibullvariate", "lognormvariate",
            # numpy Generator draws used in this repo
            "poisson", "exponential", "weibull", "normal", "standard_normal",
            "integers", "binomial", "hypergeometric", "permutation",
        }
    )
    #: Constructors that yield a *seeded* stream when given arguments.
    SEEDED_CTORS = frozenset({"Random", "default_rng", "RandomState", "SeedSequence"})
    #: Parameter/attribute names that denote a stream by convention.
    RNG_NAMES = frozenset(
        {"rng", "rnd", "rand", "prng", "stream", "seedseq", "seed_seq", "rng_stream"}
    )
    RNG_ANNOTATIONS = frozenset({"Random", "Generator", "RandomState", "SeedSequence"})

    # -- blessing -------------------------------------------------------
    def _rngish_name(self, name: str) -> bool:
        return name in self.RNG_NAMES or "rng" in name.lstrip("_")

    def _rngish_param(self, arg: ast.arg) -> bool:
        if self._rngish_name(arg.arg):
            return True
        if arg.annotation is not None:
            dotted = _dotted(arg.annotation)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in self.RNG_ANNOTATIONS:
                return True
        return False

    def _seeded_ctor(self, call: ast.Call) -> bool:
        dotted = _dotted(call.func)
        if dotted is None:
            return False
        return dotted.rsplit(".", 1)[-1] in self.SEEDED_CTORS and bool(
            call.args or call.keywords
        )

    def _blessed(self, expr: ast.AST, blessed_names: Set[str]) -> bool:
        """Is the expression traceable to a named seeded stream?"""
        if isinstance(expr, ast.Name):
            return expr.id in blessed_names or self._rngish_name(expr.id)
        if isinstance(expr, ast.Attribute):
            # self._rng, model.rng, ... -- an rng-ish *attribute name* is
            # the naming discipline; assignments to such attributes are
            # themselves checked at the assignment site.
            return self._rngish_name(expr.attr)
        if isinstance(expr, ast.Call):
            if self._seeded_ctor(expr):
                return True
            if isinstance(expr.func, ast.Attribute) and expr.func.attr == "spawn":
                return self._blessed(expr.func.value, blessed_names)
            # An rng-ish *factory* (make_rng, self._trial_rng) is the same
            # naming discipline one call deeper; its body is checked when
            # its own function is visited.
            dotted = _dotted(expr.func)
            if dotted is not None and self._rngish_name(dotted.rsplit(".", 1)[-1]):
                return True
            return False
        if isinstance(expr, ast.Subscript):
            return self._blessed(expr.value, blessed_names)
        if isinstance(expr, ast.Starred):
            return self._blessed(expr.value, blessed_names)
        return False

    # -- the check ------------------------------------------------------
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        graph = ctx.callgraph()
        for qualname in sorted(graph.functions):  # type: ignore[attr-defined]
            info = graph.functions[qualname]  # type: ignore[attr-defined]
            yield from self._check_function(ctx, graph, info)

    def _check_function(self, ctx: FileContext, graph: object, info: object) -> Iterator[Finding]:
        func = info.node  # type: ignore[attr-defined]
        blessed: Set[str] = set()
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if self._rngish_param(arg):
                blessed.add(arg.arg)
        # One pass in source order: locals assigned from blessed values
        # are blessed from then on (flow-insensitive but line-ordered,
        # which matches how straight-line seeding code reads).
        statements = _own_statements(func)
        for stmt in statements:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and self._blessed(stmt.value, blessed):
                    blessed.add(target.id)
                # Assignments *to* rng-ish names must themselves be blessed:
                # naming something `rng` and binding it to ambient state is
                # how hidden global streams sneak in.
                for tgt, name in self._rngish_targets(stmt):
                    if not self._blessed(stmt.value, blessed):
                        yield self.finding(
                            ctx,
                            stmt,
                            f"{name!r} is bound to a value that is not a seeded "
                            "stream (seeded Random/default_rng/SeedSequence, a "
                            "spawn of one, or an rng parameter); seed it "
                            "explicitly and thread it through parameters",
                        )
        for node in _own_nodes(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.DRAW_METHODS
                and self._looks_like_stream(node.func.value)
                and not self._blessed(node.func.value, blessed)
            ):
                receiver = _dotted(node.func.value) or "<expr>"
                yield self.finding(
                    ctx,
                    node,
                    f"random draw {receiver}.{node.func.attr}() does not "
                    "flow from a named seeded stream; thread a seeded "
                    "Random/SeedSequence through parameters (RDP103)",
                )
        # Interprocedural: call sites binding a callee's rng-ish
        # parameter must pass a blessed stream.
        for site in info.calls:  # type: ignore[attr-defined]
            if site.resolved is None:
                continue
            callee = graph.functions[site.resolved]  # type: ignore[attr-defined]
            yield from self._check_call_site(ctx, site, callee, blessed)

    def _rngish_targets(self, stmt: ast.Assign) -> List[Tuple[ast.AST, str]]:
        out = []
        for target in stmt.targets:
            if isinstance(target, ast.Name) and self._rngish_name(target.id):
                out.append((target, target.id))
            elif isinstance(target, ast.Attribute) and self._rngish_name(target.attr):
                out.append((target, _pure_chain(target) or target.attr))
        return out

    def _looks_like_stream(self, receiver: ast.AST) -> bool:
        """Only name/attribute receivers are judged (no call results)."""
        return _pure_chain(receiver) is not None

    def _check_call_site(
        self, ctx: FileContext, site: object, callee: object, blessed: Set[str]
    ) -> Iterator[Finding]:
        call: ast.Call = site.node  # type: ignore[attr-defined]
        params: List[str] = callee.params  # type: ignore[attr-defined]
        callee_args = callee.node.args  # type: ignore[attr-defined]
        rngish = {
            arg.arg
            for arg in callee_args.posonlyargs + callee_args.args + callee_args.kwonlyargs
            if self._rngish_param(arg)
        }
        if not rngish:
            return
        # Positional args: offset by one for bound-method calls (self).
        offset = 0
        if params and params[0] in ("self", "cls"):
            dotted = site.callee  # type: ignore[attr-defined]
            if "." in dotted or dotted == callee.qualname.split(".", 1)[0]:  # type: ignore[attr-defined]
                offset = 1
        bindings: List[Tuple[str, ast.AST]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot < len(params):
                bindings.append((params[slot], arg))
        for keyword in call.keywords:
            if keyword.arg is not None:
                bindings.append((keyword.arg, keyword.value))
        for name, value in bindings:
            if name in rngish and not self._blessed(value, blessed):
                yield self.finding(
                    ctx,
                    value,
                    f"argument for {callee.qualname}(..., {name}=...) is not a "  # type: ignore[attr-defined]
                    "seeded stream; pass the caller's named rng (or a spawn "
                    "of it), never ambient state (RDP103)",
                )


# ----------------------------------------------------------------------
# RDP104 -- same-instant callbacks racing on shared attribute chains.
# ----------------------------------------------------------------------
class SameInstantHazardRule(Rule):
    id = "RDP104"
    title = "same-instant callbacks must not race on shared state"
    severity = "error"
    paths = DATA_PLANE_PATHS

    #: Call attributes that enqueue a callable for the *current* instant.
    REGISTRARS = frozenset({"add_callback", "_schedule_callback", "add_flush_hook"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for qualname in sorted(ctx.function_cfgs()):
            cfg = ctx.function_cfgs()[qualname]
            yield from self._check_function(ctx, qualname, cfg.func)

    def _check_function(self, ctx: FileContext, qualname: str, func: ast.AST) -> Iterator[Finding]:
        local_defs: Dict[str, ast.AST] = {}
        for stmt in _own_statements(func):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[stmt.name] = stmt
        registrations: List[Tuple[ast.Call, str, ast.AST]] = []
        for node in _own_nodes(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.REGISTRARS
                and node.args
            ):
                callback = node.args[0]
                if isinstance(callback, ast.Name) and callback.id in local_defs:
                    registrations.append((node, callback.id, local_defs[callback.id]))
                elif isinstance(callback, ast.Lambda):
                    registrations.append((node, "<lambda>", callback))
        registrations.sort(key=lambda reg: (reg[0].lineno, reg[0].col_offset))
        if len(registrations) < 2:
            return
        effects = [
            (call, name, self._chain_effects(body))
            for call, name, body in registrations
        ]
        for later in range(1, len(effects)):
            call_b, name_b, (reads_b, writes_b) = effects[later]
            for earlier in range(later):
                _call_a, name_a, (reads_a, writes_a) = effects[earlier]
                conflict = (writes_a & (reads_b | writes_b)) | (writes_b & reads_a)
                if conflict:
                    chains = ", ".join(sorted(conflict))
                    yield self.finding(
                        ctx,
                        call_b,
                        f"same-instant callbacks {name_a!r} and {name_b!r} in "
                        f"{qualname}() both touch {chains}; now-bucket dispatch "
                        "order is registration order, an accident -- chain the "
                        "events explicitly or mutate in one place (RDP104)",
                    )

    @staticmethod
    def _chain_effects(func: ast.AST) -> Tuple[Set[str], Set[str]]:
        """(reads, writes) of pure attribute chains in a callback body."""
        reads: Set[str] = set()
        writes: Set[str] = set()
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(node, ast.Attribute):
                    chain = _pure_chain(node)
                    if chain is None or "." not in chain:
                        continue
                    if isinstance(node.ctx, (ast.Store, ast.Del)):
                        writes.add(chain)
                    else:
                        reads.add(chain)
        # A chain both written and read inside one callback is internal
        # sequencing, not a cross-callback race input by itself.
        return reads, writes


# ----------------------------------------------------------------------
# RDP105 -- snapshot capture graph holds no ambient handles.
# ----------------------------------------------------------------------
class SnapshotSafetyRule(Rule):
    id = "RDP105"
    title = "snapshot-captured classes hold no ambient handles"
    severity = "error"
    paths = (
        "*/repro/sim/*",
        "*/repro/core/*",
        "*/repro/hdfs/*",
        "*/repro/storage/*",
    )

    #: (class name, attribute) pairs reviewed as intentional custody.
    EXCLUSIONS: FrozenSet[Tuple[str, str]] = frozenset()

    #: Value shapes that denote ambient, process-local handles.
    AMBIENT_CALLS = frozenset({"open", "active_tracer", "active_profiler", "active_sampler"})
    AMBIENT_CHAINS = frozenset({"sys.stdout", "sys.stderr", "sys.stdin"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        base_names = {
            dotted.rsplit(".", 1)[-1]
            for base in cls.bases
            if (dotted := _dotted(base)) is not None
        }
        inline_state = "InlineState" in base_names and cls.name != "InlineState"
        has_snapshot_hook = any(
            isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            and member.name in ("snapshot", "from_snapshot")
            for member in cls.body
        )
        defines_getstate = any(
            isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            and member.name == "__getstate__"
            for member in cls.body
        )
        if inline_state:
            for member in cls.body:
                if (
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and member.name == "__setstate__"
                ):
                    yield self.finding(
                        ctx,
                        member,
                        f"{cls.name} subclasses InlineState but overrides "
                        "__setstate__, silently defeating the inline-storage "
                        "restore path every snapshot relies on",
                    )
        if not inline_state and not has_snapshot_hook:
            return
        slots = self._declared_slots(cls)
        init = next(
            (
                member
                for member in cls.body
                if isinstance(member, ast.FunctionDef) and member.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if slots is not None and attr not in slots:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{cls.name}.__init__ assigns self.{attr} which is not "
                        f"in the declared __slots__; snapshot restore walks the "
                        "declared layout, so undeclared attributes silently "
                        "vanish (or fail) across capture/restore",
                    )
                if defines_getstate or (cls.name, attr) in self.EXCLUSIONS:
                    continue
                if self._ambient_value(stmt.value):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{cls.name}.__init__ binds self.{attr} to an ambient "
                        "handle (file/tracer/std stream); snapshot capture "
                        "would pickle process-local state -- keep handles out "
                        "of the capture graph or declare custody via "
                        "__getstate__",
                    )

    @staticmethod
    def _declared_slots(cls: ast.ClassDef) -> Optional[Set[str]]:
        for member in cls.body:
            if (
                isinstance(member, ast.Assign)
                and len(member.targets) == 1
                and isinstance(member.targets[0], ast.Name)
                and member.targets[0].id == "__slots__"
            ):
                value = member.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    names = {
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    }
                    return names if names else None  # () means "no opinion"
        return None

    def _ambient_value(self, value: ast.AST) -> bool:
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None and dotted.rsplit(".", 1)[-1] in self.AMBIENT_CALLS:
                    return True
            chain = _pure_chain(node)
            if chain in self.AMBIENT_CHAINS:
                return True
        return False


# Shared helper: a function's own statements, nested defs left opaque
# (their bodies are visited via their own FunctionInfo/CFG entries).
def _own_statements(func: ast.AST) -> List[ast.stmt]:
    out: List[ast.stmt] = []
    stack: List[ast.stmt] = list(getattr(func, "body", []))
    while stack:
        stmt = stack.pop(0)
        out.append(stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(handler.body)
    return out


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every AST node in the function's own body, each exactly once,
    nested function/lambda bodies left opaque."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def FLOW_RULES() -> List[Rule]:
    """The flow-sensitive rule set, in id order."""
    return [
        ResourceLeakRule(),
        StaleYieldStateRule(),
        RngDisciplineRule(),
        SameInstantHazardRule(),
        SnapshotSafetyRule(),
    ]
