"""Entry point: ``python -m repro.lint src/``."""

import sys

from .cli import main

sys.exit(main())
