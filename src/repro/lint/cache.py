"""Incremental lint cache: skip re-analysis of unchanged files.

The CFG/dataflow rules made linting meaningfully heavier than the flat
AST walks, and ``make lint`` runs on every verify.  The cache keys each
file's findings on

* the file's **content hash** (not mtime -- checkouts and branch
  switches churn mtimes),
* the **ruleset version** -- a digest over the linter's own sources plus
  the trace taxonomy, so editing any rule, the engine, or the CFG
  machinery invalidates everything, and
* the **run configuration** (select/ignore/allowlists), so a
  ``--select RDP101`` run never serves findings to a full run.

Entries are one JSON file per source path under ``.lint-cache/``; a
corrupt or stale entry is treated as a miss, never an error.  The cache
stores findings *before* baseline filtering, so baselines can change
without invalidating it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional

from .engine import Finding

__all__ = ["CACHE_SCHEMA_VERSION", "DEFAULT_CACHE_DIR", "LintCache", "ruleset_version"]

CACHE_SCHEMA_VERSION = 1
DEFAULT_CACHE_DIR = ".lint-cache"

_FINDING_FIELDS = ("path", "line", "col", "rule", "severity", "message")


def ruleset_version() -> str:
    """A digest of the linter's own implementation.

    Any edit to the lint package (rules, engine, CFG, dataflow, this
    module) or to the trace taxonomy the RDP004 rule reads changes the
    version and invalidates every cache entry.
    """
    package_dir = Path(__file__).resolve().parent
    parts: List[str] = []
    for source in sorted(package_dir.glob("*.py")):
        digest = hashlib.sha256(source.read_bytes()).hexdigest()
        parts.append(f"{source.name}:{digest}")
    taxonomy = package_dir.parent / "obs" / "taxonomy.py"
    if taxonomy.exists():
        parts.append(f"taxonomy:{hashlib.sha256(taxonomy.read_bytes()).hexdigest()}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]


class LintCache:
    """Per-file findings cache under ``directory``.

    ``config_key`` is an opaque string describing the run configuration;
    the engine passes a canonical rendering of select/ignore/allowlists.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR, config_key: str = "") -> None:
        self.directory = Path(directory)
        self._version = ruleset_version()
        self._config_key = config_key
        self.hits = 0
        self.misses = 0

    # -- keys ------------------------------------------------------------
    def _entry_path(self, path: str) -> Path:
        name = hashlib.sha256(path.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"{name}.json"

    def _key(self, source: str) -> str:
        content = hashlib.sha256(source.encode("utf-8")).hexdigest()
        return f"{content}|{self._version}|{self._config_key}"

    # -- lookups ---------------------------------------------------------
    def get(self, path: str, source: str) -> Optional[List[Finding]]:
        entry = self._entry_path(path)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("key") != self._key(source)
        ):
            self.misses += 1
            return None
        try:
            findings = [
                Finding(**{field: item[field] for field in _FINDING_FIELDS})
                for item in payload["findings"]
            ]
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, path: str, source: str, findings: List[Finding]) -> None:
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "path": path,
            "key": self._key(source),
            "findings": [finding.as_dict() for finding in findings],
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            entry = self._entry_path(path)
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(entry)
        except OSError:  # pragma: no cover - cache is best-effort
            pass
