"""Per-function control-flow graphs for the flow-sensitive lint rules.

The flat AST rules (RDP001..RDP006) ask "does this syntax appear?";
the RDP1xx rules ask "is there a *path* on which this happens?" -- a
grant acquired and never released on an exception path, a value read
before a yield and written back after.  Answering path questions needs
a CFG, and this module builds one per function:

* one :class:`CFGNode` per simple statement, plus synthetic nodes for
  entry/exit, the *exceptional* exit, loop heads, except dispatch, and
  ``finally`` entries;
* edges labelled by kind: ``next`` (fall-through), ``true``/``false``
  (branch outcomes), ``back`` (loop back-edge), and ``exc`` --
  statements that can raise get an edge to the innermost handler /
  ``finally`` / the exceptional exit, carrying the state *before* the
  statement (the statement aborted);
* ``finally`` bodies are built once and routed conservatively: every
  control kind that entered (normal completion, exception, return,
  break, continue) leaves from the finally's end toward its own
  continuation, so a release inside ``finally`` dominates every exit
  the way CPython guarantees it does;
* yield points (``yield`` / ``yield from`` in the function's own body,
  not nested defs or lambdas) are marked on their node -- they are
  where a simulation process is suspended and the world may change.

Determinism: node indices follow source order, successor lists follow
construction order, and :meth:`CFG.pretty` renders the whole graph as
stable text -- the golden-file CFG tests diff that rendering directly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["CFGNode", "CFG", "build_cfg", "function_cfgs", "qualified_functions"]

#: Edge kinds.  ``exc`` edges carry the state *before* the source node
#: (its statement aborted mid-flight); every other kind carries the
#: state after it.
EDGE_KINDS = ("next", "true", "false", "back", "exc", "case")

# Control kinds routed through ``finally`` frames.
_NEXT = "next"
_EXC = "exc"
_RET = "return"
_BRK = "break"
_CONT = "continue"

#: Exception names a bare-enough handler catches everything with.
_CATCH_ALL = frozenset({"Exception", "BaseException"})


class CFGNode:
    """One CFG vertex: a simple statement or a synthetic control point."""

    __slots__ = ("index", "stmt", "label", "succs", "preds", "is_yield", "can_raise", "in_cleanup")

    def __init__(self, index: int, stmt: Optional[ast.AST], label: str) -> None:
        self.index = index
        self.stmt = stmt
        self.label = label
        self.succs: List[Tuple[int, str]] = []
        self.preds: List[Tuple[int, str]] = []
        self.is_yield = False
        self.can_raise = False
        #: True for nodes built from a ``finally`` body (cleanup code).
        self.in_cleanup = False

    def describe(self) -> str:
        if self.stmt is None:
            return self.label
        lineno = getattr(self.stmt, "lineno", 0)
        return f"{self.label} L{lineno} {type(self.stmt).__name__}"


class CFG:
    """The control-flow graph of one function body."""

    ENTRY = 0
    EXIT = 1
    RAISE_EXIT = 2

    def __init__(self, func: ast.AST, name: str) -> None:
        self.func = func
        self.name = name
        self.nodes: List[CFGNode] = []
        self.is_generator = False

    @property
    def entry(self) -> CFGNode:
        return self.nodes[self.ENTRY]

    @property
    def exit(self) -> CFGNode:
        return self.nodes[self.EXIT]

    @property
    def raise_exit(self) -> CFGNode:
        return self.nodes[self.RAISE_EXIT]

    def statement_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def reverse_postorder(self) -> List[int]:
        """Node indices in reverse postorder from the entry (stable)."""
        seen = [False] * len(self.nodes)
        order: List[int] = []
        stack: List[Tuple[int, int]] = [(self.ENTRY, 0)]
        seen[self.ENTRY] = True
        while stack:
            index, child = stack[-1]
            succs = self.nodes[index].succs
            if child < len(succs):
                stack[-1] = (index, child + 1)
                target = succs[child][0]
                if not seen[target]:
                    seen[target] = True
                    stack.append((target, 0))
            else:
                order.append(index)
                stack.pop()
        order.reverse()
        return order

    def pretty(self) -> str:
        """A stable text rendering, diffed by the golden-file tests."""
        lines = [f"cfg {self.name}{' (generator)' if self.is_generator else ''}"]
        for node in self.nodes:
            flags = ""
            if node.is_yield:
                flags += " yield"
            if node.in_cleanup:
                flags += " cleanup"
            succs = ", ".join(
                f"{target}" if kind == "next" else f"{target}[{kind}]"
                for target, kind in node.succs
            )
            lines.append(f"  {node.index}: {node.describe()}{flags} -> {succs or '-'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Statement classification helpers.
# ----------------------------------------------------------------------
def _scan_expr(node: Optional[ast.AST]) -> Tuple[bool, bool]:
    """(can_raise, has_yield) for an expression/statement subtree.

    Nested function bodies and lambdas are opaque: code inside them does
    not run at this statement, so their calls and yields do not count.
    """
    if node is None:
        return (False, False)
    can_raise = False
    has_yield = False
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(current, (ast.Yield, ast.YieldFrom, ast.Await)):
            has_yield = True
            can_raise = True
        elif isinstance(current, (ast.Call, ast.Raise, ast.Assert)):
            can_raise = True
        stack.extend(ast.iter_child_nodes(current))
    return (can_raise, has_yield)


def _header_expr(stmt: ast.stmt) -> Optional[ast.AST]:
    """The part of a compound statement evaluated *at* its node."""
    if isinstance(stmt, (ast.If, ast.While)):
        return stmt.test
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return stmt.iter
    return None


# ----------------------------------------------------------------------
# Frames: the control context a statement executes under.
# ----------------------------------------------------------------------
class _LoopFrame:
    __slots__ = ("brk", "cont")

    def __init__(self, brk: int, cont: int) -> None:
        self.brk = brk
        self.cont = cont


class _ExceptFrame:
    __slots__ = ("dispatch",)

    def __init__(self, dispatch: int) -> None:
        self.dispatch = dispatch


class _FinallyFrame:
    __slots__ = ("entry", "pending")

    def __init__(self, entry: int) -> None:
        self.entry = entry
        self.pending: List[str] = []  # control kinds routed in, in order

    def note(self, kind: str) -> None:
        if kind not in self.pending:
            self.pending.append(kind)


Frames = Tuple[object, ...]  # innermost first
Frontier = List[Tuple[int, str]]  # (node index, edge kind into the successor)


class _Builder:
    def __init__(self, func: ast.AST, name: str) -> None:
        self.cfg = CFG(func, name)
        self._node(None, "entry")
        self._node(None, "exit")
        self._node(None, "raise")
        self._in_cleanup = False

    # -- graph primitives ----------------------------------------------
    def _node(self, stmt: Optional[ast.AST], label: str) -> int:
        node = CFGNode(len(self.cfg.nodes), stmt, label)
        node.in_cleanup = getattr(self, "_in_cleanup", False)
        self.cfg.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int, kind: str) -> None:
        if (dst, kind) not in self.cfg.nodes[src].succs:
            self.cfg.nodes[src].succs.append((dst, kind))
            self.cfg.nodes[dst].preds.append((src, kind))

    def _connect(self, frontier: Frontier, dst: int) -> None:
        for src, kind in frontier:
            self._edge(src, dst, kind)

    # -- control routing through finally frames ------------------------
    def _resolve(self, kind: str, frames: Frames) -> Optional[int]:
        """Where control of ``kind`` goes from inside ``frames``.

        Walks frames innermost-first; a ``finally`` frame intercepts
        every kind (noting it for onward routing when the finally body
        completes); an except frame intercepts only exceptions; a loop
        frame intercepts break/continue.
        """
        for frame in frames:
            if isinstance(frame, _FinallyFrame):
                frame.note(kind)
                return frame.entry
            if isinstance(frame, _ExceptFrame) and kind == _EXC:
                return frame.dispatch
            if isinstance(frame, _LoopFrame) and kind in (_BRK, _CONT):
                return frame.brk if kind == _BRK else frame.cont
        if kind == _EXC:
            return CFG.RAISE_EXIT
        if kind == _RET:
            return CFG.EXIT
        return None  # unreachable: break/continue outside a loop

    def _route(self, kind: str, frontier: Frontier, frames: Frames) -> None:
        target = self._resolve(kind, frames)
        if target is not None:
            self._connect(frontier, target)

    # -- statement lists ------------------------------------------------
    def build(self) -> CFG:
        body = self.cfg.func.body  # type: ignore[attr-defined]
        frontier = self._body(body, [(CFG.ENTRY, _NEXT)], ())
        self._connect(frontier, CFG.EXIT)
        self.cfg.is_generator = any(n.is_yield for n in self.cfg.nodes)
        return self.cfg

    def _body(self, stmts: Sequence[ast.stmt], frontier: Frontier, frames: Frames) -> Frontier:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code: stop here, keep the graph small
            frontier = self._statement(stmt, frontier, frames)
        return frontier

    def _statement(self, stmt: ast.stmt, frontier: Frontier, frames: Frames) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, frames)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier, frames)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier, frames)
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, frontier, frames, label="return")
            self._route(_RET, [(node, _NEXT)], frames)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._simple(stmt, frontier, frames, label="raise", exc=False)
            self.cfg.nodes[node].can_raise = True
            self._route(_EXC, [(node, _EXC)], frames)
            return []
        if isinstance(stmt, ast.Break):
            node = self._simple(stmt, frontier, frames, label="break")
            self._route(_BRK, [(node, _NEXT)], frames)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._simple(stmt, frontier, frames, label="continue")
            self._route(_CONT, [(node, _NEXT)], frames)
            return []
        node = self._simple(stmt, frontier, frames)
        return [(node, _NEXT)]

    def _simple(
        self,
        stmt: ast.stmt,
        frontier: Frontier,
        frames: Frames,
        label: str = "stmt",
        exc: bool = True,
    ) -> int:
        node = self._node(stmt, label)
        self._connect(frontier, node)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return node  # a def/class statement neither raises nor yields here
        can_raise, has_yield = _scan_expr(stmt)
        self.cfg.nodes[node].is_yield = has_yield
        if can_raise and exc:
            self.cfg.nodes[node].can_raise = True
            self._route(_EXC, [(node, _EXC)], frames)
        return node

    # -- compound statements --------------------------------------------
    def _if(self, stmt: ast.If, frontier: Frontier, frames: Frames) -> Frontier:
        node = self._node(stmt, "if")
        self._connect(frontier, node)
        can_raise, has_yield = _scan_expr(stmt.test)
        self.cfg.nodes[node].is_yield = has_yield
        if can_raise:
            self.cfg.nodes[node].can_raise = True
            self._route(_EXC, [(node, _EXC)], frames)
        then_front = self._body(stmt.body, [(node, "true")], frames)
        if stmt.orelse:
            else_front = self._body(stmt.orelse, [(node, "false")], frames)
        else:
            else_front = [(node, "false")]
        return then_front + else_front

    def _loop(self, stmt: ast.stmt, frontier: Frontier, frames: Frames) -> Frontier:
        assert isinstance(stmt, (ast.While, ast.For, ast.AsyncFor))
        head = self._node(stmt, "loop")
        self._connect(frontier, head)
        header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        can_raise, has_yield = _scan_expr(header)
        self.cfg.nodes[head].is_yield = has_yield
        if can_raise:
            self.cfg.nodes[head].can_raise = True
            self._route(_EXC, [(head, _EXC)], frames)
        after = self._node(None, "join")
        loop_frames: Frames = (_LoopFrame(brk=after, cont=head),) + frames
        body_front = self._body(stmt.body, [(head, "true")], loop_frames)
        for src, _kind in body_front:
            self._edge(src, head, "back")
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            # Normal loop exit (condition false / iterator exhausted)
            # runs the else block, then falls through to the join.
            else_front = self._body(stmt.orelse, [(head, "false")], frames)
            self._connect(else_front, after)
        if not self.cfg.nodes[after].preds:
            # Nothing ever reaches the join (`while True` with no break):
            # drop it from play by returning an empty frontier.
            return []
        return [(after, _NEXT)]

    def _with(self, stmt: ast.stmt, frontier: Frontier, frames: Frames) -> Frontier:
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        node = self._node(stmt, "with")
        self._connect(frontier, node)
        self.cfg.nodes[node].can_raise = True  # __enter__ can raise
        self._route(_EXC, [(node, _EXC)], frames)
        return self._body(stmt.body, [(node, _NEXT)], frames)

    def _try(self, stmt: ast.Try, frontier: Frontier, frames: Frames) -> Frontier:
        fin_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            fin_frame = _FinallyFrame(self._node(None, "finally"))
        inner: Frames = ((fin_frame,) + frames) if fin_frame else frames

        if stmt.handlers:
            dispatch = self._node(None, "dispatch")
            body_front = self._body(stmt.body, frontier, (_ExceptFrame(dispatch),) + inner)
            handler_fronts: Frontier = []
            catch_all = False
            for handler in stmt.handlers:
                h_node = self._node(handler, "except")
                self._edge(dispatch, h_node, _NEXT)
                handler_fronts += self._body(handler.body, [(h_node, _NEXT)], inner)
                catch_all = catch_all or self._catches_everything(handler)
            if not catch_all:
                # The exception may match no handler and keep propagating.
                self._route(_EXC, [(dispatch, _EXC)], inner)
        else:
            body_front = self._body(stmt.body, frontier, inner)
            handler_fronts = []

        else_front = self._body(stmt.orelse, body_front, inner) if stmt.orelse else body_front
        ends = else_front + handler_fronts

        if fin_frame is None:
            return ends

        # Route normal completion into the finally, build its body once,
        # then fan its end out toward every continuation that entered.
        if ends:
            self._connect(ends, fin_frame.entry)
            fin_frame.note(_NEXT)
        was_cleanup = self._in_cleanup
        self._in_cleanup = True
        fin_end = self._body(stmt.finalbody, [(fin_frame.entry, _NEXT)], frames)
        self._in_cleanup = was_cleanup
        out: Frontier = []
        for kind in fin_frame.pending:
            if kind == _NEXT:
                out += fin_end
            else:
                # The finally completed, *then* the suspended control kind
                # resumes: a normal edge toward the outer continuation.
                self._route(kind, fin_end, frames)
        return out

    @staticmethod
    def _catches_everything(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = []
        if isinstance(handler.type, ast.Tuple):
            names = [getattr(e, "id", getattr(e, "attr", "")) for e in handler.type.elts]
        else:
            names = [getattr(handler.type, "id", getattr(handler.type, "attr", ""))]
        return any(name in _CATCH_ALL for name in names)


def build_cfg(func: ast.AST, name: str = "") -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg wants a function definition, got {type(func).__name__}")
    return _Builder(func, name or func.name).build()


def qualified_functions(tree: ast.AST) -> List[Tuple[str, ast.AST]]:
    """Every function in a module, with dotted qualnames, in source order.

    Nested functions are included (``outer.<locals>.inner`` style is
    flattened to ``outer.inner`` -- the lint rules only need a stable,
    human-readable handle).
    """
    out: List[Tuple[str, ast.AST]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                out.append((qualname, child))
                visit(child, f"{qualname}.")

    visit(tree, "")
    return out


def function_cfgs(tree: ast.AST) -> Dict[str, CFG]:
    """CFGs for every function in a module, keyed by qualname."""
    cfgs: Dict[str, CFG] = {}
    for qualname, func in qualified_functions(tree):
        cfgs[qualname] = build_cfg(func, qualname)
    return cfgs
