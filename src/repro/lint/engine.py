"""The ``repro.lint`` rule engine: findings, suppressions, file walking.

The engine is deliberately small: a :class:`Rule` parses nothing itself
-- it receives a :class:`FileContext` with the source, the parsed AST,
and path metadata, and yields :class:`Finding` objects.  The engine owns
everything rule-independent:

* path scoping (per-rule ``paths`` globs plus per-rule allowlists),
* ``# raidp: noqa[RULE]`` suppressions, which *must* carry a
  justification (``# raidp: noqa[RDP001] -- why this is safe``) --
  a bare suppression is itself reported as ``RDP000`` and does **not**
  suppress,
* stable ordering of findings (path, line, column, rule id),
* the severity split (``error`` fails the run; ``warning`` only under
  ``--strict``).

Determinism note: the linter is itself held to the invariants it
enforces -- no wall clock, no hash-order iteration -- so its output is
byte-identical across runs and machines.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintConfig",
    "LintEngine",
    "Suppressions",
    "SUPPRESSION_RULE_ID",
    "STALE_SUPPRESSION_RULE_ID",
]

#: Findings about malformed suppression comments carry this rule id.
SUPPRESSION_RULE_ID = "RDP000"

#: A justified suppression whose rule no longer fires on that line is
#: itself a finding under this id -- the allowlist must stay honest.
STALE_SUPPRESSION_RULE_ID = "RDP007"

#: Matches ``raidp: noqa[RDP001]`` (optionally ``... -- reason``) inside
#: a comment token; rule lists may be comma-separated.
_NOQA_RE = re.compile(
    r"#\s*raidp:\s*noqa\[(?P<rules>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str  # "error" | "warning"
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class Suppressions:
    """Per-file map of line -> suppressed rule ids, parsed from comments.

    A suppression must name its rules and justify itself; justification
    is what makes the next reader trust the exemption.  Malformed
    suppressions (no ``--`` reason) are recorded in
    :attr:`malformed` and deliberately do *not* suppress anything.

    Parsing tokenizes the source and only inspects COMMENT tokens, so a
    docstring *describing* the noqa syntax is not itself a suppression.
    """

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, frozenset] = {}
        self.malformed: List[Tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            comments = []
        for lineno, text in comments:
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            names = frozenset(
                rule.strip() for rule in match.group("rules").split(",") if rule.strip()
            )
            reason = match.group("reason")
            if not reason:
                self.malformed.append((lineno, ", ".join(sorted(names))))
                continue
            self._by_line[lineno] = names

    def suppresses(self, lineno: int, rule: str) -> bool:
        rules = self._by_line.get(lineno)
        return rules is not None and rule in rules

    def items(self) -> List[Tuple[int, frozenset]]:
        """(line, suppressed rule ids) pairs, in line order."""
        return sorted(self._by_line.items())

    def __len__(self) -> int:
        return len(self._by_line)


@dataclass
class FileContext:
    """Everything a rule needs about one file: parsed once, shared.

    The flow-sensitive rules all need per-function CFGs and the module
    call graph; they are built on first use and shared across rules so
    five RDP1xx rules cost one CFG construction, not five.
    """

    path: str  # forward-slash path as given/walked, used for scoping
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    _cfgs: Optional[dict] = field(default=None, repr=False, compare=False)
    _callgraph: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def function_cfgs(self) -> dict:
        """qualname -> CFG for every function in the file (cached)."""
        if self._cfgs is None:
            from .cfg import function_cfgs

            self._cfgs = function_cfgs(self.tree)
        return self._cfgs

    def callgraph(self) -> "object":
        """The module call graph (cached)."""
        if self._callgraph is None:
            from .callgraph import ModuleCallGraph

            self._callgraph = ModuleCallGraph.build(self.tree)
        return self._callgraph


class Rule:
    """Base class: subclasses set the class attributes and ``check``.

    ``paths`` scopes the rule to files matching any of the glob patterns
    (empty = every file).  Patterns match against the forward-slash file
    path, anchored nowhere (``fnmatch`` against the full string), so
    ``*/sim/*.py`` works for both absolute and relative invocations.
    """

    id: str = "RDP999"
    title: str = "unnamed rule"
    severity: str = "error"
    paths: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.paths:
            return True
        return any(fnmatch.fnmatch(path, pattern) for pattern in self.paths)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


@dataclass
class LintConfig:
    """Run-wide configuration: rule selection and per-rule allowlists."""

    #: Restrict to these rule ids (None = all registered rules).
    select: Optional[frozenset] = None
    #: Drop these rule ids.
    ignore: frozenset = frozenset()
    #: rule id -> glob patterns of files the rule skips entirely.  Unlike
    #: a ``noqa``, an allowlist entry exempts a whole file -- reserved
    #: for files whose *purpose* conflicts with the rule (the wall-clock
    #: perf harness vs RDP001).
    allowlists: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return self.select is None or rule_id in self.select

    def allowlisted(self, rule_id: str, path: str) -> bool:
        return any(
            fnmatch.fnmatch(path, pattern)
            for pattern in self.allowlists.get(rule_id, ())
        )

    def cache_key(self) -> str:
        """Canonical rendering for the incremental cache key."""
        select = ",".join(sorted(self.select)) if self.select is not None else "*"
        ignore = ",".join(sorted(self.ignore))
        allow = ";".join(
            f"{rule_id}={'|'.join(patterns)}"
            for rule_id, patterns in sorted(self.allowlists.items())
        )
        return f"select={select} ignore={ignore} allow={allow}"


class LintEngine:
    """Runs a rule set over sources, files, or directory trees."""

    def __init__(
        self,
        rules: Sequence[Rule],
        config: Optional[LintConfig] = None,
        cache: Optional[object] = None,
    ) -> None:
        self.config = config or LintConfig()
        self.rules: List[Rule] = [
            rule for rule in rules if self.config.rule_enabled(rule.id)
        ]
        self.files_checked = 0
        #: Optional :class:`repro.lint.cache.LintCache`; findings for a
        #: file whose (content, ruleset, config) key matches are reused
        #: without re-parsing.
        self.cache = cache

    # -- single source ---------------------------------------------------
    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint one source string; ``path`` drives rule scoping."""
        path = path.replace("\\", "/")
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="E999",
                    severity="error",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = FileContext(path=path, source=source, tree=tree)
        suppressions = Suppressions(source)
        findings: List[Finding] = []
        for lineno, rules in suppressions.malformed:
            findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=1,
                    rule=SUPPRESSION_RULE_ID,
                    severity="error",
                    message=(
                        f"suppression of [{rules}] lacks a justification; "
                        "write '# raidp: noqa[RULE] -- why this is safe' "
                        "(unjustified suppressions do not suppress)"
                    ),
                )
            )
        suppressed_hits = set()
        active_rule_ids = set()
        for rule in self.rules:
            if not rule.applies_to(path):
                continue
            if self.config.allowlisted(rule.id, path):
                continue
            active_rule_ids.add(rule.id)
            for finding in rule.check(ctx):
                if suppressions.suppresses(finding.line, finding.rule):
                    suppressed_hits.add((finding.line, finding.rule))
                    continue
                findings.append(finding)
        findings.extend(
            self._stale_suppressions(
                path, suppressions, suppressed_hits, active_rule_ids
            )
        )
        findings.sort(key=lambda f: f.sort_key)
        return findings

    def _stale_suppressions(
        self,
        path: str,
        suppressions: Suppressions,
        suppressed_hits: set,
        active_rule_ids: set,
    ) -> List[Finding]:
        """RDP007: justified suppressions whose rule no longer fires.

        Only rules that actually ran on this file count -- a suppression
        for a rule excluded by ``--select``/``--ignore`` or an allowlist
        is not stale, it just was not exercised this run.
        """
        if not self.config.rule_enabled(STALE_SUPPRESSION_RULE_ID):
            return []
        stale: List[Finding] = []
        for lineno, rules in suppressions.items():
            for rule_id in sorted(rules):
                if rule_id == STALE_SUPPRESSION_RULE_ID:
                    continue
                if rule_id not in active_rule_ids:
                    continue
                if (lineno, rule_id) in suppressed_hits:
                    continue
                if suppressions.suppresses(lineno, STALE_SUPPRESSION_RULE_ID):
                    continue
                stale.append(
                    Finding(
                        path=path,
                        line=lineno,
                        col=1,
                        rule=STALE_SUPPRESSION_RULE_ID,
                        severity="error",
                        message=(
                            f"stale suppression: {rule_id} no longer fires on "
                            "this line; delete the noqa (stale entries hide "
                            "future regressions behind a reviewed-looking comment)"
                        ),
                    )
                )
        return stale

    # -- files and trees -------------------------------------------------
    def lint_file(self, path: str) -> List[Finding]:
        source = Path(path).read_text(encoding="utf-8")
        self.files_checked += 1
        if self.cache is not None:
            cached = self.cache.get(str(path), source)
            if cached is not None:
                return cached
        findings = self.lint_source(source, path=str(path))
        if self.cache is not None:
            self.cache.put(str(path), source, findings)
        return findings

    def lint_paths(self, paths: Iterable[str]) -> List[Finding]:
        """Lint files and/or directory trees; order-stable output."""
        findings: List[Finding] = []
        for path in self._walk(paths):
            findings.extend(self.lint_file(path))
        findings.sort(key=lambda f: f.sort_key)
        return findings

    @staticmethod
    def _walk(paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                files.extend(
                    str(child)
                    for child in sorted(path.rglob("*.py"))
                    if "__pycache__" not in child.parts
                )
            else:
                files.append(str(path))
        return files
