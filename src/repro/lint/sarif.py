"""SARIF 2.1.0 rendering for lint findings.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it makes ``repro.lint`` findings first-class
annotations on pull requests.  The shape below follows the OASIS 2.1.0
schema: one ``run``, a ``tool.driver`` carrying the full rule metadata,
and one ``result`` per finding with a physical location and a stable
``partialFingerprints`` entry (the same fingerprint the baseline file
uses, so code-scanning dedup and our baseline agree on identity).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .baseline import fingerprint_findings
from .engine import Finding, Rule

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Engine-level diagnostics have no Rule instance; their metadata lives
#: here so the SARIF rule table is complete.
_ENGINE_RULES: Dict[str, str] = {
    "RDP000": "suppressions must carry a justification",
    "RDP007": "justified suppressions must still be live",
    "E999": "source must parse",
}

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule_id: str, title: str, severity: str) -> Dict[str, object]:
    return {
        "id": rule_id,
        "name": rule_id,
        "shortDescription": {"text": title},
        "defaultConfiguration": {"level": _LEVELS.get(severity, "warning")},
    }


def render_sarif(
    findings: List[Finding],
    rules: Sequence[Rule],
    tool_version: Optional[str] = None,
) -> str:
    """The findings as a SARIF 2.1.0 document (a JSON string)."""
    descriptors = [
        _rule_descriptor(rule.id, rule.title, rule.severity) for rule in rules
    ]
    listed = {rule.id for rule in rules}
    for rule_id, title in sorted(_ENGINE_RULES.items()):
        if rule_id not in listed:
            descriptors.append(_rule_descriptor(rule_id, title, "error"))
    descriptors.sort(key=lambda d: str(d["id"]))
    index = {d["id"]: i for i, d in enumerate(descriptors)}

    results = []
    for finding, fingerprint in fingerprint_findings(findings):
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproLintFingerprint/v1": fingerprint},
        }
        if finding.rule in index:
            result["ruleIndex"] = index[finding.rule]
        results.append(result)

    driver: Dict[str, object] = {
        "name": "repro.lint",
        "informationUri": "https://github.com/raidp-repro/raidp-repro",
        "rules": descriptors,
    }
    if tool_version is not None:
        driver["version"] = tool_version
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
