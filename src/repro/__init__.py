"""RAIDP: ReplicAtion with Intra-Disk Parity -- a full reproduction.

Reproduces Rosenfeld et al., "RAIDP: ReplicAtion with Intra-Disk Parity"
(EuroSys 2020) as a pure-Python system: a deterministic cluster simulator
(disks, NICs, servers), an HDFS-like distributed filesystem, the RAIDP
core (superchunk layout, Lstors, crash-consistency journal, recovery),
erasure-coding and matching substrates, the paper's workloads, and one
regenerator per published table and figure.

Quick tour::

    from repro import RaidpCluster, units

    dfs = RaidpCluster()                       # 16 simulated nodes
    dfs.sim.run_process(dfs.client(0).write_file("/x", units.GiB))
    dfs.verify_parity()                        # Lstor invariant holds

See README.md for the architecture overview and
``python -m repro.experiments`` for the paper's evaluation.
"""

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.layout import Layout, LayoutSpec, rotational_layout
from repro.core.monitor import ClusterMonitor, MonitorConfig
from repro.core.node import RaidpConfig
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.faults import Fault, FaultInjector, FaultSchedule, chaos_schedule
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec

__version__ = "1.0.0"

__all__ = [
    "ClusterMonitor",
    "ClusterSpec",
    "DfsConfig",
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "HdfsCluster",
    "Layout",
    "LayoutSpec",
    "MonitorConfig",
    "RaidpCluster",
    "RaidpConfig",
    "RecoveryManager",
    "RecoveryOptions",
    "chaos_schedule",
    "rotational_layout",
    "units",
]
