"""Operator-facing command-line tools.

- :mod:`repro.tools.raidpctl` -- the ``raidpctl`` binary: inspect
  layouts, run quick benchmarks, stage failure drills, and evaluate the
  TCO trade for a given fleet, all from the shell.
"""
