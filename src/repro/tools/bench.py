"""Perf-tracking bench harness: ``python -m repro.tools.bench``.

Times every registered experiment at smoke scale (one placement seed),
measures the substrate kernels (event-loop dispatch rate, payload XOR
throughput), and optionally compares end-to-end suite wall-clock across
worker-process counts.  Everything lands in ``BENCH_sim.json`` so future
PRs have a measurable baseline: regressions in either the hot kernels or
any single experiment show up as a diff against the committed report.

Usage::

    python -m repro.tools.bench                     # all experiments, jobs from RAIDP_JOBS
    python -m repro.tools.bench fig8 table2 -j 4    # a subset, 4 workers
    python -m repro.tools.bench --compare-jobs 1,4  # suite speedup measurement
    python -m repro.tools.bench --kernels-only      # skip the experiments
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import units
from repro.experiments.parallel import resolve_jobs, run_many
from repro.experiments.runner import REGISTRY, list_experiments
from repro.sim.engine import Simulator
from repro.storage.payload import BytesPayload

#: Smoke-scale seed set: one placement seed instead of the default three.
SMOKE_SEEDS = (1,)

DEFAULT_OUTPUT = "BENCH_sim.json"


# ----------------------------------------------------------------------
# Kernel microbenchmarks.
# ----------------------------------------------------------------------
def bench_payload_xor(size: int = units.MiB, repeats: int = 64) -> Dict[str, float]:
    """Throughput of the allocating vs. in-place payload XOR paths (GB/s)."""
    rng = np.random.default_rng(7)
    a = BytesPayload.adopt(rng.integers(0, 256, size=size, dtype=np.uint8))
    b = BytesPayload.adopt(rng.integers(0, 256, size=size, dtype=np.uint8))

    start = time.perf_counter()
    acc = a
    for _ in range(repeats):
        acc = acc.xor(b)
    xor_elapsed = time.perf_counter() - start

    buf = a.mutable_copy()
    start = time.perf_counter()
    for _ in range(repeats):
        b.xor_into(buf)
    xor_into_elapsed = time.perf_counter() - start

    total = size * repeats / units.GB
    return {
        "payload_xor_gbps": total / xor_elapsed if xor_elapsed else float("inf"),
        "payload_xor_into_gbps": (
            total / xor_into_elapsed if xor_into_elapsed else float("inf")
        ),
    }


def bench_event_loop(num_events: int = 100_000) -> Dict[str, float]:
    """Dispatch rate of the simulation event loop (events/second)."""
    sim = Simulator()

    def ticker():
        for _ in range(num_events):
            yield sim.timeout(0.001)

    sim.process(ticker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "event_loop_events_per_sec": (
            num_events / elapsed if elapsed else float("inf")
        ),
    }


def bench_kernels() -> Dict[str, float]:
    kernels: Dict[str, float] = {}
    kernels.update(bench_payload_xor())
    kernels.update(bench_event_loop())
    return kernels


# ----------------------------------------------------------------------
# Experiment timings.
# ----------------------------------------------------------------------
def time_experiments(
    names: Sequence[str], jobs: int
) -> Dict[str, Dict[str, float]]:
    """Wall-clock per experiment at smoke scale (one seed)."""
    timings: Dict[str, Dict[str, float]] = {}
    for name in names:
        start = time.perf_counter()
        (result,) = run_many([name], jobs=jobs, seeds=SMOKE_SEEDS)
        elapsed = time.perf_counter() - start
        timings[name] = {
            "seconds": round(elapsed, 3),
            "rows": len(result.rows),
        }
        print(f"  {name:<16} {elapsed:8.2f}s  ({len(result.rows)} rows)")
    return timings


def time_suite(names: Sequence[str], jobs_list: Sequence[int]) -> Dict[str, float]:
    """End-to-end suite wall-clock at each worker count."""
    seconds_by_jobs: Dict[str, float] = {}
    for jobs in jobs_list:
        start = time.perf_counter()
        run_many(names, jobs=jobs, seeds=SMOKE_SEEDS)
        elapsed = time.perf_counter() - start
        seconds_by_jobs[str(jobs)] = round(elapsed, 3)
        print(f"  suite @ jobs={jobs}: {elapsed:.2f}s")
    return seconds_by_jobs


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the experiment suite and substrate kernels; "
        "write a machine-readable perf report.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to time (default: the whole registry)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the per-experiment timings "
        "(default: $RAIDP_JOBS or 1; 0 = all cores)",
    )
    parser.add_argument(
        "--compare-jobs",
        default=None,
        metavar="N,M,...",
        help="additionally time the full suite at each of these worker "
        "counts (e.g. 1,4) and record the speedup",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=DEFAULT_OUTPUT,
        help=f"report path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--kernels-only",
        action="store_true",
        help="only run the kernel microbenchmarks (fast)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or list_experiments()
    for name in names:
        if name not in REGISTRY:
            parser.error(f"unknown experiment {name!r}; known: {list_experiments()}")
    jobs = resolve_jobs(args.jobs)

    report = {
        "schema": 1,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "jobs": jobs,
            "smoke_seeds": list(SMOKE_SEEDS),
            "experiments": list(names),
        },
    }

    print("kernel microbenchmarks:")
    kernels = bench_kernels()
    for key, value in kernels.items():
        print(f"  {key:<28} {value:,.1f}")
    report["kernels"] = {k: round(v, 2) for k, v in kernels.items()}

    if not args.kernels_only:
        print(f"experiment timings (smoke scale, jobs={jobs}):")
        report["experiments"] = time_experiments(names, jobs)
        if args.compare_jobs:
            jobs_list = [resolve_jobs(int(j)) for j in args.compare_jobs.split(",")]
            print("suite comparison:")
            seconds_by_jobs = time_suite(names, jobs_list)
            suite = {"seconds_by_jobs": seconds_by_jobs}
            baseline = seconds_by_jobs.get("1")
            if baseline:
                best = min(seconds_by_jobs.values())
                suite["speedup_vs_jobs1"] = round(baseline / best, 3)
            report["suite"] = suite

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
