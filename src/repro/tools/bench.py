"""Perf-tracking bench harness: ``python -m repro.tools.bench``.

Times every registered experiment at smoke scale (one placement seed),
measures the substrate kernels (event-loop dispatch rate, payload XOR
throughput), and optionally compares end-to-end suite wall-clock across
worker-process counts.  Everything lands in ``BENCH_sim.json`` so future
PRs have a measurable baseline: regressions in either the hot kernels or
any single experiment show up as a diff against the committed report.

Usage::

    python -m repro.tools.bench                     # all experiments, jobs from RAIDP_JOBS
    python -m repro.tools.bench fig8 table2 -j 4    # a subset, 4 workers
    python -m repro.tools.bench --compare-jobs 1,4  # suite speedup measurement
    python -m repro.tools.bench --kernels-only      # skip the experiments
    python -m repro.tools.bench --check             # kernels vs committed report
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.experiments.parallel import resolve_jobs, run_many
from repro.experiments.runner import REGISTRY, list_experiments
from repro.sim import snapshot
from repro.sim.engine import Simulator
from repro.storage.payload import BytesPayload

#: Smoke-scale seed set: one placement seed instead of the default three.
SMOKE_SEEDS = (1,)

DEFAULT_OUTPUT = "BENCH_sim.json"

#: Git-tracked perf ledger: one JSONL entry per full bench run, so the
#: repo's own history carries kernel trend lines across PRs instead of
#: only the single latest committed report.
DEFAULT_HISTORY = "BENCH_history.jsonl"
HISTORY_SCHEMA = "raidp-bench-history-v1"

#: Kernels surfaced in the bench-check trend table (headline rates plus
#: the two disabled-path ratios the budgets gate).
_TREND_KEYS = (
    "event_loop_events_per_sec",
    "write_path_blocks_per_sec",
    "table2_rows_per_sec",
    "audit_checks_per_sec",
    "profile_overhead",
    "sampler_overhead",
)


# ----------------------------------------------------------------------
# Kernel microbenchmarks.
# ----------------------------------------------------------------------
def bench_payload_xor(size: int = units.MiB, repeats: int = 64) -> Dict[str, float]:
    """Throughput of the allocating vs. in-place payload XOR paths (GB/s)."""
    rng = np.random.default_rng(7)
    a = BytesPayload.adopt(rng.integers(0, 256, size=size, dtype=np.uint8))
    b = BytesPayload.adopt(rng.integers(0, 256, size=size, dtype=np.uint8))

    start = time.perf_counter()
    acc = a
    for _ in range(repeats):
        acc = acc.xor(b)
    xor_elapsed = time.perf_counter() - start

    buf = a.mutable_copy()
    start = time.perf_counter()
    for _ in range(repeats):
        b.xor_into(buf)
    xor_into_elapsed = time.perf_counter() - start

    total = size * repeats / units.GB
    return {
        "payload_xor_gbps": total / xor_elapsed if xor_elapsed else float("inf"),
        "payload_xor_into_gbps": (
            total / xor_into_elapsed if xor_into_elapsed else float("inf")
        ),
    }


def run_network_churn(
    solver: str, num_nics: int = 96, num_flows: int = 768, stagger: float = 0.0005
) -> Tuple[float, int]:
    """Drive a churn burst through one switch; (wall seconds, engine events).

    A deterministic LCG picks endpoints and sizes, so every run (and both
    solvers) sees the identical arrival/departure history.  This is the
    shared body of the ``flows_per_sec`` kernel and the microbenchmark
    event-budget guard.
    """
    from repro.sim.network import Nic, Switch

    sim = Simulator()
    switch = Switch(sim, solver=solver)
    nics = [switch.attach(Nic(f"n{i}", units.gbps(10))) for i in range(num_nics)]

    def feeder() -> Generator:
        state = 0x2545F4914F6CDD1D
        for _ in range(num_flows):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            src = nics[state % num_nics]
            dst = nics[(state >> 8) % num_nics]
            if dst is src:
                dst = nics[(state % num_nics + 1) % num_nics]
            size = 4 * units.MiB + (state >> 16) % (16 * units.MiB)
            switch.transfer(src, dst, size)
            yield sim.timeout(stagger)

    sim.process(feeder())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    if switch.active_flows:
        raise RuntimeError("churn burst left flows in flight")
    return elapsed, sim._seq


def bench_network_solver(num_nics: int = 96, num_flows: int = 768) -> Dict[str, float]:
    """Flow throughput of the fair-share allocator (flows/second).

    Measures the incremental solver against the retained brute-force
    reference on the identical churn history; the ratio is the headline
    number the incremental solver must defend (>= 5x).
    """
    inc_elapsed, _events = run_network_churn("incremental", num_nics, num_flows)
    ref_elapsed, _events = run_network_churn("reference", num_nics, num_flows)
    inc = num_flows / inc_elapsed if inc_elapsed else float("inf")
    ref = num_flows / ref_elapsed if ref_elapsed else float("inf")
    return {
        "net_solver_flows_per_sec": inc,
        "net_solver_reference_flows_per_sec": ref,
        "net_solver_speedup": inc / ref if ref else float("inf"),
    }


def bench_event_loop(num_events: int = 100_000) -> Dict[str, float]:
    """Dispatch rate of the simulation event loop (events/second)."""
    sim = Simulator()

    def ticker() -> Generator:
        for _ in range(num_events):
            yield sim.timeout(0.001)

    sim.process(ticker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "event_loop_events_per_sec": (
            num_events / elapsed if elapsed else float("inf")
        ),
    }


def bench_trace_events(num_events: int = 200_000) -> Dict[str, float]:
    """Raw tracer emission rate (events/second, tracing enabled)."""
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    tracer.register_run("bench")
    start = time.perf_counter()
    for index in range(num_events):
        ts = index * 0.001
        tracer.complete("bench", "span", ts, ts + 0.0005, op=index)
    elapsed = time.perf_counter() - start
    return {
        "trace_events_per_sec": num_events / elapsed if elapsed else float("inf"),
    }


def _write_path_once(blocks: int = 96) -> float:
    """One timed write-path run; returns blocks/second.

    The observability budget's reference workload: 8 nodes, 2-way
    replication, 4 MiB blocks, every client streaming writes.  This path
    crosses the client pipeline, both datanodes, the journal, the Lstor,
    the disks, and the switch -- every instrumented layer.
    """
    from repro.core.cluster import RaidpCluster
    from repro.core.node import RaidpConfig
    from repro.hdfs.config import DfsConfig
    from repro.sim.cluster import ClusterSpec

    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(block_size=4 * units.MiB, replication=2),
        raidp=RaidpConfig(),
        superchunk_size=16 * units.MiB,
        payload_mode="tokens",
        seed=1,
    )

    def workload() -> Generator:
        per_client = blocks // len(dfs.clients)
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(
                f"/bench/f{index}", per_client * 4 * units.MiB
            )

    start = time.perf_counter()
    dfs.sim.run_process(workload())
    elapsed = time.perf_counter() - start
    return blocks / elapsed if elapsed else float("inf")


def bench_write_path(repeats: int = 3) -> Dict[str, float]:
    """Write-path throughput with tracing disabled and enabled.

    ``write_path_blocks_per_sec`` is the number the <=3% disabled-
    tracing overhead budget is enforced against (see
    :data:`PR3_WRITE_PATH_BASELINE`); the traced rate documents the cost
    of turning tracing on.
    """
    from repro.obs.tracer import Tracer, capture

    disabled = max(_write_path_once() for _ in range(repeats))
    with capture(Tracer()):
        traced = max(_write_path_once() for _ in range(repeats))
    return {
        "write_path_blocks_per_sec": disabled,
        "write_path_traced_blocks_per_sec": traced,
        "write_path_trace_slowdown": disabled / traced if traced else float("inf"),
    }


def bench_profile_overhead(repeats: int = 5) -> Dict[str, float]:
    """Cost of the *disabled* profiler path on the write-path kernel.

    :mod:`repro.obs.simprofile` promises the engine pays nothing when no
    profiler collects: ``Simulator.run()`` checks the bound profiler once
    per call and takes the ordinary inlined drain loop when it is absent
    or muted.  This kernel pins that promise by interleaving write-path
    runs with no profiler and with a muted (``enabled=False``) profiler
    bound, in one process, keeping the best of each side so shared-host
    noise cancels.  Reported as a slowdown ratio (plain rate / muted
    rate; 1.0 = free), gated at :data:`MAX_PROFILE_OVERHEAD` by
    ``bench-check``.
    """
    from repro.obs.simprofile import SimProfiler
    from repro.obs.simprofile import capture as profile_capture

    muted = SimProfiler()
    muted.enabled = False
    plain = 0.0
    with_muted = 0.0
    for _ in range(repeats):
        gc.collect()
        plain = max(plain, _write_path_once())
        gc.collect()
        with profile_capture(muted):
            with_muted = max(with_muted, _write_path_once())
    return {
        "profile_overhead": plain / with_muted if with_muted else float("inf"),
    }


def bench_sampler_overhead(repeats: int = 5) -> Dict[str, float]:
    """Cost of the *disabled* flight-recorder path on the write path.

    Same promise and same measurement shape as
    :func:`bench_profile_overhead`: ``Simulator.run()`` checks the bound
    sampler once per call, so a run with no sampler (or a muted one)
    must pay nothing.  Interleaved best-of-each-side, reported as a
    slowdown ratio (1.0 = free), gated at :data:`MAX_SAMPLER_OVERHEAD`
    by ``bench-check``.
    """
    from repro.obs.timeseries import Sampler
    from repro.obs.timeseries import capture as ts_capture

    muted = Sampler()
    muted.enabled = False
    plain = 0.0
    with_muted = 0.0
    for _ in range(repeats):
        gc.collect()
        plain = max(plain, _write_path_once())
        gc.collect()
        with ts_capture(muted):
            with_muted = max(with_muted, _write_path_once())
    return {
        "sampler_overhead": plain / with_muted if with_muted else float("inf"),
    }


def bench_audit_checks(audits: int = 64) -> Dict[str, float]:
    """Redundancy-auditor throughput (individual checks/second).

    Runs the sample-point tier (replication coherence, flow
    conservation, disk-state sanity) repeatedly over a quiescent 8-node
    cluster with data on every node -- the work the flight recorder adds
    per sample tick when auditing is on.  A violation here is a bug in
    either the cluster or the auditor, so the kernel refuses to report a
    rate for a failing audit.
    """
    from repro.core.cluster import RaidpCluster
    from repro.hdfs.config import DfsConfig
    from repro.obs.audit import Auditor
    from repro.sim.cluster import ClusterSpec

    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        payload_mode="tokens",
        seed=1,
    )

    def workload() -> Generator:
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/audit/f{index}", 4 * units.MiB)

    dfs.sim.run_process(workload())
    auditor = Auditor()
    auditor.attach(dfs)
    start = time.perf_counter()
    for _ in range(audits):
        auditor.audit(dfs.sim, dfs.sim.now, event="sample")
    elapsed = time.perf_counter() - start
    if auditor.violations:
        raise RuntimeError(
            f"audit kernel found violations: "
            f"{[v.as_dict() for v in auditor.violations[:3]]}"
        )
    return {
        "audit_checks_per_sec": (
            auditor.checks_run / elapsed if elapsed else float("inf")
        ),
    }


def bench_table2_rows() -> Dict[str, float]:
    """Throughput of the table2 task pipeline (logical rows/second).

    Times the 64 MB rows -- two RAIDP lock modes and the RAID-6
    read/writeback phase split, each at both NICs -- through the real
    ``run_task``/dependency machinery, including the warm-start snapshot
    path.  The 4 MB rows are deliberately excluded: they would push
    ``make bench-check`` from seconds into minutes, and both row classes
    exercise the same code paths.
    """
    from repro.experiments import table2_recovery as t2

    keys = [
        key
        for key in t2.tasks()
        if (key[2] if key[0] == "raidp" else key[1]) == 64 * units.MiB
    ]
    rows = sum(
        1 for key in keys if key[0] == "raidp" or key[3] == "write"
    )
    results: Dict = {}
    start = time.perf_counter()
    for key in keys:
        deps = {dep: results[dep] for dep in t2.task_deps(key)}
        results[key] = t2.run_task(key, deps=deps)
    elapsed = time.perf_counter() - start
    return {
        "table2_rows_per_sec": rows / elapsed if elapsed else float("inf"),
    }


def bench_snapshot_restore(repeats: int = 32) -> Dict[str, float]:
    """Warm-start restore rate (clusters/second) at table2 scale.

    Captures one quiescent 16-node RAIDP cluster and times repeated
    restores -- the per-task cost every warm-started sweep point pays
    instead of a cold build.
    """
    from repro.experiments.common import Scale, build_raidp
    from repro.sim.snapshot import capture, restore

    blob = capture(build_raidp(Scale(), seed=1))
    start = time.perf_counter()
    for _ in range(repeats):
        restore(blob)
    elapsed = time.perf_counter() - start
    return {
        "snapshot_restore_per_sec": repeats / elapsed if elapsed else float("inf"),
    }


def bench_lint(repeats: int = 3) -> Dict[str, float]:
    """Linter throughput over the repo's own ``src/`` tree (files/sec).

    The lint gate runs in ``make verify`` and CI on every change; this
    kernel keeps its cost visible so a rule regression that turns the
    AST walk (or the CFG construction behind the RDP1xx rules)
    quadratic shows up in the perf report, not in CI latency.  Cold
    rebuilds everything; warm is the same tree served from the
    incremental cache -- the rate every edit-one-file ``make lint``
    actually pays.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.lint.cli import build_engine

    src = Path(__file__).resolve().parents[2]
    cache_dir = tempfile.mkdtemp(prefix="lint-bench-cache-")
    cold_best = 0.0
    warm_best = 0.0
    try:
        for _ in range(repeats):
            shutil.rmtree(cache_dir, ignore_errors=True)
            engine = build_engine(cache_dir=cache_dir)
            start = time.perf_counter()
            engine.lint_paths([str(src)])
            elapsed = time.perf_counter() - start
            files = max(engine.files_checked, 1)
            cold_best = max(cold_best, files / elapsed if elapsed else float("inf"))
            engine = build_engine(cache_dir=cache_dir)
            start = time.perf_counter()
            engine.lint_paths([str(src)])
            elapsed = time.perf_counter() - start
            warm_best = max(warm_best, files / elapsed if elapsed else float("inf"))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "lint_files_per_sec": cold_best,
        "lint_warm_files_per_sec": warm_best,
    }


def bench_cfg_builds(repeats: int = 3) -> Dict[str, float]:
    """CFG construction rate over the repo's own functions (CFGs/sec).

    The flow-sensitive rules build one CFG per function per file; this
    kernel times exactly that step (parsing excluded) so the graph
    builder has its own floor independent of total lint throughput.
    """
    import ast as ast_module
    from pathlib import Path

    from repro.lint.cfg import function_cfgs

    src = Path(__file__).resolve().parents[2]
    trees = [
        ast_module.parse(path.read_text(encoding="utf-8"))
        for path in sorted(src.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]
    best = 0.0
    for _ in range(repeats):
        built = 0
        start = time.perf_counter()
        for tree in trees:
            built += len(function_cfgs(tree))
        elapsed = time.perf_counter() - start
        best = max(best, built / elapsed if elapsed else float("inf"))
    return {"cfg_builds_per_sec": best}


def bench_durability(trials: int = 12) -> Dict[str, float]:
    """Fleet durability-engine throughput (Monte-Carlo trials/second).

    Times the epoch-batch engine on the ext-durability smoke fleet
    (1k disks x 10 simulated years, all five schemes on shared event
    streams).  The ISSUE-7 acceptance bound -- 10k disks x 10 years x
    200 trials in under 60 s -- rides on this rate staying healthy:
    the full-scale run is ~10x the per-trial event count, so a floor
    here keeps the headline run inside its budget with margin.
    """
    from repro.analysis.montecarlo import DurabilityEngine, Fleet

    engine = DurabilityEngine(
        fleet=Fleet(num_racks=20, disks_per_rack=50, groups=100_000),
        seed=3,
    )
    start = time.perf_counter()
    engine.run(trials, years=10.0)
    elapsed = time.perf_counter() - start
    return {
        "durability_trials_per_sec": trials / elapsed if elapsed else float("inf"),
    }


def bench_kernels() -> Dict[str, float]:
    kernels: Dict[str, float] = {}
    # Collect between kernels so each one starts from a small heap:
    # leftovers from earlier kernels otherwise tax the allocation-heavy
    # ones (the write path drops ~10% when timed after the rest).
    for bench in (
        bench_payload_xor,
        bench_event_loop,
        bench_network_solver,
        bench_trace_events,
        bench_write_path,
        bench_profile_overhead,
        bench_sampler_overhead,
        bench_audit_checks,
        bench_table2_rows,
        bench_snapshot_restore,
        bench_lint,
        bench_cfg_builds,
        bench_durability,
    ):
        gc.collect()
        kernels.update(bench())
    return kernels


# ----------------------------------------------------------------------
# The perf-history ledger.
# ----------------------------------------------------------------------
def append_history(report: Dict, path: str = DEFAULT_HISTORY) -> None:
    """Append one schema-versioned ledger entry for a finished bench run."""
    entry = {
        "schema": HISTORY_SCHEMA,
        "generated": report.get("generated"),
        "host": report.get("host", {}),
        "kernels": report.get("kernels", {}),
        "experiments": {
            name: timing.get("seconds")
            for name, timing in (report.get("experiments") or {}).items()
        },
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_history(path: str = DEFAULT_HISTORY) -> List[Dict]:
    """All ledger entries (skipping unknown schemas), oldest first."""
    entries: List[Dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                if entry.get("schema") == HISTORY_SCHEMA:
                    entries.append(entry)
    except FileNotFoundError:
        pass
    return entries


def print_history_trend(path: str = DEFAULT_HISTORY, last: int = 5) -> None:
    """The last-N kernel trend table ``bench-check`` prints.

    Informational only: cross-host entries are not comparable in
    absolute terms, so the table labels each entry with its timestamp
    and leaves judgement to the reader (the gates above are what fail
    the build).
    """
    entries = load_history(path)[-last:]
    if not entries:
        print(f"  (no perf history at {path})")
        return
    print(f"perf history (last {len(entries)} of {path}):")
    header = f"  {'generated':<26}" + "".join(
        f"{key.replace('_per_sec', '/s'):>22}" for key in _TREND_KEYS
    )
    print(header)
    for entry in entries:
        cells = []
        for key in _TREND_KEYS:
            value = (entry.get("kernels") or {}).get(key)
            cells.append(f"{value:>22,.2f}" if value is not None else f"{'-':>22}")
        print(f"  {str(entry.get('generated', '?')):<26}" + "".join(cells))


# ----------------------------------------------------------------------
# Regression check against the committed report.
# ----------------------------------------------------------------------
#: Kernel metrics exempt from the throughput floor (pure ratios are
#: checked with their own dedicated bounds).
_RATIO_KEYS = {
    "net_solver_speedup",
    "write_path_trace_slowdown",
    "profile_overhead",
    "sampler_overhead",
}

#: The incremental solver must stay this much faster than the reference.
MIN_SOLVER_SPEEDUP = 5.0

#: Write-path throughput measured on this repo immediately *before* the
#: tracing instrumentation landed (same host class as CI).  The
#: observability budget says disabled-tracing instrumentation may cost
#: at most 3%; the bound below adds headroom for run-to-run noise.
PR3_WRITE_PATH_BASELINE = 3682.2
#: Allowed shortfall vs the pre-instrumentation baseline (3% budget
#: plus measurement noise).
MAX_WRITE_PATH_SHORTFALL = 1.08

#: The disabled-profiler path (profiler machinery present but nothing
#: bound/collecting) may cost at most 1% on the write path.  The kernel
#: interleaves and keeps the best of each side, so the ratio is already
#: noise-cancelled; no extra headroom is added.
MAX_PROFILE_OVERHEAD = 1.01

#: Same budget for the disabled flight-recorder sampler: the engine
#: checks the bound sampler once per run(), never per event, so the
#: write path with a muted sampler must match the plain path to 1%.
MAX_SAMPLER_OVERHEAD = 1.01

#: Event-core floors locked in when the calendar-queue scheduler and
#: warmup memoization landed: the event-loop dispatch rate (1.5x the
#: pre-rewrite 880k events/sec) and the warm-started table2 row pipeline
#: (measured ~5.8 rows/sec; the floor leaves ~20% noise headroom).
#: Absolute rates do not transfer across machines, so -- like the
#: write-path budget -- they are enforced only when the committed report
#: came from a matching host.
PR8_EVENT_LOOP_FLOOR = 1_320_000.0
PR8_TABLE2_ROWS_FLOOR = 4.6

#: CFG-construction floor locked in when the flow-sensitive analyzer
#: landed (measured ~6,000 function CFGs/sec over the repo's own tree
#: when run after the other kernels, ~7,500 standalone; the floor
#: leaves ~20% headroom under the lower figure).  Host-gated like the
#: other absolute rates.
PR10_CFG_BUILDS_FLOOR = 4_800.0


def _hosts_match(committed: Dict, current_cpu: Optional[int]) -> bool:
    host = committed.get("host", {})
    return (
        host.get("platform") == platform.platform()
        and host.get("cpu_count") == current_cpu
    )


def check_report(path: str, tolerance: float) -> int:
    """Re-run the kernels and compare against the committed report.

    Every throughput kernel must land within ``tolerance`` (a ratio) of
    the committed value on the *low* side -- improvements always pass.
    The solver speedup is additionally held to :data:`MIN_SOLVER_SPEEDUP`
    in both the committed report and the fresh run.
    """
    with open(path) as fh:
        committed = json.load(fh)
    baseline = committed.get("kernels", {})
    current = bench_kernels()
    failures = []
    for key, value in current.items():
        if key in _RATIO_KEYS or key not in baseline:
            continue
        floor = baseline[key] / tolerance
        status = "ok" if value >= floor else "REGRESSION"
        print(f"  {key:<36} {value:>14,.1f}  (committed {baseline[key]:,.1f}) {status}")
        if value < floor:
            failures.append(
                f"{key}: {value:,.1f} < {floor:,.1f} "
                f"(committed {baseline[key]:,.1f} / tolerance {tolerance})"
            )
    for label, speedup in (
        ("committed", baseline.get("net_solver_speedup")),
        ("current", current.get("net_solver_speedup")),
    ):
        if speedup is None:
            failures.append(f"{label} report lacks net_solver_speedup")
            continue
        status = "ok" if speedup >= MIN_SOLVER_SPEEDUP else "REGRESSION"
        print(f"  net_solver_speedup ({label})         {speedup:>14.1f}x  {status}")
        if speedup < MIN_SOLVER_SPEEDUP:
            failures.append(
                f"{label} net_solver_speedup {speedup:.1f}x < {MIN_SOLVER_SPEEDUP}x"
            )
    # The observability budget: with tracing disabled, the instrumented
    # write path must stay within MAX_WRITE_PATH_SHORTFALL of the
    # pre-instrumentation baseline.  Raw blocks/sec do not transfer
    # across machines, so the absolute bound only applies when the
    # committed report came from a matching host; elsewhere the generic
    # tolerance check above still covers relative regressions.
    write_rate = current.get("write_path_blocks_per_sec")
    if write_rate is None:
        failures.append("current run lacks write_path_blocks_per_sec")
    elif _hosts_match(committed, os.cpu_count()):
        floor = PR3_WRITE_PATH_BASELINE / MAX_WRITE_PATH_SHORTFALL
        # A shared host can only make the kernel measure *slower*, never
        # faster, so a floor check may retry and keep the best: a real
        # regression stays under the floor on every attempt.
        for _ in range(2):
            if write_rate >= floor:
                break
            gc.collect()
            write_rate = max(
                write_rate, bench_write_path()["write_path_blocks_per_sec"]
            )
        status = "ok" if write_rate >= floor else "REGRESSION"
        print(
            f"  write_path vs pre-trace baseline     {write_rate:>14,.1f}  "
            f"(floor {floor:,.1f}) {status}"
        )
        if write_rate < floor:
            failures.append(
                f"write_path_blocks_per_sec {write_rate:,.1f} < {floor:,.1f} "
                f"(disabled-tracing budget vs baseline "
                f"{PR3_WRITE_PATH_BASELINE:,.1f})"
            )
    else:
        print(
            "  write_path vs pre-trace baseline     (skipped: report from "
            "a different host)"
        )
    # The disabled-profiler budget is a pure in-process ratio, so unlike
    # the absolute floors it holds on any host.
    overhead = current.get("profile_overhead")
    if overhead is None:
        failures.append("current run lacks profile_overhead")
    else:
        for _ in range(2):
            if overhead <= MAX_PROFILE_OVERHEAD:
                break
            gc.collect()
            overhead = min(overhead, bench_profile_overhead()["profile_overhead"])
        status = "ok" if overhead <= MAX_PROFILE_OVERHEAD else "REGRESSION"
        print(
            f"  profile_overhead                     {overhead:>14.4f}x  "
            f"(budget {MAX_PROFILE_OVERHEAD}x) {status}"
        )
        if overhead > MAX_PROFILE_OVERHEAD:
            failures.append(
                f"profile_overhead {overhead:.4f}x > {MAX_PROFILE_OVERHEAD}x "
                "(disabled-profiler path must be free on the write path)"
            )
    # And the same 1% budget for the disabled flight-recorder sampler.
    sampler_ratio = current.get("sampler_overhead")
    if sampler_ratio is None:
        failures.append("current run lacks sampler_overhead")
    else:
        for _ in range(2):
            if sampler_ratio <= MAX_SAMPLER_OVERHEAD:
                break
            gc.collect()
            sampler_ratio = min(
                sampler_ratio, bench_sampler_overhead()["sampler_overhead"]
            )
        status = "ok" if sampler_ratio <= MAX_SAMPLER_OVERHEAD else "REGRESSION"
        print(
            f"  sampler_overhead                     {sampler_ratio:>14.4f}x  "
            f"(budget {MAX_SAMPLER_OVERHEAD}x) {status}"
        )
        if sampler_ratio > MAX_SAMPLER_OVERHEAD:
            failures.append(
                f"sampler_overhead {sampler_ratio:.4f}x > {MAX_SAMPLER_OVERHEAD}x "
                "(disabled-sampler path must be free on the write path)"
            )
    # Event-core floors (same retry-keep-best rationale as the write
    # path: a shared host only slows a kernel down, never speeds it up).
    if _hosts_match(committed, os.cpu_count()):
        for key, floor, rerun in (
            ("event_loop_events_per_sec", PR8_EVENT_LOOP_FLOOR, bench_event_loop),
            ("table2_rows_per_sec", PR8_TABLE2_ROWS_FLOOR, bench_table2_rows),
            ("cfg_builds_per_sec", PR10_CFG_BUILDS_FLOOR, bench_cfg_builds),
        ):
            rate = current.get(key)
            if rate is None:
                failures.append(f"current run lacks {key}")
                continue
            for _ in range(2):
                if rate >= floor:
                    break
                gc.collect()
                rate = max(rate, rerun()[key])
            status = "ok" if rate >= floor else "REGRESSION"
            print(f"  {key + ' vs floor':<36} {rate:>14,.1f}  (floor {floor:,.1f}) {status}")
            if rate < floor:
                failures.append(f"{key} {rate:,.1f} < floor {floor:,.1f}")
    else:
        print("  event-core floors                    (skipped: report from a different host)")
    _experiment_delta_table(committed, current)
    print_history_trend()
    if failures:
        print("bench-check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench-check ok")
    return 0


#: Kernels that ride along in the before/after delta table (rates, so
#: a positive delta is an improvement -- the opposite of the experiment
#: wall-clock rows above them).
_DELTA_TABLE_KERNELS = ("event_loop_events_per_sec", "table2_rows_per_sec")


def _experiment_delta_table(committed: Dict, current_kernels: Dict[str, float]) -> None:
    """Re-time the committed report's experiments and print the deltas.

    Informational only (wall-clock is too host-sensitive to gate): the
    table makes a perf-focused PR's before/after visible in the CI log,
    and lands in the GitHub job summary when ``GITHUB_STEP_SUMMARY`` is
    set.  The event-core kernels ride along so their gated floors have a
    visible trend line next to the wall-clock they explain.
    """
    before = committed.get("experiments") or {}
    names = [name for name in before if name in REGISTRY]
    if not names:
        return
    jobs = int(committed.get("config", {}).get("jobs", 1) or 1)
    print(f"per-experiment timing delta (before = committed report, jobs={jobs}):")
    lines = [
        "| metric | before | after | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    for name in names:
        _reset_measurement_state()
        start = time.perf_counter()
        run_many([name], jobs=jobs, seeds=SMOKE_SEEDS)
        after = time.perf_counter() - start
        prior = float(before[name].get("seconds", 0.0))
        delta = (after - prior) / prior * 100.0 if prior else float("inf")
        print(f"  {name:<16} before {prior:8.2f}s  after {after:8.2f}s  {delta:+6.1f}%")
        lines.append(f"| {name} (s) | {prior:.2f} | {after:.2f} | {delta:+.1f}% |")
    baseline_kernels = committed.get("kernels") or {}
    for key in _DELTA_TABLE_KERNELS:
        prior = baseline_kernels.get(key)
        after = current_kernels.get(key)
        if not prior or not after:
            continue
        delta = (after - prior) / prior * 100.0
        print(f"  {key:<36} before {prior:12,.1f}  after {after:12,.1f}  {delta:+6.1f}%")
        lines.append(f"| {key} | {prior:,.1f} | {after:,.1f} | {delta:+.1f}% |")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write("### bench-check experiment timings\n\n")
            fh.write("\n".join(lines))
            fh.write("\n")


# ----------------------------------------------------------------------
# Experiment timings.
# ----------------------------------------------------------------------
def _reset_measurement_state() -> None:
    """Put the process in a reproducible state before a timed run.

    The kernels and earlier experiments leave tens of MB live (snapshot
    blobs, payload arrays), and a large generation-2 heap makes the
    cyclic GC visibly slower inside allocation-heavy simulations --
    in-process timings drifted ~15% above a fresh CLI run without this.
    Clearing the snapshot store also keeps every experiment's timing
    cold-cache, independent of what was timed before it.
    """
    snapshot.GLOBAL_STORE.clear()
    gc.collect()


def time_experiments(
    names: Sequence[str], jobs: int
) -> Dict[str, Dict[str, float]]:
    """Wall-clock per experiment at smoke scale (one seed)."""
    timings: Dict[str, Dict[str, float]] = {}
    for name in names:
        _reset_measurement_state()
        start = time.perf_counter()
        (result,) = run_many([name], jobs=jobs, seeds=SMOKE_SEEDS)
        elapsed = time.perf_counter() - start
        timings[name] = {
            "seconds": round(elapsed, 3),
            "rows": len(result.rows),
        }
        print(f"  {name:<16} {elapsed:8.2f}s  ({len(result.rows)} rows)")
    return timings


def time_suite(names: Sequence[str], jobs_list: Sequence[int]) -> Dict[str, float]:
    """End-to-end suite wall-clock at each worker count."""
    seconds_by_jobs: Dict[str, float] = {}
    for jobs in jobs_list:
        _reset_measurement_state()
        start = time.perf_counter()
        run_many(names, jobs=jobs, seeds=SMOKE_SEEDS)
        elapsed = time.perf_counter() - start
        seconds_by_jobs[str(jobs)] = round(elapsed, 3)
        print(f"  suite @ jobs={jobs}: {elapsed:.2f}s")
    return seconds_by_jobs


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the experiment suite and substrate kernels; "
        "write a machine-readable perf report.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to time (default: the whole registry)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the per-experiment timings "
        "(default: $RAIDP_JOBS or 1; 0 = all cores)",
    )
    parser.add_argument(
        "--compare-jobs",
        default=None,
        metavar="N,M,...",
        help="additionally time the full suite at each of these worker "
        "counts (e.g. 1,4) and record the speedup",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=DEFAULT_OUTPUT,
        help=f"report path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--kernels-only",
        action="store_true",
        help="only run the kernel microbenchmarks (fast)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-run the kernels and fail if any regressed beyond "
        "--check-tolerance of the committed report (reads --output)",
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=3.0,
        metavar="RATIO",
        help="allowed shortfall ratio vs the committed kernel numbers "
        "(default 3.0: absorbs machine-to-machine variance)",
    )
    args = parser.parse_args(argv)

    if args.check:
        print(f"bench-check: kernels vs {args.output} (tolerance {args.check_tolerance}x)")
        return check_report(args.output, args.check_tolerance)

    names = args.experiments or list_experiments()
    for name in names:
        if name not in REGISTRY:
            parser.error(f"unknown experiment {name!r}; known: {list_experiments()}")
    jobs = resolve_jobs(args.jobs)

    report = {
        "schema": 1,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "jobs": jobs,
            "smoke_seeds": list(SMOKE_SEEDS),
            "experiments": list(names),
        },
    }

    # Experiments are timed before the kernel microbenchmarks: the
    # kernels leave long-lived allocations behind, and even after a
    # gc.collect() a fresh process is measurably faster for the
    # allocation-heavy simulations.  Timing experiments first makes the
    # figures match a standalone `python -m repro.experiments` run.
    if not args.kernels_only:
        print(f"experiment timings (smoke scale, jobs={jobs}):")
        report["experiments"] = time_experiments(names, jobs)

    print("kernel microbenchmarks:")
    kernels = bench_kernels()
    for key, value in kernels.items():
        print(f"  {key:<28} {value:,.1f}")
    report["kernels"] = {k: round(v, 2) for k, v in kernels.items()}

    if not args.kernels_only and args.compare_jobs:
        jobs_list = [resolve_jobs(int(j)) for j in args.compare_jobs.split(",")]
        cpu_count = os.cpu_count() or 1
        suite: Dict[str, object] = {"cpu_count": cpu_count}
        # A jobs=N wall-clock on a host with fewer than N cores measures
        # oversubscription, not parallel speedup, so those re-runs are
        # skipped outright -- an oversubscribed suite pass costs ~the
        # whole suite wall-clock only to produce a timing the report
        # would then have to disclaim.
        oversubscribed = sorted({j for j in jobs_list if j > cpu_count})
        runnable = [j for j in jobs_list if j <= cpu_count]
        if oversubscribed:
            suite["speedup_note"] = (
                f"skipped jobs={oversubscribed}: host has {cpu_count} "
                "core(s); an oversubscribed re-run measures contention, "
                "not parallel speedup"
            )
            print(f"  suite comparison: {suite['speedup_note']}")
        parallel_jobs = [j for j in runnable if j > 1]
        if parallel_jobs:
            print("suite comparison:")
            seconds_by_jobs = time_suite(names, runnable)
            suite["seconds_by_jobs"] = seconds_by_jobs
            baseline = seconds_by_jobs.get("1")
            if baseline:
                best = min(seconds_by_jobs[str(j)] for j in parallel_jobs)
                suite["speedup_vs_jobs1"] = round(baseline / best, 3)
        else:
            # Nothing to compare against jobs=1 -- do not burn a
            # jobs=1-only suite pass either.
            suite["speedup_vs_jobs1"] = None
        report["suite"] = suite

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.output}")
    # Full runs extend the git-tracked ledger; ad-hoc runs aimed at a
    # different --output (scratch comparisons) stay out of the history.
    if args.output == DEFAULT_OUTPUT:
        append_history(report)
        print(f"appended {DEFAULT_HISTORY}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
