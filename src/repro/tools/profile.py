"""``python -m repro.tools.profile`` -- hot-path profiling for experiments.

Runs an experiment (or a slice of its task pipeline) under the
deterministic simulation profiler (:mod:`repro.obs.simprofile`) and
prints the ranked "top hot paths" table: dispatched events, simulated
seconds, and wall-clock seconds attributed to process/callsite buckets
keyed by the :mod:`repro.obs.taxonomy` categories.  This is the
measurement tool that every perf PR starts from -- the committed
hot-path table in DESIGN.md section 12 is this program's output.

Usage::

    python -m repro.tools.profile table2               # full experiment
    python -m repro.tools.profile table2 --tasks 2     # first 2 tasks only
    python -m repro.tools.profile fig8 --limit 25      # longer report
    python -m repro.tools.profile table2 --json p.json # machine-readable
    python -m repro.tools.profile table2 --cprofile    # interpreter view

Also exposed as ``raidpctl profile``.  The event counts and simulated
seconds are exactly reproducible run-to-run (profiling never perturbs
the schedule); wall-clock samples are host measurements and vary, but
the ranking is stable for any meaningfully hot path.  ``--cprofile``
swaps the per-dispatch attribution for an interpreter-level cProfile of
the same slice, when function-granularity wall time is needed.

The JSON export follows the repo's report conventions (a ``schema``
version plus sorted keys, like :mod:`repro.lint` findings and the bench
report); this module is allow-listed for the ``RDP001`` wall-clock rule
for the same reason the bench harness is.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import REGISTRY, run_experiment
from repro.obs import simprofile

#: JSON output schema version (bump on breaking shape changes).
JSON_SCHEMA_VERSION = 1

#: Default number of ranked buckets printed.
DEFAULT_LIMIT = 15


def _experiment_module(name: str) -> Any:
    if name not in REGISTRY:
        raise SystemExit(
            f"unknown experiment {name!r}; known: {sorted(REGISTRY)}"
        )
    module_name, _title = REGISTRY[name]
    return importlib.import_module(module_name)


def run_slice(
    name: str, max_tasks: Optional[int] = None, full_scale: bool = False
) -> Tuple[int, float]:
    """Run an experiment (or its first ``max_tasks`` tasks) in-process.

    Uses the experiment's task protocol (``tasks``/``run_task``) when it
    has one, so a slice exercises the same per-task code paths the
    parallel runner does; experiments without the protocol always run
    whole.  Dependencies of sliced tasks are resolved within the run.
    Returns (tasks_run, wall_seconds).
    """
    module = _experiment_module(name)
    start = time.perf_counter()
    if max_tasks is None or not hasattr(module, "tasks"):
        run_experiment(name, full_scale=full_scale)
        return (-1, time.perf_counter() - start)
    task_deps = getattr(module, "task_deps", lambda _key: ())
    results: Dict[Any, Any] = {}

    def run_one(key: Any) -> None:
        if key in results:
            return
        deps = tuple(task_deps(key))
        for dep in deps:
            run_one(dep)
        kwargs: Dict[str, Any] = {"full_scale": full_scale}
        if deps:
            kwargs["deps"] = {dep: results[dep] for dep in deps}
        results[key] = module.run_task(key, **kwargs)

    count = 0
    for key in module.tasks(full_scale=full_scale):
        run_one(key)
        count += 1
        if count >= max_tasks:
            break
    return (count, time.perf_counter() - start)


# ----------------------------------------------------------------------
# Reports.
# ----------------------------------------------------------------------
def render_report(
    profiler: simprofile.SimProfiler,
    title: str,
    limit: int = DEFAULT_LIMIT,
    wall_seconds: Optional[float] = None,
) -> str:
    """The ranked hot-path table, hottest (wall-clock) first."""
    ranked = profiler.ranked()
    totals = profiler.totals()
    total_wall = totals["wall_seconds"] or 1.0
    lines = [f"top hot paths: {title}"]
    lines.append(
        f"{totals['events']:,} events dispatched, "
        f"{totals['sim_seconds']:,.1f} simulated seconds, "
        f"{totals['wall_seconds']:.2f}s wall in dispatch"
        + (f" ({wall_seconds:.2f}s total)" if wall_seconds is not None else "")
    )
    header = (
        f"{'#':>3}  {'category':<10} {'callsite':<44} "
        f"{'events':>10} {'sim s':>10} {'wall s':>8} {'wall %':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for rank, bucket in enumerate(ranked[:limit], start=1):
        lines.append(
            f"{rank:>3}  {bucket.category:<10} {bucket.callsite:<44} "
            f"{bucket.events:>10,} {bucket.sim_seconds:>10.1f} "
            f"{bucket.wall_seconds:>8.3f} "
            f"{bucket.wall_seconds / total_wall * 100:>6.1f}%"
        )
    if len(ranked) > limit:
        rest_wall = sum(b.wall_seconds for b in ranked[limit:])
        lines.append(
            f"     ... {len(ranked) - limit} more buckets "
            f"({rest_wall / total_wall * 100:.1f}% of wall)"
        )
    return "\n".join(lines)


def report_dict(
    profiler: simprofile.SimProfiler,
    experiment: str,
    tasks_run: int,
    wall_seconds: float,
    scheduler: str,
) -> Dict[str, Any]:
    """The JSON-exportable report (schema-versioned, like the bench report)."""
    return {
        "schema": JSON_SCHEMA_VERSION,
        "experiment": experiment,
        "tasks": tasks_run,
        "scheduler": scheduler,
        "wall_seconds": round(wall_seconds, 3),
        "totals": profiler.totals(),
        "buckets": [bucket.as_dict() for bucket in profiler.ranked()],
    }


def markdown_table(profiler: simprofile.SimProfiler, limit: int = 10) -> str:
    """Top buckets as a GitHub-flavoured markdown table (CI job summary)."""
    totals = profiler.totals()
    total_wall = totals["wall_seconds"] or 1.0
    lines = [
        "| # | category | callsite | events | sim s | wall % |",
        "| ---: | --- | --- | ---: | ---: | ---: |",
    ]
    for rank, bucket in enumerate(profiler.ranked()[:limit], start=1):
        lines.append(
            f"| {rank} | {bucket.category} | `{bucket.callsite}` "
            f"| {bucket.events:,} | {bucket.sim_seconds:,.1f} "
            f"| {bucket.wall_seconds / total_wall * 100:.1f}% |"
        )
    return "\n".join(lines)


def _write_step_summary(title: str, table: str) -> None:
    """Append the markdown table to ``GITHUB_STEP_SUMMARY`` when set."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as fh:
        fh.write(f"### {title}\n\n{table}\n")


# ----------------------------------------------------------------------
# cProfile mode.
# ----------------------------------------------------------------------
def run_cprofile(
    name: str, max_tasks: Optional[int], full_scale: bool, limit: int
) -> int:
    """Interpreter-level wall-clock profile of the same slice.

    Complements the deterministic profiler: the sim profiler attributes
    cost to *dispatch consumers* (what the schedule spends its time on),
    cProfile to *functions* (where the interpreter spends its cycles).
    """
    import cProfile
    import pstats

    profile = cProfile.Profile()
    profile.enable()
    tasks_run, wall = run_slice(name, max_tasks, full_scale)
    profile.disable()
    slice_label = "all tasks" if tasks_run < 0 else f"first {tasks_run} task(s)"
    print(f"cProfile: {name} ({slice_label}), {wall:.2f}s wall")
    stats = pstats.Stats(profile, stream=sys.stdout)
    stats.sort_stats("tottime").print_stats(limit)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.profile",
        description="Profile an experiment's simulation hot paths "
        "(deterministic event/sim-time attribution plus wall sampling).",
    )
    parser.add_argument("experiment", help=f"one of: {', '.join(sorted(REGISTRY))}")
    parser.add_argument(
        "--tasks",
        type=int,
        default=None,
        metavar="N",
        help="run only the first N tasks of the experiment's pipeline "
        "(default: the whole experiment)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=DEFAULT_LIMIT,
        metavar="N",
        help=f"ranked rows to print (default {DEFAULT_LIMIT})",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full report as schema-versioned JSON",
    )
    parser.add_argument(
        "--full", action="store_true", help="profile at paper scale (slow)"
    )
    parser.add_argument(
        "--cprofile",
        action="store_true",
        help="use interpreter-level cProfile instead of the sim profiler",
    )
    args = parser.parse_args(argv)
    if args.experiment not in REGISTRY:
        parser.error(
            f"unknown experiment {args.experiment!r}; known: {sorted(REGISTRY)}"
        )
    if args.cprofile:
        return run_cprofile(args.experiment, args.tasks, args.full, args.limit)

    from repro.sim.engine import _resolve_scheduler

    scheduler = _resolve_scheduler(None)
    with simprofile.capture() as profiler:
        tasks_run, wall = run_slice(args.experiment, args.tasks, args.full)
    slice_label = (
        args.experiment
        if tasks_run < 0
        else f"{args.experiment} (first {tasks_run} task(s))"
    )
    print(
        render_report(
            profiler,
            f"{slice_label} [{scheduler} scheduler]",
            limit=args.limit,
            wall_seconds=wall,
        )
    )
    if args.json:
        payload = report_dict(
            profiler, args.experiment, tasks_run, wall, scheduler
        )
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json} ({len(payload['buckets'])} buckets)")
    _write_step_summary(
        f"hot paths: {slice_label}", markdown_table(profiler, limit=10)
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - module shim
    sys.exit(main())
