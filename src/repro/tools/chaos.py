"""Chaos soak: DFSIO + TeraSort traffic under seeded fault injection.

The acceptance drill for the failure-lifecycle hardening: a ByteStore
RAIDP cluster runs real read/write/rewrite traffic plus a TeraSort while
a :func:`repro.faults.chaos_schedule` plan fires underneath it -- at
least one simultaneous double failure of a superchunk-sharing pair, an
independent single-disk failure, a whole-node crash + restart cycle, a
transient NIC degradation, and an Lstor loss.  After the dust settles
the soak asserts:

- **no data loss**: every surviving block reads back bit-exact through
  the regular client path (degraded reads allowed), and every listed
  replica's stored content matches the expected generator output;
- **a recovery per failure**: every injected victim shows up in the
  monitor's detection log and the recovery reports cover every failure
  group (the sharing pair counts as one double-failure report);
- **clean rejoin**: the restarted node re-registers through
  :meth:`~repro.core.monitor.ClusterMonitor.rejoin`;
- **determinism**: two runs with the same seed produce bit-identical
  history fingerprints (injections, detections, per-block checksums,
  final clock, network byte counts).

Run it from the shell (the ``make chaos`` target does exactly this)::

    PYTHONPATH=src python -m repro.tools.chaos --seed 12345 --runs 2
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import sys
import zlib
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.monitor import ClusterMonitor, MonitorConfig
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultSchedule, chaos_schedule
from repro.hdfs.config import DfsConfig
from repro.obs import audit as audit_mod
from repro.obs import timeseries as ts_mod
from repro.obs.metrics import cluster_metrics
from repro.obs.slo import health_report, render_dash, write_health_report
from repro.sim.cluster import ClusterSpec
from repro.workloads.driver import workload_body
from repro.workloads.terasort import terasort_tasks

DEFAULT_SEED = 0xC4A05

#: Cluster shape: small blocks and superchunks so the soak runs in
#: seconds while still exercising multi-superchunk layouts.
NUM_NODES = 12
SUPERCHUNKS_PER_DISK = 3
BLOCK_SIZE = 256 * units.KiB
SUPERCHUNK_SIZE = 1 * units.MiB  # 4 block slots per superchunk

#: Traffic shape.
DFSIO_FILE_BLOCKS = 2
TERASORT_BYTES = NUM_NODES * BLOCK_SIZE  # one input block per task
ROUND_PAUSE = 0.25
TRAFFIC_DEADLINE = 11.0
HORIZON = 30.0
FAULT_WINDOW = (2.0, 10.0)
RESTART_DELAY = 4.0


@dataclasses.dataclass
class ChaosResult:
    """Outcome of one soak run.

    ``health`` (present only on flight-recorder runs) rides *outside*
    the fingerprint: sampled and unsampled runs must stay bit-identical
    on ``fingerprint``, which the determinism tests compare.
    """

    seed: int
    ok: bool
    problems: List[str]
    fingerprint: Dict
    health: Optional[Dict] = None

    def summary(self) -> str:
        fp = self.fingerprint
        status = "PASS" if self.ok else "FAIL"
        return (
            f"chaos seed={self.seed}: {status} -- "
            f"{len(fp['injections'])} faults injected, "
            f"{len(fp['detected'])} detections, "
            f"{len(fp['reports'])} recoveries, "
            f"{fp['pipeline_recoveries']} pipeline recoveries, "
            f"{fp['read_failovers']} read failovers, "
            f"{fp['degraded_reads']} degraded reads, "
            f"{fp['skipped_ops']} ops skipped, "
            f"{len(fp['blocks'])} blocks verified"
        )

    def render_timeline(self) -> str:
        """The fault -> detection -> recovery latency table."""
        rows = self.fingerprint.get("timeline", [])
        if not rows:
            return "(no recovery timeline)"
        lines = [
            f"{'victims':<24} {'injected':>9} {'detected':>9} "
            f"{'recovered':>9} {'det lat':>8} {'rec lat':>8}"
        ]
        lines.append("-" * len(lines[0]))
        for row in rows:
            victims = "+".join(row["victims"])

            def fmt(value: Optional[float]) -> str:
                return f"{value:9.3f}" if value is not None else f"{'-':>9}"

            def fmt8(value: Optional[float]) -> str:
                return f"{value:8.3f}" if value is not None else f"{'-':>8}"

            lines.append(
                f"{victims:<24} {fmt(row['injected_at'])} "
                f"{fmt(row['detected_at'])} {fmt(row['recovered_at'])} "
                f"{fmt8(row['detect_latency'])} {fmt8(row['recover_latency'])}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Guarded traffic bodies.
# ----------------------------------------------------------------------
def _guard(body: Generator, skipped: List[int]) -> Generator:
    """Run a task body, absorbing in-fault failures (MapReduce retries
    the task in real life; the soak just counts the casualty)."""
    try:
        yield from body
    except ReproError:
        skipped[0] += 1
    return None


def _create_file(dfs: Any, client: Any, path: str, nbytes: int, skipped: List[int]) -> Generator:
    """Write a new file; abandon it wholesale if the write dies.

    A create that loses every replica mid-flight leaves phantom blocks
    (allocated slots, no durable content); real HDFS clients abandon the
    file, and so does the soak -- otherwise recovery would be asked to
    rebuild bytes that never existed.
    """
    try:
        yield from client.write_file(path, nbytes)
    except ReproError:
        skipped[0] += 1
        if dfs.namenode.file_exists(path):
            try:
                yield from client.delete_file(path)
            except ReproError:
                pass
    return None


def _safe_rewrite(dfs: Any, client: Any, path: str, skipped: List[int]) -> Generator:
    """Rewrite a file in place, skipping blocks that cannot accept
    writes right now (superchunk frozen by an in-flight recovery, or no
    healthy replica at all).  A write that loses *every* replica
    mid-flight is rolled back to the previous version -- nothing durable
    happened, so the version number must not advance past the content.
    """
    for block in dfs.namenode.file_blocks(path):
        locations = dfs.namenode.locate_block(block.block_id)
        if locations.sc_id is not None and dfs.map.is_frozen(locations.sc_id):
            skipped[0] += 1
            continue
        healthy = [
            name
            for name in locations.datanodes
            if client._replica_healthy(dfs.namenode.datanode(name))
        ]
        if not healthy:
            skipped[0] += 1
            continue
        locations.version += 1
        try:
            yield from client.write_block(locations)
        except ReproError:
            locations.version -= 1
            skipped[0] += 1
    return None


def _traffic(dfs: Any, skipped: List[int]) -> Generator:
    """The soak's workload: seed the datasets, churn reads/rewrites
    until the traffic deadline, then run a TeraSort over the input."""
    clients = dfs.clients
    nfiles = len(clients)

    # Seed: a DFSIO file per client plus the TeraSort input slices.
    # This completes before the fault window opens, so the churn rounds
    # below always have data to hit.
    seed_bodies = [
        _create_file(
            dfs, client, f"/chaos/dfsio/f{i}", DFSIO_FILE_BLOCKS * BLOCK_SIZE, skipped
        )
        for i, client in enumerate(clients)
    ]
    seed_bodies += [
        _create_file(
            dfs, client, f"/chaos/sort/in/part-{i}", TERASORT_BYTES // nfiles, skipped
        )
        for i, client in enumerate(clients)
    ]
    yield from workload_body(dfs, seed_bodies, "chaos-seed")

    # Churn: every round, each live-node client reads a rotated file and
    # every third client rewrites its own -- so the fault instants land
    # inside active reads and pipeline writes.
    round_index = 0
    while dfs.sim.now < TRAFFIC_DEADLINE:
        bodies = []
        for i, client in enumerate(clients):
            if not client.node.alive:
                continue
            target = (i + round_index) % nfiles
            bodies.append(_guard(client.read_file(f"/chaos/dfsio/f{target}"), skipped))
            if (i + round_index) % 3 == 0:
                bodies.append(_safe_rewrite(dfs, client, f"/chaos/dfsio/f{i}", skipped))
        yield from workload_body(dfs, bodies, f"chaos-round{round_index}")
        round_index += 1
        yield dfs.sim.timeout(ROUND_PAUSE)

    # TeraSort over the seeded input, with every task guarded the way a
    # real MapReduce job would retry a failed attempt.
    sort_bodies = [
        _guard(body, skipped)
        for body in terasort_tasks(
            dfs,
            TERASORT_BYTES,
            input_prefix="/chaos/sort/in",
            output_prefix="/chaos/sort/out",
        )
    ]
    yield from workload_body(dfs, sort_bodies, "chaos-terasort")
    return None


# ----------------------------------------------------------------------
# Verification.
# ----------------------------------------------------------------------
def _payload_checksum(payload: Any) -> int:
    method = getattr(payload, "checksum", None)
    if method is not None:
        return method()
    tokens = getattr(payload, "tokens", None)
    if tokens is not None:  # symbolic payloads: stable digest of the set
        return zlib.crc32(repr(sorted(tokens)).encode())
    return zlib.crc32(repr(payload).encode())


def _verify_reads(dfs: Any, problems: List[str], blocks_fp: List) -> Generator:
    """Read every block back through the regular client path and compare
    it bit-for-bit to the content generator's expected payload."""
    client = dfs.clients[0]
    for path in sorted(dfs.namenode.list_files()):
        for block in dfs.namenode.file_blocks(path):
            locations = dfs.namenode.locate_block(block.block_id)
            expected = dfs.factory.make(block.name, locations.version, block.size)
            try:
                payload = yield from client.read_block(locations)
            except ReproError as exc:
                problems.append(f"read of {block.name} ({path}) failed: {exc}")
                continue
            if payload != expected:
                problems.append(f"{block.name} ({path}) read back wrong content")
            blocks_fp.append(
                (
                    block.name,
                    locations.version,
                    tuple(sorted(locations.datanodes)),
                    _payload_checksum(payload),
                )
            )
    return None


def _verify_replicas(dfs: Any, problems: List[str]) -> None:
    """Every listed replica must be healthy and hold the exact bytes."""
    for locations in dfs.namenode.all_blocks():
        block = locations.block
        if locations.replica_count == 0:
            problems.append(f"{block.name}: no replicas survived")
            continue
        expected = dfs.factory.make(block.name, locations.version, block.size)
        for name in locations.datanodes:
            datanode = dfs.namenode.datanode(name)
            if not (
                datanode.alive
                and not datanode.disk.failed
                and datanode.node.alive
            ):
                problems.append(f"{block.name}: listed replica {name} is dead")
                continue
            if not datanode.has_block(block.name):
                problems.append(f"{block.name}: replica {name} lost the content")
                continue
            if datanode.content_of(block.name) != expected:
                problems.append(f"{block.name}: replica {name} diverged")


def recovery_timeline(
    monitor: ClusterMonitor, injector: FaultInjector
) -> List[Dict]:
    """Fault -> detection -> recovery-complete latency per detection.

    One row per detector sweep that declared a dead set: when the
    underlying fault(s) were injected, when the sweep fired, and when the
    last recovery report covering the set completed.  ``None`` marks a
    stage that never happened (e.g. a victim already rejoined).
    """
    fault_time: Dict[str, float] = {}
    for record in injector.injected:
        fault = record.fault
        if fault.kind == "disk_fail":
            fault_time.setdefault(fault.target, record.at)
        elif fault.kind == "node_crash":
            node = injector._node(fault.target)
            for datanode in injector._datanodes_on(node):
                fault_time.setdefault(datanode.name, record.at)
    rows: List[Dict] = []
    for detected_at, names in monitor.detected:
        injected = [fault_time[name] for name in names if name in fault_time]
        injected_at = min(injected) if injected else None
        recovered_at = None
        for when, report in zip(monitor.report_times, monitor.reports):
            if when >= detected_at and any(
                name in report.failed_disks for name in names
            ):
                recovered_at = when if recovered_at is None else max(
                    recovered_at, when
                )
        rows.append(
            {
                "victims": sorted(names),
                "injected_at": injected_at,
                "detected_at": detected_at,
                "recovered_at": recovered_at,
                "detect_latency": (
                    detected_at - injected_at if injected_at is not None else None
                ),
                "recover_latency": (
                    recovered_at - injected_at
                    if injected_at is not None and recovered_at is not None
                    else None
                ),
            }
        )
    return rows


def _verify_lifecycle(
    dfs: Any, monitor: ClusterMonitor, injector: FaultInjector, problems: List[str]
) -> None:
    """Detection, recovery, and rejoin coverage for every injected fault."""
    detected_names = {name for _, names in monitor.detected for name in names}
    rejoined = {name for _, name in monitor.rejoined}
    covered = {
        name for report in monitor.reports for name in report.failed_disks
    }
    victims: List[str] = []
    seen_double = False
    disk_fail_times: Dict[float, List[str]] = {}
    for record in injector.injected:
        fault = record.fault
        if fault.kind == "disk_fail":
            victims.append(fault.target)
            disk_fail_times.setdefault(fault.at, []).append(fault.target)
        elif fault.kind == "node_crash":
            node = injector._node(fault.target)
            victims.extend(dn.name for dn in injector._datanodes_on(node))
        elif fault.kind == "node_restart":
            node = injector._node(fault.target)
            for datanode in injector._datanodes_on(node):
                if datanode.name not in rejoined:
                    problems.append(f"{datanode.name} never rejoined after restart")
    for victim in victims:
        if victim not in detected_names:
            problems.append(f"failure of {victim} never detected")
        if victim not in covered:
            problems.append(f"no recovery report covers {victim}")
    seen_double = any(len(names) > 1 for names in disk_fail_times.values())
    if seen_double and not any(
        report.reconstructed_sc is not None for report in monitor.reports
    ):
        problems.append("double failure injected but no Lstor reconstruction ran")
    for when, names, exc in monitor.recovery_errors:
        problems.append(f"recovery of {names} failed at t={when:.3f}: {exc}")


# ----------------------------------------------------------------------
# Flight-recorder plumbing.
# ----------------------------------------------------------------------
def _fault_recovery_span(
    monitor: ClusterMonitor, injector: FaultInjector, final_time: float
) -> Optional[Tuple[float, float]]:
    """First injection -> last recovery-completion/rejoin, or None when
    nothing was injected.  Replication-state violations inside this span
    are expected (detection lag, in-flight remirroring) and get waived;
    anything outside it -- in particular at the final deep audit -- is a
    real finding."""
    starts = [record.at for record in injector.injected]
    if not starts:
        return None
    start = min(starts)
    ends = list(monitor.report_times) + [t for t, _ in monitor.rejoined]
    end = max(ends) if ends else final_time
    return (start, max(start, end))


def _chaos_phases(
    span: Optional[Tuple[float, float]], final_time: float
) -> List[Tuple[str, float, float]]:
    """The health-report windows: pre-fault / fault / recovery / drain."""
    fault_start, fault_end = FAULT_WINDOW
    recovery_end = fault_end if span is None else max(span[1], fault_end)
    return [
        ("pre-fault", 0.0, fault_start),
        ("fault", fault_start, fault_end),
        ("recovery", fault_end, recovery_end),
        ("drain", recovery_end, final_time),
    ]


# ----------------------------------------------------------------------
# One soak run.
# ----------------------------------------------------------------------
def build_cluster(seed: int) -> RaidpCluster:
    """The soak's cluster: 12 single-disk nodes, byte-level payloads."""
    spec = ClusterSpec(num_nodes=NUM_NODES)
    config = DfsConfig(
        block_size=BLOCK_SIZE,
        replication=2,
        tasks_per_node=1,
        read_retries=3,
        read_backoff=20 * units.MSEC,
        allocate_retries=20,
        allocate_backoff=0.25,
    )
    return RaidpCluster(
        spec=spec,
        config=config,
        superchunk_size=SUPERCHUNK_SIZE,
        superchunks_per_disk=SUPERCHUNKS_PER_DISK,
        payload_mode="bytes",
        seed=seed,
    )


def run_chaos(
    seed: int = DEFAULT_SEED,
    schedule: Optional[FaultSchedule] = None,
    doubles: int = 1,
    singles: int = 1,
    node_crashes: int = 1,
    nic_degrades: int = 1,
    lstor_losses: int = 1,
    sample_interval: Optional[float] = None,
    audit: bool = False,
    sampler: Optional[ts_mod.Sampler] = None,
    auditor: Optional[audit_mod.Auditor] = None,
) -> ChaosResult:
    """Run one soak; returns the pass/fail verdict and the run's
    deterministic history fingerprint.

    ``sample_interval`` turns on the flight recorder (time-series
    telemetry at that simulated-second cadence); ``audit`` turns on the
    redundancy invariant auditor (checked at sample points when sampling
    is also on, and always at detection/recovery/final).  Both are
    observer-only: the fingerprint is bit-identical either way.  A
    caller may instead pass pre-built ``sampler``/``auditor`` objects
    (the CLI does, so it can export them afterwards).
    """
    if sampler is None and sample_interval is not None:
        sampler = ts_mod.Sampler(interval=sample_interval)
    if auditor is None and audit:
        auditor = audit_mod.Auditor(fail_fast=False)
    with contextlib.ExitStack() as stack:
        if sampler is not None:
            stack.enter_context(ts_mod.capture(sampler))
        if auditor is not None:
            stack.enter_context(audit_mod.capture(auditor))
        # The sampler must be active *before* the Simulator is built --
        # the engine binds it at construction time.
        dfs = build_cluster(seed)
        if schedule is None:
            schedule = chaos_schedule(
                dfs,
                seed,
                window=FAULT_WINDOW,
                singles=singles,
                doubles=doubles,
                node_crashes=node_crashes,
                nic_degrades=nic_degrades,
                lstor_losses=lstor_losses,
                restart_delay=RESTART_DELAY,
            )
        monitor = ClusterMonitor(
            dfs,
            MonitorConfig(heartbeat_interval=0.5, dead_after=2.0, sweep_interval=0.5),
        )
        injector = FaultInjector(dfs, schedule, monitor=monitor)
        if auditor is not None:
            auditor.attach(dfs, monitor=monitor)
        if sampler is not None:
            sampler.watch(cluster_metrics(dfs, monitor=monitor))
            if auditor is not None:
                sampler.on_sample(auditor.on_sample)

        skipped = [0]
        monitor.start()
        injector.start()
        traffic = dfs.sim.process(_traffic(dfs, skipped), name="chaos-traffic")
        dfs.sim.run(until=HORIZON)
        problems: List[str] = []
        if not traffic.triggered:
            problems.append("traffic did not finish before the horizon")
        if not injector.done:
            problems.append("fault schedule did not finish before the horizon")
        monitor.stop()
        dfs.sim.run()  # drain the heartbeat/detector loops

        span = _fault_recovery_span(monitor, injector, dfs.sim.now)
        if auditor is not None:
            auditor.audit(dfs.sim, dfs.sim.now, event="final")
            if span is not None:
                auditor.waive_between(
                    [span],
                    "detection-lag: replication state is expected to be "
                    "degraded between injection and recovery completion",
                )
            for violation in auditor.unwaived():
                problems.append(f"audit: {violation.as_dict()}")

    # ------------------------------------------------------------------
    # Post-mortem verification.
    # ------------------------------------------------------------------
    _verify_lifecycle(dfs, monitor, injector, problems)
    _verify_replicas(dfs, problems)
    lost = dfs.namenode.lost_blocks()
    if lost:
        problems.append(f"{len(lost)} blocks lost: "
                        f"{[loc.block.name for loc in lost][:5]}")
    try:
        dfs.verify_mirrors()
        dfs.verify_parity()
    except ReproError as exc:
        problems.append(f"invariant check failed: {exc}")

    blocks_fp: List = []
    dfs.sim.run_process(_verify_reads(dfs, problems, blocks_fp))

    fingerprint = {
        "injections": [
            (r.at, r.fault.kind, r.fault.target, r.fault.factor,
             r.fault.duration, r.note)
            for r in injector.injected
        ],
        "detected": [(t, list(names)) for t, names in monitor.detected],
        "rejoined": [(t, name) for t, name in monitor.rejoined],
        "reports": [
            (report.duration, sorted(report.remirrored),
             report.reconstructed_sc, report.bytes_reconstructed)
            for report in monitor.reports
        ],
        "recovery_errors": [
            (t, list(names), str(exc))
            for t, names, exc in monitor.recovery_errors
        ],
        "files": sorted(
            (path, dfs.namenode.file_size(path))
            for path in dfs.namenode.list_files()
        ),
        "blocks": blocks_fp,
        "under_replicated": len(dfs.namenode.under_replicated()),
        "skipped_ops": skipped[0],
        "pipeline_recoveries": sum(
            c.stats_pipeline_recoveries for c in dfs.clients
        ),
        "read_failovers": sum(c.stats_read_failovers for c in dfs.clients),
        "degraded_reads": sum(
            getattr(c, "stats_degraded_reads", 0) for c in dfs.clients
        ),
        "final_time": dfs.sim.now,
        "network_bytes": dfs.total_network_bytes(),
        "timeline": recovery_timeline(monitor, injector),
    }
    health: Optional[Dict] = None
    if sampler is not None:
        health = health_report(
            sampler,
            auditor=auditor,
            phases=_chaos_phases(span, fingerprint["final_time"]),
            title=f"chaos seed={seed}",
            run=sampler.run,
        )
    return ChaosResult(
        seed=seed, ok=not problems, problems=problems, fingerprint=fingerprint,
        health=health,
    )


def run_repeated(seed: int = DEFAULT_SEED, runs: int = 2, **kwargs: Any) -> ChaosResult:
    """Run the soak ``runs`` times with the same seed; the fingerprints
    must be bit-identical or the combined result fails."""
    first = run_chaos(seed, **kwargs)
    for index in range(1, runs):
        again = run_chaos(seed, **kwargs)
        first.problems.extend(again.problems)
        if again.fingerprint != first.fingerprint:
            diff_keys = [
                key
                for key in first.fingerprint
                if first.fingerprint[key] != again.fingerprint[key]
            ]
            first.problems.append(
                f"run {index + 1} diverged from run 1 on: {diff_keys}"
            )
    first.ok = not first.problems
    return first


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="RAIDP chaos soak: workloads under seeded fault injection"
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--runs", type=int, default=2,
        help="same-seed repetitions to check determinism (default 2)",
    )
    parser.add_argument(
        "--json", action="store_true", help="dump the fingerprint as JSON"
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="print the fault -> detection -> recovery latency table",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a simulation trace of the soak (same formats as the "
        "experiment runner's --trace)",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="turn on flight-recorder telemetry at this simulated-time "
        "cadence (implied at 0.5s by --health/--timeseries)",
    )
    parser.add_argument(
        "--health",
        metavar="PATH",
        default=None,
        help="write the run's health report (SLO verdicts, per-phase "
        "latency series, audit summary) as JSON; implies sampling + audit",
    )
    parser.add_argument(
        "--timeseries",
        metavar="PATH",
        default=None,
        help="export the sampled time series as JSONL; implies sampling",
    )
    parser.add_argument(
        "--dash",
        action="store_true",
        help="render the health report to the terminal (implies --health "
        "plumbing; raidpctl dash renders saved reports)",
    )
    options = parser.parse_args(argv)

    want_health = options.health is not None or options.dash
    interval = options.sample_interval
    if interval is None and (want_health or options.timeseries):
        interval = ts_mod.DEFAULT_INTERVAL
    recorder_kwargs: Dict = {}
    sampler: Optional[ts_mod.Sampler] = None
    if interval is not None:
        sampler = ts_mod.Sampler(interval=interval)
        recorder_kwargs["sampler"] = sampler
    if want_health or sampler is not None:
        recorder_kwargs["auditor"] = audit_mod.Auditor(fail_fast=False)

    if options.trace:
        from repro.obs.export import write_trace
        from repro.obs.tracer import Tracer, capture

        with capture(Tracer()) as tracer:
            result = run_repeated(
                options.seed, runs=max(1, options.runs), **recorder_kwargs
            )
        count = write_trace(tracer, options.trace)
        print(f"trace: {count} events -> {options.trace}")
    else:
        result = run_repeated(
            options.seed, runs=max(1, options.runs), **recorder_kwargs
        )
    if sampler is not None and options.timeseries:
        lines = ts_mod.write_timeseries(sampler, options.timeseries)
        print(f"timeseries: {lines} lines -> {options.timeseries}")
    if result.health is not None and options.health:
        write_health_report(result.health, options.health)
        print(f"health: report -> {options.health}")
    if result.health is not None and options.dash:
        print(render_dash(result.health))
    print(result.summary())
    if options.timeline:
        print(result.render_timeline())
    for problem in result.problems:
        print(f"  PROBLEM: {problem}")
    if options.json:
        json.dump(result.fingerprint, sys.stdout, indent=2, default=list)
        print()
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
