"""``raidpctl``: drive the RAIDP simulator from the command line.

Subcommands::

    raidpctl layout --nodes 7                     # render a layout (Fig. 3)
    raidpctl bench --system raidp --data 4GiB     # quick write/read bench
    raidpctl drill --nodes 8 --double             # failure drill + verify
    raidpctl tco --disk-cost 280 --server-cost 28000 --disks 60
    raidpctl experiments fig8                     # regenerate a figure
    raidpctl trace run.json                       # summarize a trace file
    raidpctl profile table2 --tasks 2             # rank simulation hot paths
    raidpctl dash health.json                     # render a health report
    raidpctl dash --live --seed 7                 # chaos run + live dash

Every command is deterministic and runs entirely in simulation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Generator, List, Optional, Sequence

from repro import units
from repro.analysis.cost import DatacenterCostModel, LstorBom, ServerExample
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec
from repro.workloads.dfsio import dfsio_read, dfsio_write


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="raidpctl", description="RAIDP reproduction control tool"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    layout = sub.add_parser("layout", help="construct and render a superchunk layout")
    layout.add_argument("--nodes", type=int, default=7)
    layout.add_argument("--per-disk", type=int, default=None)
    layout.add_argument("--disks-per-node", type=int, default=1)

    bench = sub.add_parser("bench", help="run a quick DFSIO write+read benchmark")
    bench.add_argument(
        "--system", choices=("raidp", "raidp-rewrite", "hdfs2", "hdfs3"), default="raidp"
    )
    bench.add_argument("--nodes", type=int, default=16)
    bench.add_argument("--data", default="4GiB", help="total dataset, e.g. 4GiB")
    bench.add_argument("--seed", type=int, default=1)

    drill = sub.add_parser("drill", help="run a failure drill with verification")
    drill.add_argument("--nodes", type=int, default=8)
    drill.add_argument("--double", action="store_true", help="double disk failure")
    drill.add_argument("--seed", type=int, default=1)

    tco = sub.add_parser("tco", help="evaluate the 2-replicas+Lstor TCO trade")
    tco.add_argument("--disk-cost", type=float, default=150.0)
    tco.add_argument("--server-cost", type=float, default=20_000.0)
    tco.add_argument("--disks", type=int, default=6)
    tco.add_argument("--lstor-cost", type=float, default=30.0)

    experiments = sub.add_parser("experiments", help="regenerate paper experiments")
    experiments.add_argument("names", nargs="*", default=[])
    experiments.add_argument("--full", action="store_true")

    trace = sub.add_parser(
        "trace",
        help="summarize a trace file (phase totals, recovery breakdowns)",
    )
    trace.add_argument("file", help="trace produced by --trace (.json or .jsonl)")
    trace.add_argument(
        "--category", default=None, help="restrict to one event category"
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=8,
        metavar="N",
        help="per-recovery superchunk rows to print (0 = all; default 8)",
    )

    profile = sub.add_parser(
        "profile",
        help="rank an experiment's simulation hot paths "
        "(deterministic event attribution; see repro.tools.profile)",
    )
    profile.add_argument("experiment", help="experiment id, e.g. table2")
    profile.add_argument("--tasks", type=int, default=None, metavar="N")
    profile.add_argument("--limit", type=int, default=None, metavar="N")
    profile.add_argument("--json", default=None, metavar="PATH")
    profile.add_argument("--full", action="store_true")
    profile.add_argument("--cprofile", action="store_true")

    dash = sub.add_parser(
        "dash",
        help="render a flight-recorder health report (per-phase "
        "sparklines + SLO verdicts) from a saved JSON file, optionally "
        "alongside its time-series JSONL, or live from a chaos run",
    )
    dash.add_argument(
        "report",
        nargs="?",
        default=None,
        help="health report JSON written by chaos --health",
    )
    dash.add_argument(
        "--timeseries",
        metavar="PATH",
        default=None,
        help="sampled time-series JSONL to summarize alongside the report",
    )
    dash.add_argument(
        "--live",
        action="store_true",
        help="run a chaos soak now and dash its health report",
    )
    dash.add_argument("--seed", type=int, default=None, help="chaos seed for --live")
    dash.add_argument(
        "--sample-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sampling cadence for --live (default 0.5s)",
    )
    dash.add_argument(
        "--width", type=int, default=40, help="sparkline width (default 40)"
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations.
# ----------------------------------------------------------------------
def cmd_layout(args: argparse.Namespace) -> int:
    if args.disks_per_node > 1:
        from repro.core.layout import domain_aware_layout

        domains = {
            f"n{n}-d{d}": f"n{n}"
            for n in range(args.nodes)
            for d in range(args.disks_per_node)
        }
        layout = domain_aware_layout(domains, args.per_disk or 4)
    else:
        from repro.core.layout import rotational_layout

        layout = rotational_layout(args.nodes, superchunks_per_disk=args.per_disk)
    print(layout.render())
    total = len(layout.superchunks)
    print(
        f"\n{len(layout.disks)} disks, {total} superchunks "
        f"(bound: {layout.max_total_superchunks(len(layout.disks))}); "
        "1-sharing and 1-mirroring verified"
    )
    layout.verify()
    return 0


def _build_system(system: str, nodes: int, seed: int) -> Any:
    spec = ClusterSpec(num_nodes=nodes)
    if system in ("hdfs2", "hdfs3"):
        replication = 2 if system == "hdfs2" else 3
        return HdfsCluster(
            spec=spec,
            config=DfsConfig(replication=replication),
            payload_mode="tokens",
            seed=seed,
        )
    raidp = RaidpConfig(update_oriented=(system == "raidp-rewrite"))
    return RaidpCluster(
        spec=spec,
        config=DfsConfig(replication=2),
        raidp=raidp,
        payload_mode="tokens",
        seed=seed,
    )


def cmd_bench(args: argparse.Namespace) -> int:
    nbytes = units.parse_size(args.data)
    dfs = _build_system(args.system, args.nodes, args.seed)
    write = dfsio_write(dfs, nbytes)
    read = dfsio_read(dfs)
    for result in (write, read):
        print(result.summary())
    print(
        f"throughput: write {nbytes / write.runtime / units.MB:.0f} MB/s, "
        f"read {nbytes / read.runtime / units.MB:.0f} MB/s (simulated)"
    )
    return 0


def cmd_drill(args: argparse.Namespace) -> int:
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=args.nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=max(args.nodes // 3, 2),
        payload_mode="bytes",
        seed=args.seed,
    )

    def workload() -> Generator:
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/drill/file{index}", 3 * units.MiB)

    dfs.sim.run_process(workload())
    manager = RecoveryManager(dfs)
    if args.double:
        a, b = next(
            (x, y)
            for x in dfs.layout.disks
            for y in dfs.layout.disks
            if x < y and dfs.layout.shared(x, y) is not None
        )
        print(f"double failure drill: {a} and {b} (shared superchunk lost)")
        report = manager.recover_double_failure(a, b, options=RecoveryOptions())
        print(
            f"reconstructed superchunk {report.reconstructed_sc}, re-mirrored "
            f"{len(report.remirrored)} in {units.format_duration(report.duration)}"
        )
    else:
        victim = dfs.layout.disks[0]
        print(f"single failure drill: {victim}")
        report = manager.recover_single_failure(victim)
        print(
            f"re-mirrored {len(report.remirrored)} superchunks in "
            f"{units.format_duration(report.duration)}"
        )
    dfs.layout.verify()
    dfs.verify_mirrors()
    dfs.verify_parity()
    print("drill passed: mirrors bit-identical, parity exact, layout legal")
    return 0


def cmd_tco(args: argparse.Namespace) -> int:
    server = ServerExample(
        name="your-fleet",
        server_cost=args.server_cost,
        num_disks=args.disks,
        disk_street_price=args.disk_cost,
    )
    lstor = LstorBom(
        flash_and_dram=args.lstor_cost - 21.0,
        microcontroller=5.0,
        supercap_and_enclosure=16.0,
    )
    model = DatacenterCostModel(derived_disk_cost=server.derived_disk_cost, lstor=lstor)
    print(f"derived disk cost: ${server.derived_disk_cost:,.0f} "
          f"({server.derived_multiplier:.1f}x street price)")
    print(f"Lstor BOM:         ${lstor.total:,.0f}")
    print(f"TCO savings:       {model.raidp_savings_fraction():.1%} "
          "(bound 33.3%) for 2 replicas + 1 Lstor each vs triplication")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as experiments_main

    argv: List[str] = list(args.names)
    if args.full:
        argv.append("--full")
    return experiments_main(argv)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import load_trace, render_summary

    events = load_trace(args.file)
    print(f"{args.file}: {len(events)} events")
    print(render_summary(events, category=args.category, limit=args.limit))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.tools.profile import main as profile_main

    argv: List[str] = [args.experiment]
    if args.tasks is not None:
        argv += ["--tasks", str(args.tasks)]
    if args.limit is not None:
        argv += ["--limit", str(args.limit)]
    if args.json is not None:
        argv += ["--json", args.json]
    if args.full:
        argv.append("--full")
    if args.cprofile:
        argv.append("--cprofile")
    return profile_main(argv)


def cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.slo import load_health_report, render_dash
    from repro.obs.timeseries import load_timeseries

    if args.live:
        from repro.tools.chaos import DEFAULT_SEED, run_chaos

        interval = args.sample_interval if args.sample_interval else 0.5
        seed = args.seed if args.seed is not None else DEFAULT_SEED
        result = run_chaos(seed=seed, sample_interval=interval, audit=True)
        assert result.health is not None
        print(render_dash(result.health, width=args.width))
        for problem in result.problems:
            print(f"  PROBLEM: {problem}")
        return 0 if result.ok else 1
    if args.report is None:
        print("dash: pass a health report JSON or --live", file=sys.stderr)
        return 2
    report = load_health_report(args.report)
    print(render_dash(report, width=args.width))
    if args.timeseries:
        header, rows = load_timeseries(args.timeseries)
        print(
            f"\ntimeseries {args.timeseries}: {len(rows)} samples retained "
            f"({header.get('samples_total')} taken) x "
            f"{len(header.get('series', []))} series at "
            f"{header.get('interval')}s"
        )
    return 0 if report.get("ok") else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "layout": cmd_layout,
        "bench": cmd_bench,
        "drill": cmd_drill,
        "tco": cmd_tco,
        "experiments": cmd_experiments,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "dash": cmd_dash,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
