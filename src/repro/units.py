"""Size, time, and bandwidth units used throughout the RAIDP reproduction.

All byte quantities in the code base are plain integers counted in bytes;
all simulated time quantities are floats counted in seconds; all bandwidth
quantities are floats counted in bytes per second.  This module centralizes
the conversion constants and the small amount of parsing/formatting helpers
so that call sites can say ``6 * units.GiB`` or ``units.parse_size("64MB")``
instead of sprinkling magic numbers.
"""

from __future__ import annotations

import re

# Binary (IEC) sizes -- used for device and block geometry, matching how
# HDFS configures block sizes (64MB block == 64 * 2**20 bytes).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal (SI) sizes -- used for marketing-style disk capacities ("2TB
# disk") and network rates ("10Gbps NIC"), matching vendor conventions.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

# Time.
USEC = 1e-6
MSEC = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

# Network rates in bytes/second.  NIC line rates are conventionally quoted
# in bits per second.
def gbps(gigabits: float) -> float:
    """Convert a line rate in gigabits/second to bytes/second."""
    return gigabits * 1e9 / 8.0


def mbps(megabits: float) -> float:
    """Convert a line rate in megabits/second to bytes/second."""
    return megabits * 1e6 / 8.0


_SIZE_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
    # Bare single letters follow the HDFS convention of binary units.
    "k": KiB,
    "m": MiB,
    "g": GiB,
    "t": TiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str) -> int:
    """Parse a human-readable size like ``"64MB"`` or ``"6GiB"`` to bytes.

    Bare-letter suffixes (``64M``) follow the HDFS convention and are
    binary.  Raises ``ValueError`` on malformed input.
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = match.groups()
    suffix = suffix.lower() or "b"
    if suffix not in _SIZE_SUFFIXES:
        raise ValueError(f"unknown size suffix in {text!r}")
    result = float(value) * _SIZE_SUFFIXES[suffix]
    if result != int(result):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_size(num_bytes: int) -> str:
    """Render a byte count with a binary suffix, e.g. ``"64.0MiB"``."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration compactly, e.g. ``"2m 05s"`` or ``"830ms"``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < MINUTE:
        return f"{seconds:.2f}s"
    if seconds < HOUR:
        minutes, secs = divmod(seconds, MINUTE)
        return f"{int(minutes)}m {secs:04.1f}s"
    hours, rem = divmod(seconds, HOUR)
    minutes = rem / MINUTE
    return f"{int(hours)}h {minutes:.0f}m"
