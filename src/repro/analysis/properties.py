"""Table 1, derived: the +/-/± property matrix from quantitative models.

Rather than transcribing the paper's symbols, every row is computed from
a small closed-form model (replica counts, I/O counts, network volumes)
and then ranked: the best scheme(s) get "+", the worst "-", the middle
"±".  The test suite asserts the derived matrix matches the published
one, which is a genuine reproduction of the table rather than a copy.

Schemes: ``3rep`` (triplication), ``ec`` (n+2 Reed-Solomon), ``raidp``.
All three tolerate double disk failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

SCHEMES = ("3rep", "ec", "raidp")


class Rating(enum.Enum):
    BEST = "+"
    WORST = "-"
    MID = "±"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PropertyRow:
    """One Table 1 row: the metric values and derived ratings."""

    name: str
    values: Dict[str, float]  # lower is better
    ratings: Dict[str, Rating]


def _rank(values: Dict[str, float]) -> Dict[str, Rating]:
    """Map each scheme's value (lower = better) to +/-/±."""
    best = min(values.values())
    worst = max(values.values())
    ratings = {}
    for scheme, value in values.items():
        if value == best == worst:
            ratings[scheme] = Rating.BEST
        elif value == best:
            ratings[scheme] = Rating.BEST
        elif value == worst:
            ratings[scheme] = Rating.WORST
        else:
            ratings[scheme] = Rating.MID
    return ratings


def _metrics(n: int, superchunks_per_disk: int) -> List[Tuple[str, Dict[str, float]]]:
    """(property, scheme -> cost) pairs; lower cost = better."""
    s = superchunks_per_disk
    return [
        # Raw capacity consumed per useful byte.
        (
            "storage capacity",
            {"3rep": 3.0, "ec": (n + 2) / n, "raidp": 2.0 + 1.0 / s},
        ),
        # Read flexibility: reciprocal of directly readable copies.
        (
            "read parallelism / load balancing",
            {"3rep": 1 / 3, "ec": 1.0, "raidp": 1 / 2},
        ),
        # Cost of a read when the primary copy is unavailable (blocks
        # that must be touched).
        (
            "degraded read",
            {"3rep": 1.0, "ec": float(n), "raidp": 1.0},
        ),
        # Foreground CPU work per write, in parity computations (RAIDP's
        # are offloaded to the Lstor but still consume a device pipeline;
        # half-weight captures "in between").
        (
            "cpu consumption (sync latency)",
            {"3rep": 0.0, "ec": 2.0, "raidp": 1.0},
        ),
        # Disk sequentiality: fragments a write stream is split into.
        (
            "disk sequentiality",
            {"3rep": 1.0, "ec": float(n), "raidp": 1.0},
        ),
        # Network blocks moved for a sub-stripe (small) write of 1 block.
        # 3rep sends 2 remote copies; EC must update 2 remote parities
        # (read-modify-write over the network: 2 reads + 2 writes); RAIDP
        # sends 1 remote copy (parity is local).
        (
            "write network: sub-stripe",
            {"3rep": 2.0, "ec": 4.0, "raidp": 1.0},
        ),
        # Network blocks per block of a full-stripe (large) write.
        (
            "write network: full stripe",
            {"3rep": 2.0, "ec": 2.0 / n, "raidp": 1.0},
        ),
        # Disk I/Os per node for a sub-sector write (read-modify-write
        # granularity): EC parity nodes RMW; RAIDP replicas RMW.
        (
            "write disk: sub-sector",
            {"3rep": 1.0, "ec": 2.0, "raidp": 2.0},
        ),
        # Disk I/Os per block for a medium (sub-block) write.
        (
            "write disk: sub-block",
            {"3rep": 3.0, "ec": float(n + 2), "raidp": 4.0},
        ),
        # Total disk I/O blocks for a large n-block write: 3rep writes 3n,
        # EC writes n+2, RAIDP reads+writes on both replicas = 4n.
        (
            "write disk: multi-block",
            {"3rep": 3.0, "ec": (n + 2) / n, "raidp": 4.0},
        ),
        # Repair traffic per lost byte, single failure.
        (
            "repair traffic: single failure",
            {"3rep": 1.0, "ec": float(n), "raidp": 1.0},
        ),
        # Repair traffic per lost byte, double failure.
        (
            "repair traffic: dual failure",
            {
                "3rep": 1.0,
                "ec": float(n),
                "raidp": ((2 * s - 2) + s) / (2 * s - 1),
            },
        ),
        # Failure domains a datum's redundancy spans (reciprocal: fewer
        # domains = worse availability).
        (
            "failure domain tolerance",
            {"3rep": 1 / 3, "ec": 1 / (n + 2), "raidp": 1 / 2},
        ),
    ]


def property_matrix(n: int = 10, superchunks_per_disk: int = 15) -> List[PropertyRow]:
    """Compute Table 1: metric values and +/-/± ratings per scheme."""
    rows = []
    for name, values in _metrics(n, superchunks_per_disk):
        rows.append(PropertyRow(name=name, values=values, ratings=_rank(values)))
    return rows


def render_matrix(rows: List[PropertyRow]) -> str:
    """ASCII rendition of Table 1."""
    header = f"{'property':<36} " + " ".join(f"{s:>6}" for s in SCHEMES)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(f"{row.ratings[s].value:>6}" for s in SCHEMES)
        lines.append(f"{row.name:<36} {cells}")
    return "\n".join(lines)
