"""Section 4: feasibility and cost of trading a third replica for Lstors.

Three models, all parameterized with the paper's December-2019 price
points so the tests can assert the paper's headline numbers:

- :class:`LstorBom` -- the Lstor bill of materials (flash + DRAM, a
  micro-controller, a supercapacitor and enclosure).
- :class:`ServerExample` -- derived per-disk cost of a storage server
  (the paper's hyper-converged and SuperMicro examples).
- :class:`DatacenterCostModel` -- the Fig. 7 TCO breakdown and the
  replication-factor savings bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class LstorBom:
    """Cost of building one Lstor (December 2019 street prices)."""

    flash_and_dram: float = 9.0  # 4 GB flash + 4 GB DRAM [DRAMeXchange]
    microcontroller: float = 5.0  # Raspberry-Pi-Zero-class part
    supercap_and_enclosure: float = 16.0  # power hold-up + SATA interposer

    @property
    def total(self) -> float:
        return self.flash_and_dram + self.microcontroller + self.supercap_and_enclosure


@dataclass(frozen=True)
class ServerExample:
    """Derived per-disk cost of a storage server configuration."""

    name: str
    server_cost: float
    num_disks: int
    disk_street_price: float

    @property
    def direct_disk_cost(self) -> float:
        return self.disk_street_price

    @property
    def derived_disk_cost(self) -> float:
        """Disk cost including its share of the enclosing server."""
        attached = self.server_cost - self.num_disks * self.disk_street_price
        return self.disk_street_price + attached / self.num_disks

    @property
    def derived_multiplier(self) -> float:
        return self.derived_disk_cost / self.direct_disk_cost


#: The paper's two concrete server examples (§4).
HYPERCONVERGED = ServerExample(
    name="hyper-converged", server_cost=20_000.0, num_disks=6, disk_street_price=150.0
)
SUPERMICRO = ServerExample(
    name="supermicro-6048r", server_cost=23_000.0, num_disks=72, disk_street_price=125.0
)

#: Fig. 7: Amazon's datacenter cost breakdown [Hamilton 2010].
FIG7_BREAKDOWN: Dict[str, float] = {
    "servers": 0.57,
    "networking equipment": 0.08,
    "power distribution & cooling": 0.18,
    "power": 0.13,
    "other infrastructure": 0.04,
}


@dataclass(frozen=True)
class DatacenterCostModel:
    """TCO of a replicated storage fleet, scalable with replica count.

    The paper argues all major cost components scale roughly linearly
    with the number of disks, so dropping the third replica saves up to
    1/3 of TCO, minus the cost of the Lstors added to the remaining two
    replicas.
    """

    breakdown: Dict[str, float] = field(default_factory=lambda: dict(FIG7_BREAKDOWN))
    derived_disk_cost: float = HYPERCONVERGED.derived_disk_cost
    lstor: LstorBom = field(default_factory=LstorBom)
    #: Fraction of TCO that scales with disk count (the paper: ~all).
    disk_proportional_fraction: float = 1.0

    def __post_init__(self) -> None:
        total = sum(self.breakdown.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"breakdown must sum to 1.0, got {total}")

    def infrastructure_overhead_fraction(self) -> float:
        """Non-server share of TCO (the paper's 43%)."""
        return 1.0 - self.breakdown["servers"]

    def tco_per_useful_disk(self, replication: int, lstors_per_disk: int = 0) -> float:
        """Disk-proportional TCO of storing one disk's worth of data.

        ``replication`` disks carry the data; each carries
        ``lstors_per_disk`` Lstors.  Server-attached and facility costs
        ride on the derived disk cost; Lstors add only their BOM (they
        draw negligible power and space, §4).
        """
        if replication < 1:
            raise ValueError("replication must be >= 1")
        disks = replication * self.derived_disk_cost / self.breakdown["servers"]
        lstors = replication * lstors_per_disk * self.lstor.total
        return disks * self.disk_proportional_fraction + lstors

    def raidp_savings_fraction(self) -> float:
        """TCO saved by 2 replicas + 2 Lstors over triplication."""
        triplication = self.tco_per_useful_disk(replication=3)
        raidp = self.tco_per_useful_disk(replication=2, lstors_per_disk=1)
        return 1.0 - raidp / triplication

    def lstor_pair_vs_third_replica(self) -> float:
        """Direct purchase: third disk cost over the cost of two Lstors."""
        return self.derived_disk_cost / (2 * self.lstor.total)


def fig7_rows() -> Dict[str, float]:
    """The Fig. 7 pie chart data."""
    return dict(FIG7_BREAKDOWN)
