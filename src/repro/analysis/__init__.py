"""Analytic models: cost, design space, and the Table 1 property matrix.

- :mod:`repro.analysis.repair_traffic` -- closed-form repair volumes per
  redundancy scheme (feeds Fig. 1 and Table 1).
- :mod:`repro.analysis.design_space` -- Fig. 1's storage-efficiency vs
  repair-efficiency plane.
- :mod:`repro.analysis.properties` -- derives Table 1's +/-/± matrix from
  quantitative mini-models instead of hand-waving.
- :mod:`repro.analysis.cost` -- the Section 4 feasibility and TCO study
  (Lstor bill of materials, derived disk costs, Fig. 7 breakdown).
- :mod:`repro.analysis.durability` -- analytic MTTDL ladder and the
  legacy small-fleet failure simulator (paper §2).
- :mod:`repro.analysis.montecarlo` -- the long-horizon fleet durability
  engine (Weibull lifetimes, latent sector errors, correlated bursts).
"""

from repro.analysis.cost import DatacenterCostModel, LstorBom, ServerExample
from repro.analysis.design_space import DesignPoint, design_space_points
from repro.analysis.montecarlo import (
    DurabilityEngine,
    Fleet,
    Scheme,
    SchemeReport,
    analytic_mc_mttdl,
    default_schemes,
)
from repro.analysis.properties import Rating, property_matrix
from repro.analysis.repair_traffic import RepairTraffic, repair_traffic

__all__ = [
    "DatacenterCostModel",
    "DesignPoint",
    "DurabilityEngine",
    "Fleet",
    "LstorBom",
    "Rating",
    "RepairTraffic",
    "Scheme",
    "SchemeReport",
    "ServerExample",
    "analytic_mc_mttdl",
    "default_schemes",
    "design_space_points",
    "property_matrix",
    "repair_traffic",
]
