"""Analytic models: cost, design space, and the Table 1 property matrix.

- :mod:`repro.analysis.repair_traffic` -- closed-form repair volumes per
  redundancy scheme (feeds Fig. 1 and Table 1).
- :mod:`repro.analysis.design_space` -- Fig. 1's storage-efficiency vs
  repair-efficiency plane.
- :mod:`repro.analysis.properties` -- derives Table 1's +/-/± matrix from
  quantitative mini-models instead of hand-waving.
- :mod:`repro.analysis.cost` -- the Section 4 feasibility and TCO study
  (Lstor bill of materials, derived disk costs, Fig. 7 breakdown).
"""

from repro.analysis.cost import DatacenterCostModel, LstorBom, ServerExample
from repro.analysis.design_space import DesignPoint, design_space_points
from repro.analysis.properties import Rating, property_matrix
from repro.analysis.repair_traffic import RepairTraffic, repair_traffic

__all__ = [
    "DatacenterCostModel",
    "DesignPoint",
    "LstorBom",
    "Rating",
    "RepairTraffic",
    "ServerExample",
    "design_space_points",
    "property_matrix",
    "repair_traffic",
]
