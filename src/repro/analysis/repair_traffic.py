"""Closed-form repair traffic for the three redundancy schemes (§2).

All volumes are normalized to the amount of data lost: a value of 1.0
means the system reads/transfers exactly as much as it lost (the
replication ideal); Reed-Solomon reads ``n`` blocks per lost block.

RAIDP's double-failure figure interpolates: every superchunk of a failed
disk except the shared one is repaired replication-style (1.0), while the
shared superchunk costs a local-erasure rebuild pulling the disk's other
superchunks plus the Lstor parity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RepairTraffic:
    """Normalized repair volumes of one scheme for one failure count."""

    scheme: str
    failures: int
    #: Bytes read (and moved) per byte of lost data.
    volume_per_lost_byte: float


def replication_repair(failures: int) -> RepairTraffic:
    """k-way replication reads one surviving copy per lost byte."""
    return RepairTraffic("replication", failures, 1.0)


def erasure_repair(n: int, failures: int) -> RepairTraffic:
    """An n+k MDS code reads n blocks to rebuild each lost block."""
    if n < 1:
        raise ValueError("need n >= 1 data blocks")
    return RepairTraffic(f"rs({n}+k)", failures, float(n))


def raidp_repair(superchunks_per_disk: int, failures: int) -> RepairTraffic:
    """RAIDP: replication-style except for the one shared superchunk.

    With ``S`` superchunks per disk, a double failure loses ``2S - 1``
    superchunk copies of which one (the shared superchunk, lost on both
    disks) must be rebuilt from the remaining ``S - 1`` superchunks plus
    the parity; everything else re-replicates at cost 1.
    """
    s = superchunks_per_disk
    if s < 1:
        raise ValueError("need at least one superchunk per disk")
    if failures <= 1:
        return RepairTraffic("raidp", failures, 1.0)
    # Per failed disk: S superchunks of lost data.  2S total; the shared
    # superchunk (size 1) costs S - 1 superchunk reads + 1 parity read;
    # the other 2S - 2 each cost 1.
    lost = 2 * s - 1  # distinct superchunk copies needing restoration
    volume = (2 * s - 2) * 1.0 + (s - 1 + 1)
    return RepairTraffic("raidp", failures, volume / lost)


def repair_traffic(
    scheme: str,
    failures: int = 1,
    n: int = 10,
    superchunks_per_disk: int = 15,
) -> RepairTraffic:
    """Dispatch helper used by the figures."""
    if scheme in ("replication", "triplication", "3-replicas"):
        return replication_repair(failures)
    if scheme in ("erasure", "rs", "n+2"):
        return erasure_repair(n, failures)
    if scheme == "raidp":
        return raidp_repair(superchunks_per_disk, failures)
    raise ValueError(f"unknown scheme {scheme!r}")
