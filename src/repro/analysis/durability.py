"""Durability and availability under failures (paper §2, "Failure Domains").

The paper's claim: RAIDP is *less available* than triplication or erasure
coding -- a rack failure can take both a superchunk's replicas' racks...
no: can take one replica *and* its Lstor offline together -- but *on par
in durability*, because a rack failure destroys nothing: data and local
erasure codes come back when power does.  This module quantifies both
sides:

- :func:`mttdl_*` -- classic analytic mean-time-to-data-loss estimates
  from disk AFR and rebuild times.
- :class:`FailureSimulator` -- a seeded Monte-Carlo over a racked
  cluster: permanent disk failures (destroy data) and transient rack
  outages (hide it), scoring data-loss and unavailability events per
  scheme.

Both treat a redundancy scheme abstractly by its loss predicate, so the
comparison covers 2-way/3-way replication, RAIDP with k Lstors, and n+2
erasure coding on the same event streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

HOURS_PER_YEAR = 24 * 365


# ----------------------------------------------------------------------
# Analytic MTTDL (standard Markov-chain approximations).
# ----------------------------------------------------------------------
def mttdl_replication(
    replicas: int, disk_mttf_hours: float, rebuild_hours: float
) -> float:
    """MTTDL of one replica group under independent exponential failures.

    The classic chain: all ``replicas`` copies must fail within each
    other's rebuild windows.  MTTDL ~= MTTF * (MTTF / rebuild)^(r-1) / r!.
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    mttdl = disk_mttf_hours
    for stage in range(1, replicas):
        mttdl *= disk_mttf_hours / (rebuild_hours * (stage + 1))
    return mttdl


def mttdl_raidp(
    disk_mttf_hours: float,
    rebuild_hours: float,
    lstors_per_disk: int = 1,
    lstor_mttf_hours: Optional[float] = None,
) -> float:
    """MTTDL of a RAIDP superchunk group (2 replicas + k local parities).

    Data dies only if both replicas fail *and* the parity chain cannot
    cover the loss: with k Lstors the group tolerates k+1 overlapping
    disk failures, so the dominant loss path is k+2 disk failures inside
    one rebuild window, slightly degraded by Lstor unavailability.
    """
    base = mttdl_replication(2 + lstors_per_disk, disk_mttf_hours, rebuild_hours)
    if lstor_mttf_hours is None:
        return base
    # An Lstor dead at the wrong moment removes one level of tolerance;
    # weight the two regimes by the Lstor's availability.
    lstor_unavail = min(rebuild_hours / lstor_mttf_hours, 1.0)
    degraded = mttdl_replication(2, disk_mttf_hours, rebuild_hours)
    return 1.0 / (lstor_unavail / degraded + (1 - lstor_unavail) / base)


def mttdl_erasure(
    n: int, k: int, disk_mttf_hours: float, rebuild_hours: float
) -> float:
    """MTTDL of one n+k stripe: k+1 failures within rebuild windows.

    Uses the same chain as replication but with the stripe width scaling
    the exposure: each stage has (n + k - stage) disks at risk.
    """
    mttdl = disk_mttf_hours / (n + k)
    for stage in range(1, k + 1):
        mttdl *= disk_mttf_hours / (rebuild_hours * (n + k - stage))
    # Normalize: mttdl above is for the first failure anywhere in the
    # stripe; multiply back to per-stripe time scale.
    return mttdl * (n + k)


# ----------------------------------------------------------------------
# Monte-Carlo over a racked cluster.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetSpec:
    """The simulated fleet and its failure statistics."""

    num_racks: int = 8
    disks_per_rack: int = 4
    #: Annualized failure rate of a disk (permanent, destroys contents).
    disk_afr: float = 0.04
    #: Annualized rate of whole-rack outages (transient, hides contents).
    rack_outage_rate: float = 1.0
    #: Hours to restore a rack outage.
    rack_outage_hours: float = 4.0
    #: Hours to re-replicate after a permanent disk loss.
    rebuild_hours: float = 12.0
    years: float = 5.0

    @property
    def num_disks(self) -> int:
        return self.num_racks * self.disks_per_rack


@dataclass
class SchemeOutcome:
    """Monte-Carlo tallies for one redundancy scheme."""

    name: str
    trials: int = 0
    data_loss_events: int = 0
    unavailability_events: int = 0

    @property
    def loss_probability(self) -> float:
        return self.data_loss_events / self.trials if self.trials else 0.0

    @property
    def unavailability_probability(self) -> float:
        return self.unavailability_events / self.trials if self.trials else 0.0


class FailureSimulator:
    """Seeded Monte-Carlo: disks fail permanently, racks blink out.

    One *trial* simulates ``spec.years`` of one datum's life under each
    scheme, with placements drawn once per trial:

    - ``rep2`` / ``rep3``: replicas on distinct racks.
    - ``raidp``: two replicas on distinct racks; each replica's Lstor
      lives in the *same rack* as its disk (the paper's §2 caveat).
    - ``ec``: an n+2 stripe spread over n+2 distinct racks.

    *Data loss*: the scheme's redundancy is destroyed faster than
    rebuilds replace it.  *Unavailability*: at some instant no intact,
    online copy (or decodable set) exists, though data survives.
    """

    def __init__(self, spec: Optional[FleetSpec] = None, seed: int = 0xD15C) -> None:
        self.spec = spec or FleetSpec()
        self._rng = random.Random(seed)

    # -- event stream ---------------------------------------------------
    def _poisson_times(self, rate_per_year: float, years: float) -> List[float]:
        """Event times (hours) of a Poisson process over the horizon."""
        times = []
        t = 0.0
        horizon = years * HOURS_PER_YEAR
        hourly = rate_per_year / HOURS_PER_YEAR
        if hourly <= 0:
            return times
        while True:
            t += self._rng.expovariate(hourly)
            if t >= horizon:
                return times
            times.append(t)

    def _trial_events(self) -> Tuple[List[Tuple[float, int]], List[Tuple[float, int]]]:
        """(disk permanent failures, rack outage starts) for one trial."""
        spec = self.spec
        disk_failures = []
        for disk in range(spec.num_disks):
            for t in self._poisson_times(spec.disk_afr, spec.years):
                disk_failures.append((t, disk))
        rack_outages = []
        for rack in range(spec.num_racks):
            for t in self._poisson_times(
                spec.rack_outage_rate / spec.num_racks, spec.years
            ):
                rack_outages.append((t, rack))
        return sorted(disk_failures), sorted(rack_outages)

    def _rack_of(self, disk: int) -> int:
        return disk // self.spec.disks_per_rack

    def _distinct_rack_disks(self, count: int) -> List[int]:
        racks = self._rng.sample(range(self.spec.num_racks), count)
        return [
            rack * self.spec.disks_per_rack
            + self._rng.randrange(self.spec.disks_per_rack)
            for rack in racks
        ]

    # -- per-scheme predicates -------------------------------------------
    def _judge(
        self,
        holders: Sequence[int],
        tolerance: int,
        needed_online: int,
        local_parity_racks: Sequence[int],
        disk_failures: List[Tuple[float, int]],
        rack_outages: List[Tuple[float, int]],
    ) -> Tuple[bool, bool]:
        """(data_lost, ever_unavailable) for one placement.

        ``tolerance``: how many of the holders may be *permanently* dead
        at once before data is gone (rebuilds restore one per window).
        ``needed_online``: how many holders must be simultaneously online
        for the datum to be readable.  ``local_parity_racks``: the rack
        of each holder's co-located parity device (RAIDP's Lstor),
        aligned with ``holders``; empty for schemes without one.

        The co-located parity carries the paper's §2 caveat: while its
        rack is dark the assist is disabled -- the tolerance it provides
        does not count at that instant, and a parity-path rebuild (one
        running while another holder is already dead) stalls for the
        duration of the overlap.  An outage never *destroys* the parity,
        so the caveat costs availability, not durability, unless a
        further failure lands inside the widened window.
        """
        spec = self.spec
        horizon = spec.years * HOURS_PER_YEAR
        holders = list(holders)
        parity_racks = list(local_parity_racks)
        outages = [
            (start, min(start + spec.rack_outage_hours, horizon), rack)
            for start, rack in rack_outages
        ]

        def rack_dark(rack: int, time: float) -> bool:
            return any(s <= time < e for s, e, r in outages if r == rack)

        def dark_overlap(rack: int, start: float, end: float) -> float:
            """Hours of [start, end) during which ``rack`` is dark."""
            total = 0.0
            for s, e, r in outages:
                if r == rack:
                    total += max(0.0, min(end, e) - max(start, s))
            return total

        # -- durability: permanent failures vs (possibly darkened) assist
        dead_until: Dict[int, float] = {}
        dead_intervals: Dict[int, List[Tuple[float, float]]] = {
            holder: [] for holder in holders
        }
        data_lost = False
        loss_time = horizon
        for time, disk in disk_failures:
            if disk not in holders:
                continue
            overlapping = [
                d for d, until in dead_until.items() if until > time and d != disk
            ]
            effective = tolerance
            if parity_racks:
                # Assists whose racks are dark right now cannot cover
                # this failure; plain replication tolerance remains.
                dark_assists = sum(
                    1 for rack in parity_racks if rack_dark(rack, time)
                )
                effective = max(len(holders) - 1, tolerance - dark_assists)
            if len(overlapping) + 1 > effective:
                data_lost = True
                loss_time = time
                break
            until = time + spec.rebuild_hours
            if parity_racks and overlapping:
                # Parity-path rebuild (another holder already dead):
                # stalls while the co-located Lstor's rack is dark.
                parity_rack = parity_racks[holders.index(disk)]
                until += dark_overlap(parity_rack, time, until)
            dead_until[disk] = until
            dead_intervals[disk].append((time, min(until, horizon)))

        # -- availability: sweep every offline interval, not just outage
        # starts.  A holder is offline while its rack is dark or while
        # its rebuild window runs -- including instants *between* rack
        # outages.  After a data loss the datum has no availability to
        # score, so the sweep stops at loss_time (this also keeps the
        # partially-populated post-break dead_until out of the verdict).
        offline: List[Tuple[float, float, int]] = []
        for index, holder in enumerate(holders):
            rack = self._rack_of(holder)
            for s, e, r in outages:
                if r == rack and s < loss_time:
                    offline.append((s, min(e, loss_time), index))
            for s, e in dead_intervals[holder]:
                if s < loss_time:
                    offline.append((s, min(e, loss_time), index))
        ever_unavailable = False
        if offline:
            boundaries = sorted({s for s, _e, _h in offline})
            max_offline = len(holders) - needed_online
            for point in boundaries:
                count = len(
                    {h for s, e, h in offline if s <= point < e}
                )
                if count > max_offline:
                    ever_unavailable = True
                    break
        return data_lost, ever_unavailable

    # -- the experiment ----------------------------------------------------
    def run(self, trials: int = 2000, ec_width: int = 6) -> Dict[str, SchemeOutcome]:
        """Simulate all four schemes over shared event streams."""
        if self.spec.num_racks < 4:
            raise ValueError(
                f"an n+2 stripe needs at least 4 racks (n >= 2); the fleet "
                f"has {self.spec.num_racks}"
            )
        # The stripe is clipped to the rack count; its strength must be
        # derived from the *actual* placement width, not the requested
        # one -- a clipped stripe has fewer data disks, not more parity.
        ec_placed = min(ec_width + 2, self.spec.num_racks)
        ec_data = ec_placed - 2
        outcomes = {
            name: SchemeOutcome(name=name)
            for name in ("rep2", "rep3", "raidp", f"ec({ec_width}+2)")
        }
        for _ in range(trials):
            disk_failures, rack_outages = self._trial_events()
            placements = {
                "rep2": (self._distinct_rack_disks(2), 1, 1, []),
                "rep3": (self._distinct_rack_disks(3), 2, 1, []),
                # RAIDP: 2 replicas; Lstors tolerate a second overlapping
                # loss, but live in the replicas' racks.
                "raidp": (
                    (holders := self._distinct_rack_disks(2)),
                    2,
                    1,
                    [self._rack_of(h) for h in holders],
                ),
                f"ec({ec_width}+2)": (
                    self._distinct_rack_disks(ec_placed),
                    2,
                    ec_data,
                    [],
                ),
            }
            for name, (holders, tolerance, needed, parity_racks) in placements.items():
                lost, unavailable = self._judge(
                    holders, tolerance, needed, parity_racks,
                    disk_failures, rack_outages,
                )
                outcome = outcomes[name]
                outcome.trials += 1
                outcome.data_loss_events += int(lost)
                outcome.unavailability_events += int(unavailable)
        return outcomes


def durability_summary(
    disk_mttf_hours: float = 1_000_000.0, rebuild_hours: float = 12.0
) -> Dict[str, float]:
    """Analytic MTTDL (years) of the §2 contenders."""
    return {
        "rep2": mttdl_replication(2, disk_mttf_hours, rebuild_hours) / HOURS_PER_YEAR,
        "rep3": mttdl_replication(3, disk_mttf_hours, rebuild_hours) / HOURS_PER_YEAR,
        "raidp": mttdl_raidp(disk_mttf_hours, rebuild_hours) / HOURS_PER_YEAR,
        "raidp(2 lstors)": mttdl_raidp(
            disk_mttf_hours, rebuild_hours, lstors_per_disk=2
        )
        / HOURS_PER_YEAR,
        "ec(10+2)": mttdl_erasure(10, 2, disk_mttf_hours, rebuild_hours)
        / HOURS_PER_YEAR,
    }
