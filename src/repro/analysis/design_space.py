"""Fig. 1: the storage-efficiency vs repair-efficiency design space.

Storage efficiency is useful bytes over raw bytes.  Repair efficiency is
the reciprocal of normalized repair traffic (1.0 = the replication
ideal).  RAIDP lands between triplication and erasure coding on storage,
and at (single failure) or near (double failure) replication on repair --
the "middle point" the paper's introduction claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.repair_traffic import repair_traffic


@dataclass(frozen=True)
class DesignPoint:
    """One scheme's coordinates in the Fig. 1 plane."""

    scheme: str
    storage_efficiency: float  # useful / raw capacity
    repair_efficiency_single: float  # 1 / normalized repair traffic
    repair_efficiency_double: float

    def row(self) -> str:
        return (
            f"{self.scheme:<14} storage={self.storage_efficiency:.3f} "
            f"repair(1)={self.repair_efficiency_single:.3f} "
            f"repair(2)={self.repair_efficiency_double:.3f}"
        )


def storage_efficiency(scheme: str, n: int = 10, superchunks_per_disk: int = 15) -> float:
    if scheme == "triplication":
        return 1.0 / 3.0
    if scheme == "erasure":
        return n / (n + 2.0)
    if scheme == "raidp":
        # Two replicas plus one superchunk-sized Lstor per disk of S
        # superchunks: raw = 2S + 1 superchunk-equivalents per S useful.
        s = superchunks_per_disk
        return s / (2.0 * s + 1.0)
    raise ValueError(f"unknown scheme {scheme!r}")


def design_space_points(
    n: int = 10, superchunks_per_disk: int = 15
) -> List[DesignPoint]:
    """Compute the three schemes' Fig. 1 coordinates."""
    points = []
    for scheme, traffic_name in (
        ("triplication", "replication"),
        ("erasure", "erasure"),
        ("raidp", "raidp"),
    ):
        single = repair_traffic(
            traffic_name, failures=1, n=n, superchunks_per_disk=superchunks_per_disk
        )
        double = repair_traffic(
            traffic_name, failures=2, n=n, superchunks_per_disk=superchunks_per_disk
        )
        points.append(
            DesignPoint(
                scheme=scheme,
                storage_efficiency=storage_efficiency(
                    scheme, n=n, superchunks_per_disk=superchunks_per_disk
                ),
                repair_efficiency_single=1.0 / single.volume_per_lost_byte,
                repair_efficiency_double=1.0 / double.volume_per_lost_byte,
            )
        )
    return points


def verify_middle_point(points: List[DesignPoint]) -> bool:
    """The paper's Fig. 1 claim: RAIDP sits between the two extremes."""
    by_name = {p.scheme: p for p in points}
    trip, ec, raidp = by_name["triplication"], by_name["erasure"], by_name["raidp"]
    storage_between = trip.storage_efficiency < raidp.storage_efficiency < ec.storage_efficiency
    repair_single_at_ideal = raidp.repair_efficiency_single == trip.repair_efficiency_single
    repair_double_between = (
        ec.repair_efficiency_double
        < raidp.repair_efficiency_double
        <= trip.repair_efficiency_double
    )
    return storage_between and repair_single_at_ideal and repair_double_between
