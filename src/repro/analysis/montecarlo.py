"""Long-horizon Monte-Carlo fleet durability engine (paper §2 at scale).

:mod:`repro.analysis.durability` judges one datum over a toy fleet with
per-event Python loops; this module is its grown-up sibling: a fleet of
thousands of disks, years of simulated time, and the failure physics the
warehouse-scale durability literature sweeps -- Weibull disk lifetimes,
latent sector errors gated by the scrub cadence, rack-correlated outage
and burst events, and lazy recovery against a bounded repair-bandwidth
pool.  All five §2 contenders (2-way/3-way replication, RAIDP with 1 and
2 Lstors, and n+2 erasure coding) are scored on *shared* event streams,
so scheme deltas are paired comparisons, not independent noise.

Epoch-batch architecture
------------------------
A naive discrete-event simulation spends its time on non-events: disks
*not* failing.  The engine instead works outward from the observation
that everything durability-relevant happens at a sparse set of instants:

1. **Bulk renewal sampling** (numpy, per trial): disk lifetimes are
   drawn for the whole fleet at once; each failing disk is replaced and
   re-drawn in vectorized rounds until the horizon is clear.  10k disks
   x 10 years at 2% AFR is ~2000 failure events -- the arrays stay tiny.
2. **Repair scheduling** (one ordered pass): detection delay, lazy
   batching, and the ``concurrent_rebuilds`` slot pool turn failure
   times into repair-completion times.
3. **Sparse judgment**: data loss is only possible at a failure instant,
   so each scheme is judged exactly there, against the set of
   concurrently-dead disks.  Placement is *not* tracked per group;
   instead the engine scores the expected number of lost groups
   combinatorially (uniform distinct-rack placement), which is what a
   per-group simulation converges to, without the per-group memory.
4. **Outage segments**: transient rack outages are merged into maximal
   segments of constant dark-rack sets; availability is integrated per
   segment, again in expectation over placements.

The expectation-based judgment makes per-trial results smooth (a trial
contributes fractional expected losses rather than a 0/1 indicator), so
nines-of-durability estimates converge with far fewer trials than
indicator counting needs.

Validation: in the independent-exponential, no-LSE, no-burst regime the
engine's loss rate has a closed form (:func:`analytic_mc_mttdl`) that
differs from the classic :func:`~repro.analysis.durability.mttdl_replication`
ladder only by a documented window-overlap factor; the property test in
``tests/test_montecarlo.py`` pins both.

Determinism: trial ``i`` draws from ``SeedSequence(seed, spawn_key=(i,))``
-- chunked runs (trials 0..4 then 5..9) therefore sample identical
streams as a monolithic run, which is what lets the experiment layer fan
trials out across workers and merge without result drift.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.durability import HOURS_PER_YEAR
from repro.errors import ReproError
from repro.faults import (
    CorrelatedFailureModel,
    DiskLifetimeModel,
    LatentErrorModel,
    RepairModel,
)
from repro.obs.tracer import active_tracer

__all__ = [
    "Fleet",
    "Scheme",
    "SchemeReport",
    "DurabilityEngine",
    "analytic_mc_mttdl",
    "default_schemes",
]


class DurabilityModelError(ReproError):
    """A durability-engine configuration is unsatisfiable."""


# ----------------------------------------------------------------------
# Fleet geometry.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fleet:
    """The simulated disk population and the data it carries.

    ``groups`` is the number of redundancy groups (replica sets /
    stripes) whose durability is scored; it sets the scale of the
    expected-loss accounting and the per-group block size used by the
    latent-error model (a group occupies ``1 / groups_per_disk`` of each
    member disk).
    """

    num_racks: int = 40
    disks_per_rack: int = 250
    disk_capacity_gb: float = 4000.0
    groups: int = 1_000_000

    def __post_init__(self) -> None:
        if self.num_racks < 2:
            raise DurabilityModelError("need at least two racks")
        if self.disks_per_rack < 1:
            raise DurabilityModelError("need at least one disk per rack")
        if self.disk_capacity_gb <= 0:
            raise DurabilityModelError("disk capacity must be positive")
        if self.groups < 1:
            raise DurabilityModelError("need at least one group")

    @property
    def num_disks(self) -> int:
        return self.num_racks * self.disks_per_rack

    def rack_of(self, disk: int) -> int:
        return disk // self.disks_per_rack

    def groups_per_disk(self, width: int) -> float:
        """Expected groups with a member on a given disk."""
        return self.groups * width / self.num_disks


# ----------------------------------------------------------------------
# Redundancy schemes.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scheme:
    """One redundancy scheme, abstracted to what the judge needs.

    ``width`` members are placed on ``width`` distinct racks, one
    uniform disk per rack.  ``tolerance`` concurrent permanent losses
    are survivable; ``needed_online`` members must be simultaneously
    online for a read to succeed.  RAIDP carries extra structure: each
    member disk has ``lstors`` co-located parity devices whose chains
    span ``chain_length`` superchunks, so surviving a both-replicas-dead
    window requires a chain decode from ``chain_length - 1`` other
    disks' replicas (tolerating ``lstors - 1`` additional source
    failures beyond the first chain).
    """

    name: str
    kind: str  # "replication" | "raidp" | "erasure"
    width: int
    tolerance: int
    needed_online: int
    lstors: int = 0
    chain_length: int = 128
    #: Disks' worth of data read to rebuild one failed disk.
    read_amplification: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("replication", "raidp", "erasure"):
            raise DurabilityModelError(f"unknown scheme kind {self.kind!r}")
        if self.width < 1 or self.needed_online < 1:
            raise DurabilityModelError("scheme width/needed_online must be >= 1")
        if self.needed_online > self.width:
            raise DurabilityModelError("needed_online cannot exceed width")
        if self.kind == "raidp" and self.lstors < 1:
            raise DurabilityModelError("raidp needs at least one Lstor")

    @property
    def repair_traffic_gb_factor(self) -> float:
        """Disks' worth of bytes moved (read + write) per disk rebuilt."""
        return self.read_amplification + 1.0

    @staticmethod
    def replication(copies: int, name: Optional[str] = None) -> "Scheme":
        if copies < 2:
            raise DurabilityModelError("replication needs >= 2 copies")
        return Scheme(
            name=name or f"rep{copies}",
            kind="replication",
            width=copies,
            tolerance=copies - 1,
            needed_online=1,
        )

    @staticmethod
    def raidp(
        lstors: int = 1, chain_length: int = 128, name: Optional[str] = None
    ) -> "Scheme":
        if name is None:
            name = "raidp" if lstors == 1 else f"raidp({lstors} lstors)"
        return Scheme(
            name=name,
            kind="raidp",
            width=2,
            # Both replicas may die as long as a parity chain still
            # decodes; k Lstors tolerate k-1 further source losses.
            tolerance=1 + lstors,
            needed_online=1,
            lstors=lstors,
            chain_length=chain_length,
        )

    @staticmethod
    def erasure(n: int, k: int = 2, name: Optional[str] = None) -> "Scheme":
        if n < 2 or k < 1:
            raise DurabilityModelError("erasure needs n >= 2, k >= 1")
        return Scheme(
            name=name or f"ec({n}+{k})",
            kind="erasure",
            width=n + k,
            tolerance=k,
            needed_online=n,
            read_amplification=float(n),
        )


def default_schemes(ec_width: int = 6) -> Tuple[Scheme, ...]:
    """The five §2 contenders on one event stream."""
    return (
        Scheme.replication(2),
        Scheme.replication(3),
        Scheme.raidp(lstors=1),
        Scheme.raidp(lstors=2),
        Scheme.erasure(ec_width, 2),
    )


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------
@dataclass
class SchemeReport:
    """Accumulated Monte-Carlo tallies for one scheme.

    All "expected_*" fields are sums of per-event expectations over the
    placement distribution (see module docstring), not indicator counts.
    """

    name: str
    trials: int = 0
    #: Group-years of exposure scored (groups x years x trials).
    group_years: float = 0.0
    #: Expected groups irrecoverably lost over all trials.
    expected_groups_lost: float = 0.0
    #: Bytes moved by rebuilds, in GB, over all trials.
    repair_gb: float = 0.0
    #: Simulated wall time covered, in days, over all trials.
    sim_days: float = 0.0
    #: Expected group-hours during which a group was unreadable.
    unavailable_group_hours: float = 0.0
    #: Expected group-hours spent below full redundancy.
    at_risk_group_hours: float = 0.0
    #: Mean groups below full redundancy per timeline bucket (averaged
    #: over trials; bucket 0 is the start of the horizon).
    at_risk_timeline: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=float)
    )
    #: Highest per-bucket mean groups-at-risk seen in any single trial.
    peak_groups_at_risk: float = 0.0

    @property
    def loss_rate_per_group_year(self) -> float:
        return self.expected_groups_lost / self.group_years if self.group_years else 0.0

    @property
    def durability_nines(self) -> float:
        """Nines of per-group annual durability, capped at 18 (i.e. a
        measured-zero loss rate reports as 18 nines, not infinity)."""
        rate = self.loss_rate_per_group_year
        return -math.log10(max(rate, 1e-18))

    @property
    def mttdl_years(self) -> float:
        """Per-group mean time to data loss implied by the loss rate."""
        rate = self.loss_rate_per_group_year
        return 1.0 / rate if rate > 0 else math.inf

    @property
    def repair_gb_per_day(self) -> float:
        return self.repair_gb / self.sim_days if self.sim_days else 0.0

    @property
    def unavailability(self) -> float:
        """Expected fraction of group-time spent unreadable."""
        hours = self.group_years * HOURS_PER_YEAR
        return self.unavailable_group_hours / hours if hours else 0.0

    def merge(self, other: "SchemeReport") -> "SchemeReport":
        if other.name != self.name:
            raise DurabilityModelError(
                f"cannot merge {other.name!r} into {self.name!r}"
            )
        timeline = self.at_risk_timeline
        if timeline.size == 0:
            timeline = other.at_risk_timeline.copy()
        elif other.at_risk_timeline.size:
            if other.at_risk_timeline.size != timeline.size:
                raise DurabilityModelError("timeline bucket counts differ")
            timeline = timeline + other.at_risk_timeline
        return SchemeReport(
            name=self.name,
            trials=self.trials + other.trials,
            group_years=self.group_years + other.group_years,
            expected_groups_lost=self.expected_groups_lost
            + other.expected_groups_lost,
            repair_gb=self.repair_gb + other.repair_gb,
            sim_days=self.sim_days + other.sim_days,
            unavailable_group_hours=self.unavailable_group_hours
            + other.unavailable_group_hours,
            at_risk_group_hours=self.at_risk_group_hours
            + other.at_risk_group_hours,
            at_risk_timeline=timeline,
            peak_groups_at_risk=max(
                self.peak_groups_at_risk, other.peak_groups_at_risk
            ),
        )

    def mean_timeline(self) -> np.ndarray:
        """Per-bucket mean groups at risk, normalized by trial count."""
        if not self.trials or self.at_risk_timeline.size == 0:
            return self.at_risk_timeline
        return self.at_risk_timeline / self.trials


# ----------------------------------------------------------------------
# Shared probability helpers (also used by the analytic cross-check).
# ----------------------------------------------------------------------
def _binom_tail(q: float, draws: int, k: int) -> float:
    """P(Binomial(draws, q) >= k), exact for the tiny k we use."""
    if k <= 0:
        return 1.0
    if draws < k or q <= 0.0:
        return 0.0
    if q >= 1.0:
        return 1.0
    head = math.fsum(
        math.comb(draws, j) * q**j * (1.0 - q) ** (draws - j) for j in range(k)
    )
    return max(0.0, 1.0 - head)


def _chain_blocked(q: float, chain_length: int, lstors: int) -> float:
    """P(a RAIDP parity-chain decode fails) given per-source badness q.

    The chain reads ``chain_length - 1`` sibling superchunks from their
    surviving replicas; with ``k`` Lstors the decode survives ``k - 1``
    bad sources (the extra chains cover them), so it is blocked when at
    least ``k`` sources are bad.
    """
    return _binom_tail(q, max(chain_length - 1, 0), lstors)


def analytic_mc_mttdl(
    scheme: Scheme,
    fleet: Fleet,
    lifetime: DiskLifetimeModel,
    repair: RepairModel,
) -> float:
    """Closed-form per-group MTTDL (years) under the engine's semantics.

    Valid in the validation regime only: exponential lifetimes
    (``weibull_shape == 1``), no latent errors, no bursts, an uncontended
    repair pool, and eager recovery.  Derivation: a group dies when its
    ``tolerance + 1``-th member fails while ``tolerance`` others sit in
    their repair windows of length T.  The renewal process alternates
    MTTF of life with T of repair, so a disk fails at rate
    ``1 / (MTTF + T)`` and is mid-repair with stationary probability
    ``T / (MTTF + T)`` -- the exact quantities the engine's event
    streams realize, rather than the first-order ``lambda * T``.  Note
    the classic :func:`~repro.analysis.durability.mttdl_replication`
    ladder assumes *serialized* rebuild stages, which halves the
    tolerance-2 MTTDL relative to this overlapping-window model -- the
    property test pins that factor rather than pretending the two
    models agree exactly.  For RAIDP the chain-blocked term is convex
    in the fleet's dead fraction, so a point estimate at the mean dead
    count would understate the loss rate (Jensen); the RAIDP branch
    therefore takes the expectation over the binomial dead-count
    distribution explicitly.
    """
    window = repair.detection_hours + repair.disk_rebuild_hours
    cycle = lifetime.mttf_hours + window
    lam = 1.0 / cycle  # renewal failure rate per disk
    p_dead = window / cycle  # stationary P(a specific disk is mid-repair)
    if scheme.kind == "replication":
        others = scheme.width - 1
        # Loss at a member failure when `others` are all already dead.
        rate = scheme.width * lam * p_dead**others
    elif scheme.kind == "erasure":
        # tolerance others (of width-1) already dead at a member failure.
        rate = (
            scheme.width
            * lam
            * math.comb(scheme.width - 1, scheme.tolerance)
            * p_dead**scheme.tolerance
        )
    else:  # raidp
        # At a failure event the engine sees K other disks dead
        # (K ~ Binomial(num_disks - 1, p_dead) in steady state), prices
        # the partner as dead with probability ~K / (num_disks - 1),
        # and blocks each chain decode with the same K-dependent rate.
        # The product K * side(K)^2 is convex in K, so expectation over
        # K is taken term by term.
        others = fleet.num_disks - 1
        mean_term = math.fsum(
            math.comb(others, k)
            * p_dead**k
            * (1.0 - p_dead) ** (others - k)
            * (k / others)
            * _chain_blocked(k / others, scheme.chain_length, scheme.lstors) ** 2
            for k in range(others + 1)
        )
        rate = 2.0 * lam * mean_term
    if rate <= 0.0:
        return math.inf
    return 1.0 / rate / HOURS_PER_YEAR


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------
class DurabilityEngine:
    """Seeded long-horizon fleet durability Monte-Carlo.

    One *trial* simulates ``years`` of the whole fleet: permanent disk
    failures (renewal-sampled Weibull lifetimes plus correlated burst
    kills), a repair pipeline with detection lag, lazy batching, and
    bounded concurrency, transient rack outages, and latent-sector-error
    exposure on every rebuild read.  All schemes are judged on the same
    streams.
    """

    def __init__(
        self,
        fleet: Optional[Fleet] = None,
        schemes: Optional[Sequence[Scheme]] = None,
        lifetime: Optional[DiskLifetimeModel] = None,
        latent: Optional[LatentErrorModel] = None,
        correlated: Optional[CorrelatedFailureModel] = None,
        repair: Optional[RepairModel] = None,
        seed: int = 0xD15C,
        timeline_buckets: int = 120,
    ) -> None:
        self.fleet = fleet or Fleet()
        self.schemes = tuple(schemes) if schemes is not None else default_schemes()
        self.lifetime = lifetime or DiskLifetimeModel()
        self.latent = latent or LatentErrorModel()
        self.correlated = correlated or CorrelatedFailureModel()
        self.repair = repair or RepairModel()
        self.seed = seed
        self.timeline_buckets = timeline_buckets
        if timeline_buckets < 1:
            raise DurabilityModelError("need at least one timeline bucket")
        names = [scheme.name for scheme in self.schemes]
        if len(set(names)) != len(names):
            raise DurabilityModelError(f"duplicate scheme names in {names}")
        for scheme in self.schemes:
            if scheme.width > self.fleet.num_racks:
                raise DurabilityModelError(
                    f"scheme {scheme.name!r} needs {scheme.width} racks but "
                    f"the fleet has {self.fleet.num_racks}; shrink the "
                    "stripe or grow the fleet"
                )

    # -- seeding --------------------------------------------------------
    def _trial_rng(self, trial: int) -> np.random.Generator:
        # Per-trial spawn keys: trial i's stream is a pure function of
        # (seed, i), so chunked runs reproduce monolithic runs.
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(trial,))
        )

    # -- event sampling -------------------------------------------------
    def _sample_failures(
        self, rng: np.random.Generator, horizon: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, disks, from_burst) of permanent failures, time-sorted.

        Renewal rounds: every disk draws a lifetime; failing disks are
        replaced (after an approximate detection+rebuild turnaround) and
        re-drawn, vectorized, until no draw lands inside the horizon.
        Burst kills are super-imposed afterwards; they do not reset the
        renewal stream (a second-order effect at realistic burst rates).
        """
        fleet = self.fleet
        turnaround = self.repair.detection_hours + self.repair.disk_rebuild_hours
        times: List[np.ndarray] = []
        disks: List[np.ndarray] = []
        active = np.arange(fleet.num_disks)
        clock = np.zeros(fleet.num_disks)
        while active.size:
            lifetimes = self.lifetime.sample_lifetimes(rng, active.size)
            fail_at = clock[active] + lifetimes
            hit = fail_at < horizon
            active = active[hit]
            fail_at = fail_at[hit]
            if not active.size:
                break
            times.append(fail_at)
            disks.append(active.copy())
            clock[active] = fail_at + turnaround
        n_renewal = sum(chunk.size for chunk in times)
        # Correlated bursts: each strikes one rack, killing every disk
        # in it independently (and the co-located Lstors with them).
        model = self.correlated
        if model.burst_rate_per_rack_year > 0:
            per_rack = model.burst_rate_per_rack_year * horizon / HOURS_PER_YEAR
            counts = rng.poisson(per_rack, fleet.num_racks)
            for rack in range(fleet.num_racks):
                for _ in range(int(counts[rack])):
                    when = rng.uniform(0.0, horizon)
                    killed = np.nonzero(
                        rng.random(fleet.disks_per_rack)
                        < model.burst_kill_probability
                    )[0]
                    if killed.size:
                        times.append(np.full(killed.size, when))
                        disks.append(rack * fleet.disks_per_rack + killed)
        if not times:
            empty = np.zeros(0)
            return empty, empty.astype(int), empty.astype(bool)
        all_times = np.concatenate(times)
        all_disks = np.concatenate(disks)
        from_burst = np.zeros(all_times.size, dtype=bool)
        from_burst[n_renewal:] = True
        order = np.lexsort((all_disks, all_times))
        return all_times[order], all_disks[order], from_burst[order]

    def _sample_outages(
        self, rng: np.random.Generator, horizon: float
    ) -> List[Tuple[float, float, int]]:
        """(start, end, rack) transient outages, unsorted is fine."""
        model = self.correlated
        if model.rack_outage_rate_per_year <= 0:
            return []
        per_rack = model.rack_outage_rate_per_year * horizon / HOURS_PER_YEAR
        counts = rng.poisson(per_rack, self.fleet.num_racks)
        outages: List[Tuple[float, float, int]] = []
        for rack in range(self.fleet.num_racks):
            for _ in range(int(counts[rack])):
                start = rng.uniform(0.0, horizon)
                end = min(start + model.rack_outage_hours, horizon)
                outages.append((start, end, rack))
        return outages

    # -- repair scheduling ----------------------------------------------
    def _schedule_repairs(self, times: np.ndarray) -> np.ndarray:
        """Repair-completion time per failure event.

        Each failure is detected after ``detection_hours``; lazy
        recovery then holds it until ``lazy_threshold`` disks are
        pending or the oldest has waited ``lazy_max_wait_hours``.  A
        released rebuild takes the next free slot of the
        ``concurrent_rebuilds`` pool.
        """
        repair = self.repair
        done = np.empty(times.size)
        slots = [0.0] * repair.concurrent_rebuilds
        heapq.heapify(slots)
        pending: List[Tuple[float, float, int]] = []  # (deadline, detect, idx)

        def release(batch: List[Tuple[float, float, int]], trigger: float) -> None:
            for _deadline, detect, idx in batch:
                begin = max(trigger, detect, heapq.heappop(slots))
                finish = begin + repair.disk_rebuild_hours
                heapq.heappush(slots, finish)
                done[idx] = finish

        for idx in range(times.size):
            detect = float(times[idx]) + repair.detection_hours
            # Deadline-expired stragglers release before this arrival.
            while pending and pending[0][0] <= detect:
                entry = pending.pop(0)
                release([entry], entry[0])
            pending.append((detect + repair.lazy_max_wait_hours, detect, idx))
            if len(pending) >= repair.lazy_threshold:
                release(pending, detect)
                pending = []
        for entry in pending:
            release([entry], entry[0])
        return done

    # -- per-event judgment ---------------------------------------------
    def _judge_event(
        self,
        scheme: Scheme,
        rack_of_failed: int,
        dead_others: int,
        dead_outside_rack: int,
        dead_pairs_distinct_racks: float,
        remaining_hours_outside_rack: float,
        failed_lstor_destroyed: bool,
        any_dead_lstor_destroyed: bool,
        p_block_lse: float,
    ) -> Tuple[float, float]:
        """(P(group lost), expected unavailable group-hours) for one
        group containing the disk that just failed.

        ``dead_outside_rack`` / ``dead_pairs_distinct_racks`` summarize
        the concurrently-dead set D excluding the failed disk's rack
        (group members never share it); ``remaining_hours_outside_rack``
        is the summed remaining repair time of those disks, which prices
        the expected both-copies-dead overlap window.
        """
        fleet = self.fleet
        other_racks = fleet.num_racks - 1
        per_disk = 1.0 / (other_racks * fleet.disks_per_rack)
        p_partner = dead_outside_rack * per_disk  # P(one specific member dead)
        if scheme.kind == "replication":
            if scheme.width == 2:
                # Partner dead, or the surviving copy's rebuild read hits
                # a latent error the scrubber has not cleaned yet.
                return p_partner + (1.0 - p_partner) * p_block_lse, 0.0
            # rep3+: all other members already dead, or all-but-one dead
            # and the last source read hits a latent error.
            others = scheme.width - 1
            if others == 2:
                # The two other members land on 2 uniform distinct racks
                # among `other_racks`, one uniform disk each; sum over
                # distinct-rack dead pairs.
                p_all = (
                    dead_pairs_distinct_racks
                    / (math.comb(other_racks, 2) * fleet.disks_per_rack**2)
                    if other_racks > 1
                    else 0.0
                )
                p_but_one = 2.0 * p_partner * (1.0 - p_partner)
            else:
                p_all = p_partner**others
                p_but_one = others * p_partner ** (others - 1) * (1.0 - p_partner)
            return p_all + p_but_one * p_block_lse, 0.0
        if scheme.kind == "erasure":
            members = scheme.width - 1  # other stripe members
            if other_racks < members:
                raise DurabilityModelError("stripe wider than the fleet")
            # P(two specific dead disks are both stripe members): the
            # stripe occupies `members` of the other racks.
            p_rack_pair = (
                math.comb(other_racks - 2, members - 2)
                / math.comb(other_racks, members)
                if members >= 2
                else 0.0
            )
            p_two = (
                dead_pairs_distinct_racks * p_rack_pair / fleet.disks_per_rack**2
            )
            p_rack_single = math.comb(other_racks - 1, members - 1) / math.comb(
                other_racks, members
            )
            p_one = dead_outside_rack * p_rack_single / fleet.disks_per_rack
            # At exactly `tolerance` erasures the decode needs all n
            # remaining sources clean; any latent error finishes it.
            p_lse_decode = 1.0 - (1.0 - p_block_lse) ** scheme.needed_online
            return p_two + p_one * p_lse_decode, 0.0
        # raidp: partner dead AND both parity-chain decodes blocked.
        # Chain sources are replicas scattered fleet-wide; a source is
        # bad if its disk is dead or its read hits a latent error.
        q = dead_others / max(fleet.num_disks - 1, 1)
        q = q + (1.0 - q) * p_block_lse
        side_self = (
            1.0
            if failed_lstor_destroyed
            else _chain_blocked(q, scheme.chain_length, scheme.lstors)
        )
        side_partner = (
            1.0
            if any_dead_lstor_destroyed
            else _chain_blocked(q, scheme.chain_length, scheme.lstors)
        )
        p_assist_fail = side_self * side_partner
        p_loss = p_partner * p_assist_fail
        # Assist-survivable both-dead windows are *unavailable*: parity
        # decode restores durability, not serving.  Expected overlap
        # hours = sum over dead candidates of their remaining repair
        # time, weighted by the placement probability.
        unavailable_hours = (
            remaining_hours_outside_rack * per_disk * (1.0 - p_assist_fail)
        )
        return p_loss, unavailable_hours

    # -- availability over outage segments --------------------------------
    def _outage_segments(
        self, outages: List[Tuple[float, float, int]]
    ) -> List[Tuple[float, float, Tuple[int, ...]]]:
        """Maximal (start, end, dark_racks) segments with >=1 dark rack."""
        if not outages:
            return []
        boundaries: List[Tuple[float, int, int]] = []
        for start, end, rack in outages:
            boundaries.append((start, 1, rack))
            boundaries.append((end, -1, rack))
        boundaries.sort()
        segments: List[Tuple[float, float, Tuple[int, ...]]] = []
        dark: Dict[int, int] = {}
        prev = boundaries[0][0]
        for when, delta, rack in boundaries:
            if dark and when > prev:
                segments.append((prev, when, tuple(sorted(dark))))
            prev = when
            count = dark.get(rack, 0) + delta
            if count <= 0:
                dark.pop(rack, None)
            else:
                dark[rack] = count
        return segments

    def _segment_unreadable(
        self, scheme: Scheme, dark_count: int, q_dead: float
    ) -> float:
        """P(a group is unreadable) while ``dark_count`` racks are dark.

        Racks are exchangeable under uniform placement: the number of
        the group's racks that are dark is hypergeometric; members in
        lit racks are independently mid-repair with probability
        ``q_dead``.  Unreadable when fewer than ``needed_online``
        members remain online.
        """
        fleet = self.fleet
        w = scheme.width
        need_offline = w - scheme.needed_online + 1
        total = math.comb(fleet.num_racks, w)
        p_unreadable = 0.0
        for j in range(min(dark_count, w) + 1):
            ways = math.comb(dark_count, j) * math.comb(
                fleet.num_racks - dark_count, w - j
            )
            if ways == 0:
                continue
            p_j = ways / total
            still_needed = need_offline - j
            p_unreadable += p_j * _binom_tail(q_dead, w - j, still_needed)
        return p_unreadable

    # -- one trial --------------------------------------------------------
    def _simulate_trial(
        self, trial: int, years: float
    ) -> Dict[str, Dict[str, float]]:
        fleet = self.fleet
        horizon = years * HOURS_PER_YEAR
        rng = self._trial_rng(trial)
        times, disks, from_burst = self._sample_failures(rng, horizon)
        done = self._schedule_repairs(times)
        outages = self._sample_outages(rng, horizon)
        trace = active_tracer()

        p_block: Dict[str, float] = {}
        for scheme in self.schemes:
            groups_per_disk = fleet.groups_per_disk(scheme.width)
            p_block[scheme.name] = self.latent.block_read_error_probability(
                1.0 / max(groups_per_disk, 1.0)
            )

        tallies: Dict[str, Dict[str, float]] = {
            scheme.name: {
                "expected_groups_lost": 0.0,
                "unavailable_group_hours": 0.0,
                "at_risk_group_hours": 0.0,
                "repair_gb": 0.0,
                "peak_groups_at_risk": 0.0,
            }
            for scheme in self.schemes
        }

        # --- sparse data-loss judgment over failure events ---
        active: Dict[int, Tuple[float, bool]] = {}  # disk -> (done, burst)
        expiry: List[Tuple[float, int]] = []
        bucket_hours = horizon / self.timeline_buckets
        dead_disk_timeline = np.zeros(self.timeline_buckets)
        for i in range(times.size):
            t = float(times[i])
            disk = int(disks[i])
            burst = bool(from_burst[i])
            while expiry and expiry[0][0] <= t:
                _when, gone = heapq.heappop(expiry)
                entry = active.get(gone)
                if entry is not None and entry[0] <= t:
                    del active[gone]
            rack = fleet.rack_of(disk)
            dead_others = 0
            dead_outside = 0
            remaining_outside = 0.0
            per_rack: Dict[int, int] = {}
            any_dead_lstor_destroyed = False
            for other, (other_done, other_burst) in active.items():
                if other == disk:
                    continue
                dead_others += 1
                other_rack = fleet.rack_of(other)
                if other_rack != rack:
                    dead_outside += 1
                    remaining_outside += other_done - t
                    per_rack[other_rack] = per_rack.get(other_rack, 0) + 1
                    if other_burst:
                        any_dead_lstor_destroyed = True
            pairs = (
                dead_outside * dead_outside
                - math.fsum(float(c * c) for c in per_rack.values())
            ) / 2.0
            for scheme in self.schemes:
                groups_per_disk = fleet.groups_per_disk(scheme.width)
                p_loss, unavail_hours = self._judge_event(
                    scheme,
                    rack,
                    dead_others,
                    dead_outside,
                    pairs,
                    remaining_outside,
                    burst,
                    any_dead_lstor_destroyed,
                    p_block[scheme.name],
                )
                tally = tallies[scheme.name]
                tally["expected_groups_lost"] += groups_per_disk * p_loss
                tally["unavailable_group_hours"] += groups_per_disk * unavail_hours
                tally["repair_gb"] += (
                    fleet.disk_capacity_gb * scheme.repair_traffic_gb_factor
                )
                if trace.enabled and p_loss > 0.0:
                    trace.instant(
                        "durability",
                        "loss_risk",
                        t,
                        scheme=scheme.name,
                        expected_groups=groups_per_disk * p_loss,
                        dead=dead_others + 1,
                    )
            finish = float(done[i])
            active[disk] = (finish, burst)
            heapq.heappush(expiry, (finish, disk))
            if trace.enabled:
                trace.count("fleet", "dead_disks", t, float(len(active)))
            # Blocks-at-risk timeline: the dead interval [t, finish).
            lo = t / bucket_hours
            hi = min(finish, horizon) / bucket_hours
            first = int(lo)
            last = min(int(math.ceil(hi)), self.timeline_buckets)
            for b in range(first, last):
                overlap = min(hi, b + 1.0) - max(lo, float(b))
                if overlap > 0:
                    dead_disk_timeline[b] += overlap

        total_dead_hours = math.fsum(
            float(min(done[i], horizon) - times[i]) for i in range(times.size)
        )
        for scheme in self.schemes:
            groups_per_disk = fleet.groups_per_disk(scheme.width)
            tally = tallies[scheme.name]
            tally["at_risk_group_hours"] = groups_per_disk * total_dead_hours
            scheme_timeline = dead_disk_timeline * groups_per_disk
            tally["peak_groups_at_risk"] = (
                float(scheme_timeline.max()) if scheme_timeline.size else 0.0
            )
            tally["timeline"] = scheme_timeline  # type: ignore[assignment]

        # --- availability over merged outage segments ---
        for start, end, dark in self._outage_segments(outages):
            mid = (start + end) / 2.0
            dead_mask = (times <= mid) & (done > mid)
            dark_set = set(dark)
            lit_dead = 0
            for disk in disks[dead_mask]:
                if fleet.rack_of(int(disk)) not in dark_set:
                    lit_dead += 1
            lit_disks = (fleet.num_racks - len(dark)) * fleet.disks_per_rack
            q_dead = lit_dead / lit_disks if lit_disks else 0.0
            hours = end - start
            for scheme in self.schemes:
                p_unreadable = self._segment_unreadable(
                    scheme, len(dark), q_dead
                )
                tallies[scheme.name]["unavailable_group_hours"] += (
                    fleet.groups * p_unreadable * hours
                )
            if trace.enabled:
                trace.complete(
                    "fleet", "rack_outage_segment", start, end, racks=len(dark)
                )
        if trace.enabled:
            trace.complete(
                "durability", "trial", 0.0, horizon, trial=trial,
                failures=int(times.size),
            )
        return tallies

    # -- public API -------------------------------------------------------
    def run(
        self, trials: int, years: float = 10.0, first_trial: int = 0
    ) -> Dict[str, SchemeReport]:
        """Simulate ``trials`` independent fleet histories.

        ``first_trial`` offsets the per-trial seed spawn keys so chunked
        runs (e.g. ``run(5)`` then ``run(5, first_trial=5)``) sample the
        same streams as ``run(10)`` and can be merged via
        :meth:`SchemeReport.merge`.
        """
        if trials < 1:
            raise DurabilityModelError("need at least one trial")
        if years <= 0:
            raise DurabilityModelError("years must be positive")
        per_trial: Dict[str, List[Dict[str, float]]] = {
            scheme.name: [] for scheme in self.schemes
        }
        for trial in range(first_trial, first_trial + trials):
            tallies = self._simulate_trial(trial, years)
            for scheme in self.schemes:
                per_trial[scheme.name].append(tallies[scheme.name])
        reports: Dict[str, SchemeReport] = {}
        for scheme in self.schemes:
            rows = per_trial[scheme.name]
            timeline = np.zeros(self.timeline_buckets)
            for row in rows:
                timeline += row["timeline"]  # type: ignore[index]
            reports[scheme.name] = SchemeReport(
                name=scheme.name,
                trials=trials,
                group_years=self.fleet.groups * years * trials,
                expected_groups_lost=math.fsum(
                    row["expected_groups_lost"] for row in rows
                ),
                repair_gb=math.fsum(row["repair_gb"] for row in rows),
                sim_days=years * 365.0 * trials,
                unavailable_group_hours=math.fsum(
                    row["unavailable_group_hours"] for row in rows
                ),
                at_risk_group_hours=math.fsum(
                    row["at_risk_group_hours"] for row in rows
                ),
                at_risk_timeline=timeline,
                peak_groups_at_risk=max(
                    row["peak_groups_at_risk"] for row in rows
                ),
            )
        return reports
