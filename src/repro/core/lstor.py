"""Lstor: the per-disk parity add-on (paper §3.2).

An Lstor is a small persistent device attached to one disk.  It fails
independently of the disk and stores:

- a parity region the size of one superchunk, holding an erasure code of
  *all* superchunks on the local disk, indexed here by block slot within
  the superchunk (parity slot ``j`` covers block ``j`` of every local
  superchunk), and
- the append-only journal of :mod:`repro.core.journal`.

With a single Lstor per disk the erasure code is plain XOR -- both in the
real-bytes plane and in the symbolic plane, where XOR is symmetric set
difference.  :class:`LstorStack` generalizes to ``k`` Lstors per disk
using the Reed-Solomon rows of :mod:`repro.ec.reed_solomon`, allowing the
system to survive ``k + 1`` simultaneous disk failures (bytes plane only,
since Reed-Solomon needs real field arithmetic).

Timing: parity arithmetic is offloaded to the Lstor's own logic (paper
§2), so Lstor operations charge *no* datanode CPU; the simulated cost is
the transfer into the device, charged at ``write_rate``.
"""

from __future__ import annotations

from typing import Dict, Generator, Hashable, List, Optional

import numpy as np

from repro import units
from repro.core.journal import Journal
from repro.ec.reed_solomon import ReedSolomon
from repro.errors import LstorFailedError
from repro.sim.engine import Simulator
from repro.storage.payload import (
    BytesPayload,
    ContentFactory,
    Payload,
    XorAccumulator,
)
from repro.sim.snapshot import InlineState


class Lstor(InlineState):
    """One parity device: an XOR region plus a journal."""

    def __init__(
        self,
        sim: Simulator,
        factory: ContentFactory,
        name: str,
        block_size: int,
        journal_capacity: int = 128 * units.MiB,
        write_rate: float = 1.2 * units.GB,
    ) -> None:
        self.sim = sim
        self.factory = factory
        self.name = name
        self.block_size = block_size
        self.write_rate = write_rate
        self.journal = Journal(
            capacity=journal_capacity, now=sim.now, trace=sim.trace, name=name
        )
        self.failed = False
        self._parity: Dict[int, Payload] = {}
        # Bytes-plane fast path: per-slot writable XOR accumulators, so
        # absorbing a delta is one in-place bitwise_xor with no payload
        # allocation.  ``_parity`` doubles as the cache of immutable
        # snapshots handed out by :meth:`parity_block`; entries are
        # invalidated whenever the accumulator advances.
        self._parity_accum: Dict[int, "np.ndarray"] = {}
        # Tags of already-absorbed updates: device-side sequence-number
        # dedup, which makes journal roll-forward idempotent.
        self._absorbed_tags: set = set()
        self.stats_parity_updates = 0
        self.stats_bytes_absorbed = 0

    # ------------------------------------------------------------------
    # Failure model: Lstors fail separately from their disks.
    # ------------------------------------------------------------------
    def fail(self) -> None:
        self.failed = True

    def reset(self, now: float = 0.0) -> None:
        """Model a replaced Lstor: zero parity, empty journal, healthy.

        Used when a node rejoins after recovery already re-homed its
        data -- the replacement disk ships with a fresh parity device, so
        the zero parity matches the (empty) disk it now covers.
        """
        self.failed = False
        self._parity.clear()
        self._parity_accum.clear()
        self._absorbed_tags.clear()
        self.journal.drop_all(now)

    def _check_alive(self) -> None:
        if self.failed:
            raise LstorFailedError(f"access to failed Lstor {self.name}")

    # ------------------------------------------------------------------
    # Parity plane.
    # ------------------------------------------------------------------
    def parity_block(self, slot: int) -> Payload:
        """Current parity for block slot ``slot`` (zero if untouched).

        The returned payload is an immutable snapshot: later absorbs at
        the same slot never mutate it (journal records stay correct).
        """
        self._check_alive()
        parity = self._parity.get(slot)
        if parity is None:
            accum = self._parity_accum.get(slot)
            if accum is None:
                return self.factory.zero(self.block_size)
            # Snapshot the writable accumulator; cached until the next
            # absorb at this slot dirties it.
            parity = BytesPayload(accum)
            self._parity[slot] = parity
        return parity

    def absorb(self, slot: int, delta: Payload, tag: Optional[Hashable] = None) -> None:
        """Fold ``delta`` (= old XOR new) into the parity at ``slot``.

        ``tag``, when given, deduplicates: a delta absorbed under the same
        tag twice is applied once (journal replay idempotency).  Pure
        state change; use :meth:`absorb_timed` from simulation processes
        to also charge device-transfer time.
        """
        self._check_alive()
        if tag is not None:
            if tag in self._absorbed_tags:
                return
            self._absorbed_tags.add(tag)
        if not self.factory.symbolic and isinstance(delta, BytesPayload):
            accum = self._parity_accum.get(slot)
            if accum is None:
                accum = np.zeros(self.block_size, dtype=np.uint8)
                self._parity_accum[slot] = accum
            delta.xor_into(accum)
            self._parity.pop(slot, None)
        else:
            self._parity[slot] = self.parity_block(slot).xor(delta)
        self.stats_parity_updates += 1

    def absorb_timed(self, slot: int, delta: Payload, nbytes: int) -> Generator:
        """Process body: absorb a delta, charging transfer time."""
        self.absorb(slot, delta)
        self.stats_bytes_absorbed += nbytes
        yield self.sim.timeout(nbytes / self.write_rate)
        return None

    def journal_write_time(self, nbytes: int) -> float:
        """Time to persist one journal record of ``nbytes`` of new data.

        A record carries new data, old data, and parity (3x), but the
        device streams them concurrently from its staging DRAM; the
        bottleneck is the record's dominant component.
        """
        return nbytes / self.write_rate

    def snapshot_parity(self) -> Dict[int, Payload]:
        """Copy of the parity region (used by recovery and tests)."""
        self._check_alive()
        slots = sorted(set(self._parity) | set(self._parity_accum))
        return {slot: self.parity_block(slot) for slot in slots}


class LstorStack(InlineState):
    """``k`` Lstors on one disk: Reed-Solomon parities over superchunks.

    Lstor ``i`` in the stack stores parity row ``i`` of an RS code whose
    data shards are the disk's superchunks (shard index = the
    superchunk's slot on this disk).  With ``k`` stacked Lstors the
    cluster survives ``k + 1`` simultaneous disk failures: a (k+1)-failure
    loses at most ``k`` superchunks on any given disk (one shared with
    each other failed disk), and the k parities recover them.

    Requires the bytes plane: Reed-Solomon coefficients have no symbolic
    analogue.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: ContentFactory,
        name: str,
        block_size: int,
        data_shards: int,
        parity_count: int,
        journal_capacity: int = 128 * units.MiB,
        write_rate: float = 1.2 * units.GB,
    ) -> None:
        if parity_count < 1:
            raise ValueError("need at least one Lstor in a stack")
        if factory.symbolic and parity_count > 1:
            raise ValueError("stacked Lstors require the bytes payload plane")
        self.sim = sim
        self.factory = factory
        self.name = name
        self.block_size = block_size
        self.data_shards = data_shards
        self.parity_count = parity_count
        self.lstors: List[Lstor] = [
            Lstor(
                sim,
                factory,
                name=f"{name}.L{i}",
                block_size=block_size,
                journal_capacity=journal_capacity,
                write_rate=write_rate,
            )
            for i in range(parity_count)
        ]
        self._codec = (
            ReedSolomon(data_shards, parity_count) if parity_count > 1 else None
        )

    @property
    def primary(self) -> Lstor:
        return self.lstors[0]

    def alive_lstors(self) -> List[Lstor]:
        return [l for l in self.lstors if not l.failed]

    def reset(self, now: float = 0.0) -> None:
        """Replace every Lstor in the stack (see :meth:`Lstor.reset`)."""
        for lstor in self.lstors:
            lstor.reset(now)

    def absorb_update(
        self,
        shard_index: int,
        slot: int,
        old: Payload,
        new: Payload,
        tag: Optional[Hashable] = None,
    ) -> None:
        """Propagate one block update into every parity in the stack.

        ``shard_index`` is the superchunk's slot on this disk (the RS data
        shard index); ``slot`` is the block slot within the superchunk.
        ``tag`` deduplicates replays (see :meth:`Lstor.absorb`).
        """
        if self._codec is None:
            if not self.lstors[0].failed:
                # A failed Lstor absorbs nothing: the disk keeps serving,
                # degraded to plain replication until the device is reset.
                self.lstors[0].absorb(slot, old.xor(new), tag=tag)
            return
        if not isinstance(old, BytesPayload) or not isinstance(new, BytesPayload):
            raise TypeError("stacked Lstors require BytesPayload data")
        deltas = self._codec.parity_delta(shard_index, old.data, new.data)
        for lstor, delta in zip(self.lstors, deltas):
            if not lstor.failed:
                # parity_delta returns freshly allocated buffers: adopt
                # them copy-free.
                lstor.absorb(slot, BytesPayload.adopt(delta), tag=tag)

    def reconstruct_block(
        self,
        slot: int,
        surviving_blocks: Dict[int, Payload],
        missing_shards: List[int],
    ) -> Dict[int, Payload]:
        """Rebuild missing superchunk blocks at ``slot``.

        ``surviving_blocks`` maps shard index (superchunk slot on this
        disk) to its block payload; ``missing_shards`` lists the shard
        indices to recover.  For a single Lstor this is the XOR chain of
        the paper's Fig. 2; for stacks it is an RS decode.
        """
        alive = self.alive_lstors()
        if not alive:
            raise LstorFailedError(f"no live Lstor in stack {self.name}")
        if self._codec is None:
            if len(missing_shards) != 1:
                raise ValueError("a single Lstor recovers exactly one superchunk")
            accum = XorAccumulator(alive[0].parity_block(slot))
            for payload in surviving_blocks.values():
                accum.add(payload)
            return {missing_shards[0]: accum.result()}
        shards: Dict[int, Payload] = dict(surviving_blocks)
        full: Dict[int, "BytesPayload"] = {
            i: p for i, p in shards.items() if isinstance(p, BytesPayload)
        }
        arrays = {i: p.data for i, p in full.items()}
        # Missing *data* shards default to zeros if they were never
        # written; parity shards come from the live Lstors.
        for index, lstor in enumerate(self.lstors):
            if not lstor.failed:
                parity = lstor.parity_block(slot)
                assert isinstance(parity, BytesPayload)
                arrays[self.data_shards + index] = parity.data
        for shard in range(self.data_shards):
            if shard not in arrays and shard not in missing_shards:
                arrays[shard] = self.factory.zero(self.block_size).data  # type: ignore[union-attr]
        result = {}
        for shard in missing_shards:
            rebuilt = self._codec.reconstruct_shard(
                {i: a for i, a in arrays.items() if i != shard}, shard
            )
            result[shard] = BytesPayload.adopt(rebuilt)
            arrays[shard] = rebuilt
        return result
