"""Background load balancer: spread blocks evenly across disks (§3.3).

The paper stresses that recovery and steady-state health both depend on
balanced disks: "Keeping disks load balanced would prevent a situation
where some disks become hotspots."  The placement policy balances new
writes, but deletions, recoveries, and workload skew still drift the
fleet; :class:`Balancer` is the background process that moves whole
blocks -- both replicas together, parity maintained on all four affected
Lstors -- from the hottest disks to under-filled superchunk pairs.

A move is a miniature migration: read the block at a current replica,
ship it to the two new homes, install (which folds it into their
parities), then drop the old replicas (whose parity removal is the usual
deferred-to-idle work).  Every step uses the same primitives as
recovery, so all invariants hold mid-flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.cluster import RaidpCluster
from repro.errors import PlacementError
from repro.hdfs.block import BlockLocations


@dataclass
class BalanceReport:
    """What one balancing pass did."""

    moves: List[Tuple[str, int, int]] = field(default_factory=list)  # (block, from_sc, to_sc)
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0
    duration: float = 0.0


class Balancer:
    """Moves blocks from hot disks to cold superchunk pairs."""

    def __init__(self, dfs: RaidpCluster, threshold: float = 0.25) -> None:
        """``threshold``: stop once (max - min) / mean disk load falls
        at or below this."""
        self.dfs = dfs
        self.sim = dfs.sim
        self.threshold = threshold

    # ------------------------------------------------------------------
    # Measurement.
    # ------------------------------------------------------------------
    def disk_loads(self) -> Dict[str, int]:
        return {
            dn.name: self.dfs.map.load_of_disk(dn.name)
            for dn in self.dfs.datanodes
            if dn.alive
        }

    def imbalance(self) -> float:
        loads = list(self.disk_loads().values())
        mean = sum(loads) / len(loads) if loads else 0.0
        if mean == 0:
            return 0.0
        return (max(loads) - min(loads)) / mean

    # ------------------------------------------------------------------
    # Planning.
    # ------------------------------------------------------------------
    def _pick_move(self) -> Optional[Tuple[BlockLocations, int]]:
        """(block to move, target superchunk) or None if nothing helps."""
        loads = self.disk_loads()
        if not loads:
            return None
        hot = max(sorted(loads), key=lambda d: loads[d])
        layout = self.dfs.layout
        # Walk the hot disk's blocks, fullest superchunk first, and find
        # each a target pair *disjoint* from the block's current homes
        # (a shared home would have to hold both copies mid-move).
        for sc_id in sorted(
            layout.superchunks_of(hot),
            key=lambda s: -self.dfs.map.used_slots(s),
        ):
            for _slot, block_name in sorted(self.dfs.map.blocks_in(sc_id).items()):
                locations = self._locations_of(block_name)
                if locations is None:
                    continue
                target = self._best_target(set(locations.datanodes), loads, hot)
                if target is not None:
                    return locations, target
        return None

    def _best_target(
        self, old_homes: set, loads: Dict[str, int], hot: str
    ) -> Optional[int]:
        """Coolest unfrozen superchunk with a free slot, avoiding the
        block's current homes entirely."""
        best_target = None
        best_pressure = None
        for sc_id, sc in self.dfs.layout.superchunks.items():
            if self.dfs.map.is_frozen(sc_id):
                continue
            if sc.disks & old_homes or self.dfs.map.free_slots(sc_id) == 0:
                continue
            if any(d not in loads for d in sc.disks):
                continue  # a home is dead
            pressure = max(loads[d] for d in sc.disks)
            if pressure >= loads[hot]:
                continue  # would not improve the hottest disk
            if best_pressure is None or pressure < best_pressure:
                best_pressure = pressure
                best_target = sc_id
        return best_target

    def _locations_of(self, block_name: str) -> Optional[BlockLocations]:
        for locations in self.dfs.namenode.all_blocks():
            if locations.block.name == block_name:
                return locations
        return None

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def move_block(self, locations: BlockLocations, target_sc: int) -> Generator:
        """Migrate one block (both replicas) to ``target_sc``."""
        dfs = self.dfs
        block = locations.block
        old = BlockLocations(
            block=block,
            datanodes=list(locations.datanodes),
            sc_id=locations.sc_id,
            slot=locations.slot,
            version=locations.version,
        )
        source = dfs.datanode_by_name(old.datanodes[0])
        payload = source.content_of(block.name)
        target = dfs.layout.superchunk(target_sc)
        new_slot = dfs.map.allocate_slot(target_sc, block.name)
        locations.sc_id = target_sc
        locations.slot = new_slot
        locations.datanodes = sorted(target.disks)
        # Ship to both new homes (read once at the source, two flows).
        yield from source.fs.read(block.name, 0, block.size)
        flows = [
            dfs.switch.transfer(
                source.node.primary_nic,
                dfs.datanode_by_name(home).node.primary_nic,
                block.size,
            )
            for home in locations.datanodes
            if dfs.datanode_by_name(home).node is not source.node
        ]
        if flows:
            yield self.sim.all_of(flows)
        for home in locations.datanodes:
            datanode = dfs.datanode_by_name(home)
            datanode.install_recovered_block(locations, payload)
            yield from datanode.fs.write(block.name, 0, block.size)
        # Drop the old replicas; their parity removal is deferred-to-idle.
        for home in old.datanodes:
            datanode = dfs.datanode_by_name(home)
            if datanode.alive:
                datanode.delete_block(old)
        if old.sc_id is not None and old.slot is not None:
            dfs.map.release_slot(old.sc_id, old.slot)
        return None

    def run_pass(self, max_moves: int = 32) -> Generator:
        """Process body: move blocks until balanced or out of moves."""
        report = BalanceReport(imbalance_before=self.imbalance())
        started = self.sim.now
        for _ in range(max_moves):
            if self.imbalance() <= self.threshold:
                break
            pick = self._pick_move()
            if pick is None:
                break
            locations, target_sc = pick
            from_sc = locations.sc_id
            yield from self.move_block(locations, target_sc)
            report.moves.append((locations.block.name, from_sc, target_sc))
        report.imbalance_after = self.imbalance()
        report.duration = self.sim.now - started
        return report

    def balance(self, max_moves: int = 32) -> BalanceReport:
        """Drive a balancing pass to completion (convenience wrapper)."""
        return self.sim.run_process(self.run_pass(max_moves), name="balancer")
