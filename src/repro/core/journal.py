"""The Lstor's append-only journal (paper §3.4).

Every incoming write creates a journal record holding the new data, the
old data it overwrites, and the parity delta.  The protocol is:

1. append the record to the journal (fast, on the Lstor),
2. commit the data write to disk (synced),
3. acknowledge to the remote mirror's Lstor,
4. on receiving the remote acknowledgment, clear the record.

A record still present after a crash means the write may not have reached
one of the replicas or parities; :meth:`Journal.replay_candidates`
surfaces those records so the roll-forward procedure can re-apply them.
The journal is bounded (the paper keeps it at 128 MB) and tracks the
outstanding-record gauge -- the paper observes at most one or two
outstanding records at a time, which we assert in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import units
from repro.errors import JournalError
from repro.obs.tracer import NULL_TRACER
from repro.sim.stats import TimeWeightedGauge
from repro.storage.payload import Payload
from repro.sim.snapshot import InlineState


class RecordState(enum.Enum):
    """Lifecycle of a journal record (monotone left to right)."""

    APPENDED = "appended"  # durable in the journal, write not yet on disk
    COMMITTED = "committed"  # local disk write synced
    ACKED = "acked"  # remote mirror acknowledged; clearable


@dataclass
class JournalRecord(InlineState):
    """One write's worth of recovery information."""

    record_id: int
    block_name: str
    sc_id: int
    slot: int
    old_data: Payload
    new_data: Payload
    parity_delta: Payload
    nbytes: int
    version: int = 1
    state: RecordState = RecordState.APPENDED

    @property
    def tag(self) -> tuple:
        """Dedup tag for idempotent parity replay (paper §3.4)."""
        return ("w", self.block_name, self.version)

    @property
    def journal_bytes(self) -> int:
        """Journal space this record occupies.

        The record logically carries new data, old data, and parity, but
        only the new data is staged in the journal's high-bandwidth
        memory -- old data and parity are references into the device's
        working buffers.  This is what lets the paper run a 128 MB
        journal against 64 MB blocks with one or two records outstanding.
        """
        return self.nbytes


class Journal(InlineState):
    """Bounded append-only journal with explicit state transitions."""

    def __init__(
        self,
        capacity: int = 128 * units.MiB,
        now: float = 0.0,
        strict_capacity: bool = False,
        trace: Optional[Any] = None,
        name: str = "journal",
    ) -> None:
        """``strict_capacity`` makes over-capacity appends raise.

        The default is soft: overflowing appends are admitted but counted
        (``overflows``, ``high_water_bytes``).  The real device relieves
        pressure through packet-level flow control on the write path; at
        our block-granularity model a hard cap would deadlock two mirrors
        waiting on each other's acknowledgments, so we observe pressure
        instead of enforcing it.
        """
        self.capacity = capacity
        self.strict_capacity = strict_capacity
        self.name = name
        self._trace = trace if trace is not None else NULL_TRACER
        self._records: Dict[int, JournalRecord] = {}
        self._next_id = 0
        self._used = 0
        self.outstanding_gauge = TimeWeightedGauge(start_time=now)
        self.total_appends = 0
        self.total_clears = 0
        self.overflows = 0
        self.high_water_bytes = 0

    # ------------------------------------------------------------------
    # Protocol steps.
    # ------------------------------------------------------------------
    def append(
        self,
        block_name: str,
        sc_id: int,
        slot: int,
        old_data: Payload,
        new_data: Payload,
        parity_delta: Payload,
        nbytes: int,
        now: float,
        version: int = 1,
    ) -> JournalRecord:
        record = JournalRecord(
            record_id=self._next_id,
            block_name=block_name,
            sc_id=sc_id,
            slot=slot,
            old_data=old_data,
            new_data=new_data,
            parity_delta=parity_delta,
            nbytes=nbytes,
            version=version,
        )
        if self._used + record.journal_bytes > self.capacity:
            if self.strict_capacity:
                raise JournalError(
                    f"journal full: {self._used} + {record.journal_bytes} "
                    f"> {self.capacity}"
                )
            self.overflows += 1
        self._next_id += 1
        self._records[record.record_id] = record
        self._used += record.journal_bytes
        self.high_water_bytes = max(self.high_water_bytes, self._used)
        self.total_appends += 1
        self.outstanding_gauge.adjust(+1, now)
        if self._trace.enabled:
            self._trace.count("journal", self.name, now, len(self._records))
        return record

    def mark_committed(self, record_id: int) -> None:
        record = self._get(record_id)
        if record.state is not RecordState.APPENDED:
            raise JournalError(
                f"record {record_id} committed from state {record.state}"
            )
        record.state = RecordState.COMMITTED

    def mark_acked(self, record_id: int) -> None:
        record = self._get(record_id)
        if record.state is not RecordState.COMMITTED:
            raise JournalError(f"record {record_id} acked from state {record.state}")
        record.state = RecordState.ACKED

    def clear(self, record_id: int, now: float) -> None:
        record = self._get(record_id)
        if record.state is not RecordState.ACKED:
            raise JournalError(
                f"record {record_id} cleared from state {record.state}; "
                "writes clear only after the remote acknowledgment"
            )
        del self._records[record_id]
        self._used -= record.journal_bytes
        self.total_clears += 1
        self.outstanding_gauge.adjust(-1, now)
        if self._trace.enabled:
            self._trace.count("journal", self.name, now, len(self._records))

    # ------------------------------------------------------------------
    # Crash recovery.
    # ------------------------------------------------------------------
    def replay_candidates(self) -> List[JournalRecord]:
        """Uncleared records, oldest first -- the roll-forward input."""
        return sorted(self._records.values(), key=lambda r: r.record_id)

    def drop_all(self, now: float) -> None:
        """Discard the journal content (e.g. after a full roll-forward)."""
        self._records.clear()
        self._used = 0
        self.outstanding_gauge.set(0, now)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._records)

    @property
    def used_bytes(self) -> int:
        return self._used

    def _get(self, record_id: int) -> JournalRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise JournalError(f"unknown journal record {record_id}") from None
