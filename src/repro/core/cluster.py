"""RaidpCluster: the public facade assembling a full RAIDP deployment.

Mirrors :class:`repro.hdfs.filesystem.HdfsCluster` but with two-way
replication, the rotational superchunk layout spanning every DataNode,
RAIDP placement, Lstor-equipped DataNodes, and clients configured for the
paper's optimized write path (block accumulation + writer lock) unless
the unoptimized ablation is requested.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro import units
from repro.core.layout import (
    Layout,
    LayoutSpec,
    domain_aware_layout,
    rotational_layout,
)
from repro.core.node import RaidpConfig, RaidpDataNode
from repro.core.placement import RaidpPlacement, SuperchunkMap
from repro.errors import LayoutError
from repro.hdfs.client import DfsClient
from repro.hdfs.config import DfsConfig
from repro.hdfs.namenode import NameNode
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.engine import Simulator
from repro.sim.network import Switch
from repro.storage.payload import ContentFactory, Payload
from repro.sim.snapshot import InlineState


class RaidpCluster(InlineState):
    """A ready-to-run RAIDP deployment over the simulated cluster."""

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        config: Optional[DfsConfig] = None,
        raidp: Optional[RaidpConfig] = None,
        superchunk_size: Optional[int] = None,
        superchunks_per_disk: Optional[int] = None,
        payload_mode: str = "tokens",
        seed: int = 0xF00D,
    ) -> None:
        self.sim = Simulator()
        self.spec = spec or ClusterSpec()
        base_config = config or DfsConfig()
        if base_config.replication != 2:
            # RAIDP is a 2-way system; coerce only the replication factor
            # and keep every other knob the caller chose.
            base_config = dataclasses.replace(base_config, replication=2)
        self.config = base_config
        self.raidp = raidp or RaidpConfig()
        self.cluster = Cluster(self.sim, self.spec)
        self.factory = ContentFactory(mode=payload_mode, seed=seed)

        sc_size = superchunk_size or 6 * units.GiB
        layout_spec = LayoutSpec(
            superchunk_size=sc_size, block_size=self.config.block_size
        )
        disks_per_node = self.spec.disks_per_node
        if disks_per_node == 1:
            node_names = [node.name for node in self.cluster.nodes]
            self.layout = rotational_layout(
                len(node_names),
                superchunks_per_disk=superchunks_per_disk,
                spec=layout_spec,
                disk_names=node_names,
            )
        else:
            # Multi-disk servers: one DataNode per disk, the server is
            # the failure domain (paper §3.1 / §3.3's 12-disk example).
            if superchunks_per_disk is None:
                raise LayoutError(
                    "multi-disk clusters require an explicit superchunks_per_disk"
                )
            domains = {
                f"{node.name}-d{index}": node.name
                for node in self.cluster.nodes
                for index in range(disks_per_node)
            }
            self.layout = domain_aware_layout(
                domains, superchunks_per_disk, spec=layout_spec
            )
        self.map = SuperchunkMap(self.layout)
        self.placement = RaidpPlacement(
            self.layout, self.map, seed=seed, node_of=self.layout.domain_of
        )
        self.namenode = NameNode(self.config, self.placement)
        #: The server hosting the NameNode process (heartbeat endpoint).
        #: Like small Hadoop deployments, it is collocated with node 0.
        self.namenode_node = self.cluster.nodes[0]

        self.datanodes: List[RaidpDataNode] = []
        for node in self.cluster.nodes:
            for index, disk in enumerate(node.disks):
                datanode = RaidpDataNode(
                    self.sim,
                    node,
                    self.config,
                    self.factory,
                    self.layout,
                    self.map,
                    self.raidp,
                    self.cluster.switch,
                    disk=disk,
                    name=(
                        node.name if disks_per_node == 1 else f"{node.name}-d{index}"
                    ),
                )
                self.namenode.register_datanode(datanode)
                datanode.attach_namenode(self.namenode)
                self.datanodes.append(datanode)

        from repro.core.client import RaidpClient

        self.clients: List[DfsClient] = [
            RaidpClient(
                self.sim,
                node,
                self.namenode,
                self.cluster.switch,
                self.factory,
                accumulate_writes=self.raidp.optimized,
                use_writer_lock=self.raidp.optimized,
                seed=seed + index,
                layout=self.layout,
                superchunk_map=self.map,
            )
            for index, node in enumerate(self.cluster.nodes)
        ]

        if self.raidp.update_oriented:
            for datanode in self.datanodes:
                datanode.preallocate_superchunks()

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------
    def client(self, index: int = 0) -> DfsClient:
        return self.clients[index]

    def datanode(self, index: int) -> RaidpDataNode:
        return self.datanodes[index]

    def datanode_by_name(self, name: str) -> RaidpDataNode:
        datanode = self.namenode.datanode(name)
        assert isinstance(datanode, RaidpDataNode)
        return datanode

    @property
    def switch(self) -> Switch:
        return self.cluster.switch

    def total_network_bytes(self) -> int:
        return self.cluster.total_network_bytes()

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Warm-start snapshots (see repro.sim.snapshot).
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Capture the quiescent cluster for later :meth:`from_snapshot`.

        Only legal between runs: the simulator refuses to pickle while
        events are scheduled or a process is mid-body.
        """
        from repro.sim.snapshot import capture

        return capture(self)

    @classmethod
    def from_snapshot(cls, blob: bytes) -> "RaidpCluster":
        """Restore a fresh, unshared cluster from :meth:`snapshot` bytes."""
        from repro.sim.snapshot import checked_restore

        return checked_restore(blob, cls)

    # ------------------------------------------------------------------
    # Invariant checking (used by tests and the failure drills).
    # ------------------------------------------------------------------
    def verify_mirrors(self) -> None:
        """Every live block's two replicas hold identical content."""
        for locations in self.namenode.all_blocks():
            payloads = []
            for name in locations.datanodes:
                datanode = self.datanode_by_name(name)
                if datanode.alive and datanode.has_block(locations.block.name):
                    payloads.append(datanode.content_of(locations.block.name))
            for payload in payloads[1:]:
                if payload != payloads[0]:
                    raise LayoutError(
                        f"mirror divergence on block {locations.block.name}"
                    )

    def verify_parity(self) -> None:
        """Every live Lstor's XOR parity matches its disk's superchunks.

        Applies to the single-Lstor configuration (XOR); the stacked
        configuration is verified through
        :meth:`RaidpDataNode.lstors.reconstruct_block` in tests.
        """
        for datanode in self.datanodes:
            if not datanode.alive:
                continue
            if datanode.name not in self.layout.disks:
                continue  # evicted by recovery; rejoined empty, nothing to check
            lstor = datanode.lstors.primary
            if lstor.failed:
                continue
            sc_ids = self.layout.superchunks_of(datanode.name)
            for slot in range(self.map.slots_per_superchunk):
                expected = self.factory.zero(self.config.block_size)
                for sc_id in sc_ids:
                    expected = expected.xor(datanode.slot_payload(sc_id, slot))
                actual = lstor.parity_block(slot)
                if actual != expected:
                    raise LayoutError(
                        f"parity mismatch on {datanode.name} slot {slot}"
                    )

    def render_with_lstors(self) -> str:
        """Fig. 2-style ASCII: each disk's superchunks plus its Lstor line.

        The Lstor row shows which superchunks the device's XOR parity
        currently covers -- the picture the paper uses to explain
        double-failure recovery.
        """
        lines = [self.layout.render(), ""]
        for datanode in self.datanodes:
            sc_ids = self.layout.superchunks_of(datanode.name)
            covered = sorted(
                sc_id
                for sc_id in sc_ids
                if any(
                    not datanode.slot_payload(sc_id, slot).is_zero()
                    for slot in range(self.map.slots_per_superchunk)
                )
            )
            label = (
                "xor(" + ", ".join(f"sc{sc}" for sc in covered) + ")"
                if covered
                else "(empty)"
            )
            state = "FAILED" if datanode.lstors.primary.failed else "ok"
            lines.append(f"L[{datanode.name}] = {label}  [{state}]")
        return "\n".join(lines)

    def journals_empty(self) -> bool:
        """True when no journal record is outstanding cluster-wide."""
        return all(
            dn.lstors.primary.journal.outstanding == 0 for dn in self.datanodes
        )
