"""RAIDP block placement (paper §5, "Superimposing Superchunks on HDFS").

The NameNode may only assign a new block to a *pair* of DataNodes that
share a superchunk, and the block gets a fixed slot inside that
superchunk (blocks are sequentially assigned to the preallocated files of
the superchunk directory).  :class:`SuperchunkMap` tracks slot occupancy;
:class:`RaidpPlacement` is the plug-in placement policy.

Placement prefers pairs containing the writer (HDFS's writer-local first
replica) and balances load by picking the least-full eligible superchunk.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.layout import Layout, LayoutSpec
from repro.errors import CapacityError, PlacementError
from repro.hdfs.block import Block, BlockLocations
from repro.hdfs.namenode import PlacementPolicy, healthy_datanode
from repro.sim.snapshot import InlineState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hdfs.datanode import DataNode


class SuperchunkMap(InlineState):
    """Slot occupancy of every superchunk in the layout."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout
        self.slots_per_superchunk = layout.spec.blocks_per_superchunk
        # sc_id -> slot -> block name (occupied slots only).
        self._occupancy: Dict[int, Dict[int, str]] = {
            sc_id: {} for sc_id in layout.superchunks
        }
        # Superchunks under recovery: writes are diverted away from them
        # (paper §3.4) until the recovery completes.
        self._frozen: set = set()

    # ------------------------------------------------------------------
    # Recovery-time write diversion (paper §3.4).
    # ------------------------------------------------------------------
    def freeze(self, sc_id: int) -> None:
        self._frozen.add(sc_id)

    def unfreeze(self, sc_id: int) -> None:
        self._frozen.discard(sc_id)

    def is_frozen(self, sc_id: int) -> bool:
        return sc_id in self._frozen

    def register_superchunk(self, sc_id: int) -> None:
        """Track a superchunk created after construction (recovery)."""
        self._occupancy.setdefault(sc_id, {})

    def used_slots(self, sc_id: int) -> int:
        return len(self._occupancy[sc_id])

    def free_slots(self, sc_id: int) -> int:
        return self.slots_per_superchunk - self.used_slots(sc_id)

    def block_at(self, sc_id: int, slot: int) -> Optional[str]:
        return self._occupancy[sc_id].get(slot)

    def blocks_in(self, sc_id: int) -> Dict[int, str]:
        """slot -> block name for every occupied slot."""
        return dict(self._occupancy[sc_id])

    def allocate_slot(self, sc_id: int, block_name: str) -> int:
        """Claim the lowest free slot (sequential file assignment)."""
        occupancy = self._occupancy[sc_id]
        for slot in range(self.slots_per_superchunk):
            if slot not in occupancy:
                occupancy[slot] = block_name
                return slot
        raise CapacityError(f"superchunk {sc_id} has no free slots")

    def release_slot(self, sc_id: int, slot: int) -> None:
        self._occupancy[sc_id].pop(slot, None)

    def load_of_disk(self, disk: str) -> int:
        """Occupied slots across all superchunks on ``disk`` (load proxy)."""
        return sum(
            self.used_slots(sc_id) for sc_id in self.layout.superchunks_of(disk)
        )


class RaidpPlacement(PlacementPolicy):
    """Placement restricted to superchunk-sharing DataNode pairs.

    Disk ids in the layout are DataNode names (the evaluation runs one
    disk per node, as the paper does).
    """

    def __init__(
        self,
        layout: Layout,
        superchunk_map: SuperchunkMap,
        seed: int = 0xA1D9,
        node_of: Optional[Callable[[str], str]] = None,
    ) -> None:
        """``node_of`` maps a DataNode name to its server, so the
        writer-local preference works on multi-disk servers (the writer
        is a server name; eligible DataNodes are per-disk)."""
        self.layout = layout
        self.map = superchunk_map
        self._rng = random.Random(seed)
        self._node_of = node_of or (lambda name: name)

    def choose_targets(
        self,
        block: Block,
        writer: Optional[str],
        datanodes: Sequence["DataNode"],
    ) -> BlockLocations:
        # The full health predicate: a disk that already died but has not
        # yet been declared dead by the heartbeat detector must not
        # receive new blocks.
        alive = {dn.name for dn in datanodes if healthy_datanode(dn)}
        candidates = self._eligible_superchunks(alive)
        if not candidates:
            raise PlacementError(
                "no superchunk with free slots spans two live datanodes"
            )
        preferred = (
            [
                sc_id
                for sc_id in candidates
                if any(
                    (self._node_of(d) or d) == writer or d == writer
                    for d in self._pair(sc_id)
                )
            ]
            if writer is not None
            else []
        )
        pool = preferred or candidates
        # Balance by *disk* load (the busier disk of each pair), so every
        # spindle receives an even share of the write stream; ties break
        # by superchunk fullness, then by the seeded RNG.
        def pressure(sc_id: int) -> Tuple[int, int, int]:
            a, b = self._pair(sc_id)
            loads = sorted(
                (self.map.load_of_disk(a), self.map.load_of_disk(b)), reverse=True
            )
            return (loads[0], loads[1], self.map.used_slots(sc_id))

        best = min(pressure(sc) for sc in pool)
        tied = [sc for sc in pool if pressure(sc) == best]
        sc_id = self._rng.choice(tied)
        slot = self.map.allocate_slot(sc_id, block.name)
        pair = list(self._pair(sc_id))
        for index, disk in enumerate(pair):
            if disk == writer or (self._node_of(disk) or disk) == writer:
                pair.insert(0, pair.pop(index))
                break
        return BlockLocations(block=block, datanodes=pair, sc_id=sc_id, slot=slot)

    def _pair(self, sc_id: int) -> Tuple[str, str]:
        sc = self.layout.superchunk(sc_id)
        return sc.disk_a, sc.disk_b

    def _eligible_superchunks(self, alive: set) -> List[int]:
        eligible = []
        for sc_id, sc in self.layout.superchunks.items():
            if self.map.is_frozen(sc_id):
                continue  # under recovery: writes are diverted (§3.4)
            if sc.disk_a in alive and sc.disk_b in alive and self.map.free_slots(sc_id) > 0:
                eligible.append(sc_id)
        return sorted(eligible)

    def release(self, locations: BlockLocations) -> None:
        """Return a deleted block's slot to the pool."""
        if locations.sc_id is not None and locations.slot is not None:
            self.map.release_slot(locations.sc_id, locations.slot)
