"""Cluster monitoring: heartbeats, failure detection, automatic recovery.

HDFS DataNodes heartbeat the NameNode every few seconds; a node silent
past the timeout is declared dead and its blocks re-replicated.  RAIDP
keeps the same machinery (paper §5 inherits it from HDFS) with one twist:
when the detector finds *two* dead disks in the same sweep that share a
superchunk, it runs the double-failure reconstruction instead of two
independent single recoveries.

:class:`ClusterMonitor` runs as simulation processes: one heartbeat
sender per DataNode and one detector loop.  Loops are stoppable so the
event heap can drain (`stop()`), and the detector exposes the recovery
reports it produced for inspection.

Failure-lifecycle semantics (the hardened behavior):

- heartbeats go to the NameNode's node (falling back to the first
  client's node, then to skipping the network charge entirely on
  degenerate single-endpoint clusters),
- the detector *spawns* recoveries as child processes, so a sweep is
  never blocked behind an in-flight recovery -- a second failure during
  a long rebuild is detected on schedule,
- a revived node re-enters through :meth:`rejoin`: it re-registers,
  sends a block report for reconciliation, has its orphaned/stale
  replicas purged, and leaves the ``_handled`` quarantine so a *second*
  failure of the same node is detectable again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.recovery import RecoveryManager, RecoveryOptions, RecoveryReport
from repro.errors import ReproError
from repro.hdfs.datanode import DataNode
from repro.obs.audit import active_auditor
from repro.sim.engine import Process
from repro.sim.network import Nic


@dataclass(frozen=True)
class MonitorConfig:
    """Detection cadence.  HDFS defaults are 3 s heartbeats and a 10.5
    minute staleness bound; the staleness bound here is shortened so
    tests and experiments converge quickly -- the protocol is identical."""

    heartbeat_interval: float = 3.0
    dead_after: float = 12.0
    sweep_interval: float = 3.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0 or self.sweep_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.dead_after < self.heartbeat_interval:
            raise ValueError("dead_after must cover at least one heartbeat")


class ClusterMonitor:
    """Heartbeat collection plus the automatic recovery trigger."""

    def __init__(
        self,
        dfs: Any,
        config: Optional[MonitorConfig] = None,
        recovery_options: Optional[RecoveryOptions] = None,
    ) -> None:
        self.dfs = dfs
        self.sim = dfs.sim
        self.config = config or MonitorConfig()
        self.recovery_options = recovery_options or RecoveryOptions()
        self.manager = RecoveryManager(dfs)
        self._last_heartbeat: Dict[str, float] = {}
        self._handled: Set[str] = set()
        self._running = False
        self._processes: List[Process] = []
        self.reports: List[RecoveryReport] = []
        #: Completion time of each entry in ``reports`` (same order) --
        #: the recovery end points of the fault->detect->recover timeline.
        self.report_times: List[float] = []
        self.detected: List[Tuple[float, Tuple[str, ...]]] = []
        #: In-flight recovery child processes (detection never blocks on
        #: them; they are kept so tests and drains can await them).
        self.recoveries: List[Process] = []
        #: (time, dead set, exception) per recovery that failed -- e.g. a
        #: receiver that died mid-remirror.  The next sweep sees the new
        #: casualty and recovers it in turn.
        self.recovery_errors: List[Tuple[float, Tuple[str, ...], ReproError]] = []
        #: (time, name) per node readmitted through :meth:`rejoin`.
        self.rejoined: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        now = self.sim.now
        for datanode in self.dfs.datanodes:
            self._last_heartbeat[datanode.name] = now
            self._processes.append(
                self.sim.process(
                    self._heartbeat_loop(datanode), name=f"hb:{datanode.name}"
                )
            )
        self._processes.append(
            self.sim.process(self._detector_loop(), name="detector")
        )

    def stop(self) -> None:
        """Let the loops drain so the simulation can finish."""
        self._running = False

    # ------------------------------------------------------------------
    # Heartbeats.
    # ------------------------------------------------------------------
    def _healthy(self, datanode: DataNode) -> bool:
        return datanode.alive and not datanode.disk.failed and datanode.node.alive

    def _heartbeat_target_nic(self, datanode: DataNode) -> Optional[Nic]:
        """NIC the heartbeat RPC lands on: the NameNode's node.

        Falls back to the first client's node (the historical endpoint)
        when the facade does not expose ``namenode_node``, and to None --
        no network charge -- when no endpoint exists at all (a bare
        cluster with neither attribute).  The DataNode collocated with
        the NameNode still charges its loopback flow, keeping every
        node's heartbeat on the same clock.
        """
        node = getattr(self.dfs, "namenode_node", None)
        if node is None:
            clients = getattr(self.dfs, "clients", None)
            if clients:
                node = clients[0].node
        if node is None:
            return None
        return node.primary_nic

    def _heartbeat_loop(self, datanode: DataNode) -> Generator:
        interval = self.config.heartbeat_interval
        while self._running:
            if self._healthy(datanode):
                # The heartbeat is a tiny control message; its network
                # cost is negligible and charged as the ack size.
                target_nic = self._heartbeat_target_nic(datanode)
                if target_nic is not None:
                    yield self.dfs.switch.transfer(
                        datanode.node.primary_nic,
                        target_nic,
                        self.dfs.config.ack_size,
                    )
                self._last_heartbeat[datanode.name] = self.sim.now
            yield self.sim.timeout(interval)
        return None

    def last_heartbeat(self, name: str) -> float:
        return self._last_heartbeat.get(name, float("-inf"))

    # ------------------------------------------------------------------
    # Detection and recovery.
    # ------------------------------------------------------------------
    def _stale_names(self) -> List[str]:
        deadline = self.sim.now - self.config.dead_after
        return [
            name
            for name, beat in self._last_heartbeat.items()
            if beat < deadline and name not in self._handled
        ]

    def _detector_loop(self) -> Generator:
        while self._running:
            yield self.sim.timeout(self.config.sweep_interval)
            stale = self._stale_names()
            if not stale:
                continue
            stale = self._with_doomed_partners(stale)
            self.detected.append((self.sim.now, tuple(sorted(stale))))
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "recovery", "detect", self.sim.now, dead=sorted(stale)
                )
            auditor = active_auditor()
            if auditor is not None and auditor.enabled:
                auditor.audit(self.sim, self.sim.now, event="detect")
            # Quarantine *before* spawning: the next sweep (which is not
            # blocked behind this recovery) must not re-detect the set.
            self._handled.update(stale)
            self.recoveries.append(
                self.sim.process(
                    self._handle_failures(stale),
                    name=f"recovery:{'+'.join(sorted(stale))}",
                )
            )
        return None

    def _handle_failures(self, stale: List[str]) -> Generator:
        """Child-process body: run the right recovery for one dead set.

        Runs concurrently with further detection sweeps.  A recovery
        failing (say, its receiver died mid-remirror) is recorded in
        ``recovery_errors`` rather than crashing the monitor; the next
        sweep detects the new casualty independently.
        """
        trace = self.sim.trace
        t0 = self.sim.now
        try:
            yield from self._recover_set(stale)
        except ReproError as exc:
            self.recovery_errors.append(
                (self.sim.now, tuple(sorted(stale)), exc)
            )
        if trace.enabled:
            # Detection-to-restored window (covers every recovery the
            # dead set fanned out into).
            trace.complete(
                "recovery", "window", t0, self.sim.now, dead=sorted(stale)
            )
        return None

    def _with_doomed_partners(self, stale: List[str]) -> List[str]:
        """Expand a dead set with already-unhealthy superchunk partners.

        A simultaneous double failure can straddle the staleness bound by
        a fraction of a heartbeat; treating the halves as two independent
        single failures would make the first recovery read from the other
        (dead) disk.  Any sharing partner that is *currently* unhealthy
        has also stopped heartbeating -- it is doomed to be declared dead
        next sweep anyway -- so it is co-detected now and the pair gets
        the Lstor-assisted double recovery it needs.
        """
        layout = getattr(self.dfs, "layout", None)
        if layout is None:
            return list(stale)
        expanded = list(stale)
        index = 0
        while index < len(expanded):
            name = expanded[index]
            index += 1
            if name not in layout.disks:
                continue
            for sc_id in layout.superchunks_of(name):
                partner = layout.superchunk(sc_id).mirror_of(name)
                if partner in expanded or partner in self._handled:
                    continue
                if not self._healthy(self.dfs.namenode.datanode(partner)):
                    expanded.append(partner)
        return expanded

    def _recover_set(self, stale: List[str]) -> Generator:
        # Pair up disks that share a superchunk: those need the
        # Lstor-assisted double recovery; the rest are single failures.
        remaining = list(stale)
        while len(remaining) >= 2:
            pair = self._find_sharing_pair(remaining)
            if pair is None:
                break
            a, b = pair
            remaining.remove(a)
            remaining.remove(b)
            report = yield from self.manager.double_failure_body(
                a, b, options=self.recovery_options, tolerate_loss=True
            )
            self._note_report(report, stale)
        for name in remaining:
            report = yield from self.manager.single_failure_body(
                name, options=self.recovery_options
            )
            self._note_report(report, stale)
        return None

    def _note_report(self, report: RecoveryReport, stale: List[str]) -> None:
        self.reports.append(report)
        self.report_times.append(self.sim.now)
        auditor = active_auditor()
        if auditor is not None and auditor.enabled:
            auditor.audit(self.sim, self.sim.now, event="recovered")
        # Remirrors that a stacked failure aborted mid-copy: the metadata
        # rolled back, so the next sweep can retry or degrade gracefully,
        # but the operator should still see them.
        for _entry, exc in report.failed_remirrors:
            self.recovery_errors.append(
                (self.sim.now, tuple(sorted(stale)), exc)
            )
        for _sc_id, exc in report.lost_superchunks:
            self.recovery_errors.append(
                (self.sim.now, tuple(sorted(stale)), exc)
            )

    def _find_sharing_pair(self, names: List[str]) -> Optional[Tuple[str, str]]:
        layout = self.dfs.layout
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if a in layout.disks and b in layout.disks and layout.shared(a, b) is not None:
                    return a, b
        return None

    # ------------------------------------------------------------------
    # Rejoin (the revival path).
    # ------------------------------------------------------------------
    def rejoin(self, datanode: DataNode) -> Dict[str, List[str]]:
        """Readmit a revived DataNode (node restarted, disk replaced).

        The HDFS re-registration protocol: the node comes back up, sends
        a block report, and the NameNode reconciles it against the block
        map.  Replicas that are still current are re-adopted; orphaned
        and stale replicas are purged.  A node whose data was already
        re-homed by recovery (its disk left the layout) restarts from
        wiped media.  Either way the node leaves the ``_handled``
        quarantine and its staleness clock restarts, so a *second*
        failure is detectable.  Returns the reconciliation verdict.
        """
        name = datanode.name
        datanode.alive = True
        layout = getattr(self.dfs, "layout", None)
        in_layout = layout is None or name in layout.disks
        readopted: List[str] = []
        orphans: List[str] = []
        stale: List[str] = []
        if in_layout:
            held = datanode.block_report()
            readopt = getattr(self.dfs.namenode, "readopt_replicas", None)
            if readopt is not None:
                readopted, orphans, stale = readopt(
                    name, held, version_of=datanode.version_of
                )
            for block_name in list(orphans) + list(stale):
                datanode.purge_block(block_name)
        else:
            # Recovery already re-homed everything this disk held; the
            # replacement starts empty (fresh parity, clean journal) and
            # re-enters the layout as an empty disk so it can legally
            # receive superchunks again.
            orphans = datanode.block_report()
            datanode.wipe_storage()
            layout.add_disk(name)
        self._handled.discard(name)
        self._last_heartbeat[name] = self.sim.now
        self.rejoined.append((self.sim.now, name))
        return {"readopted": readopted, "orphans": orphans, "stale": stale}
