"""Cluster monitoring: heartbeats, failure detection, automatic recovery.

HDFS DataNodes heartbeat the NameNode every few seconds; a node silent
past the timeout is declared dead and its blocks re-replicated.  RAIDP
keeps the same machinery (paper §5 inherits it from HDFS) with one twist:
when the detector finds *two* dead disks in the same sweep that share a
superchunk, it runs the double-failure reconstruction instead of two
independent single recoveries.

:class:`ClusterMonitor` runs as simulation processes: one heartbeat
sender per DataNode and one detector loop.  Loops are stoppable so the
event heap can drain (`stop()`), and the detector exposes the recovery
reports it produced for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.recovery import RecoveryManager, RecoveryOptions, RecoveryReport
from repro.sim.engine import Process


@dataclass(frozen=True)
class MonitorConfig:
    """Detection cadence.  HDFS defaults are 3 s heartbeats and a 10.5
    minute staleness bound; the staleness bound here is shortened so
    tests and experiments converge quickly -- the protocol is identical."""

    heartbeat_interval: float = 3.0
    dead_after: float = 12.0
    sweep_interval: float = 3.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0 or self.sweep_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.dead_after < self.heartbeat_interval:
            raise ValueError("dead_after must cover at least one heartbeat")


class ClusterMonitor:
    """Heartbeat collection plus the automatic recovery trigger."""

    def __init__(
        self,
        dfs,
        config: Optional[MonitorConfig] = None,
        recovery_options: Optional[RecoveryOptions] = None,
    ) -> None:
        self.dfs = dfs
        self.sim = dfs.sim
        self.config = config or MonitorConfig()
        self.recovery_options = recovery_options or RecoveryOptions()
        self.manager = RecoveryManager(dfs)
        self._last_heartbeat: Dict[str, float] = {}
        self._handled: Set[str] = set()
        self._running = False
        self._processes: List[Process] = []
        self.reports: List[RecoveryReport] = []
        self.detected: List[Tuple[float, Tuple[str, ...]]] = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        now = self.sim.now
        for datanode in self.dfs.datanodes:
            self._last_heartbeat[datanode.name] = now
            self._processes.append(
                self.sim.process(
                    self._heartbeat_loop(datanode), name=f"hb:{datanode.name}"
                )
            )
        self._processes.append(
            self.sim.process(self._detector_loop(), name="detector")
        )

    def stop(self) -> None:
        """Let the loops drain so the simulation can finish."""
        self._running = False

    # ------------------------------------------------------------------
    # Heartbeats.
    # ------------------------------------------------------------------
    def _healthy(self, datanode) -> bool:
        return datanode.alive and not datanode.disk.failed and datanode.node.alive

    def _heartbeat_loop(self, datanode) -> Generator:
        interval = self.config.heartbeat_interval
        while self._running:
            if self._healthy(datanode):
                # The heartbeat is a tiny control message; its network
                # cost is negligible and charged as the ack size.
                flow = self.dfs.switch.transfer(
                    datanode.node.primary_nic,
                    self.dfs.clients[0].node.primary_nic,
                    self.dfs.config.ack_size,
                )
                yield flow
                self._last_heartbeat[datanode.name] = self.sim.now
            yield self.sim.timeout(interval)
        return None

    def last_heartbeat(self, name: str) -> float:
        return self._last_heartbeat.get(name, float("-inf"))

    # ------------------------------------------------------------------
    # Detection and recovery.
    # ------------------------------------------------------------------
    def _stale_names(self) -> List[str]:
        deadline = self.sim.now - self.config.dead_after
        return [
            name
            for name, beat in self._last_heartbeat.items()
            if beat < deadline and name not in self._handled
        ]

    def _detector_loop(self) -> Generator:
        while self._running:
            yield self.sim.timeout(self.config.sweep_interval)
            stale = self._stale_names()
            if not stale:
                continue
            self.detected.append((self.sim.now, tuple(sorted(stale))))
            yield from self._handle_failures(stale)
        return None

    def _handle_failures(self, stale: List[str]) -> Generator:
        """Run the right recovery for this sweep's dead set."""
        self._handled.update(stale)
        # Pair up disks that share a superchunk: those need the
        # Lstor-assisted double recovery; the rest are single failures.
        remaining = list(stale)
        while len(remaining) >= 2:
            pair = self._find_sharing_pair(remaining)
            if pair is None:
                break
            a, b = pair
            remaining.remove(a)
            remaining.remove(b)
            report = yield from self.manager.double_failure_body(
                a, b, options=self.recovery_options
            )
            self.reports.append(report)
        for name in remaining:
            report = yield from self.manager.single_failure_body(
                name, options=self.recovery_options
            )
            self.reports.append(report)
        return None

    def _find_sharing_pair(self, names: List[str]) -> Optional[Tuple[str, str]]:
        layout = self.dfs.layout
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if a in layout.disks and b in layout.disks and layout.shared(a, b) is not None:
                    return a, b
        return None
