"""RAIDP-aware DFS client: degraded reads through the Lstor (paper §3.4).

Between a double failure and the end of recovery, blocks whose two
replicas are both gone are still *readable*: "Reading is handled similar
to erasure coded systems, but the scope of impact is substantially
smaller" -- the client assembles the block from a failed disk's Lstor
parity and the surviving mirrors of that disk's other superchunks at the
same slot.  Expensive (it touches up to N-1 nodes, like a degraded
erasure-coded read), but it keeps data available during the recovery
window.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.layout import Layout
from repro.core.node import RaidpDataNode
from repro.core.placement import SuperchunkMap
from repro.errors import BlockMissingError
from repro.hdfs.block import BlockLocations
from repro.hdfs.client import DfsClient
from repro.storage.payload import XorAccumulator


class RaidpClient(DfsClient):
    """A DFS client that falls back to Lstor-assisted degraded reads."""

    def __init__(
        self,
        *args: Any,
        layout: Layout,
        superchunk_map: SuperchunkMap,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.layout = layout
        self.map = superchunk_map
        self.stats_degraded_reads = 0

    def read_block(
        self, locations: BlockLocations, prefer_local: Optional[bool] = None
    ) -> Generator:
        try:
            payload = yield from super().read_block(locations, prefer_local)
        except BlockMissingError:
            payload = yield from self.degraded_read(locations)
        return payload

    def degraded_read(self, locations: BlockLocations) -> Generator:
        """Assemble a doubly-lost block from an Lstor plus mirrors."""
        block = locations.block
        sc_id, slot = locations.sc_id, locations.slot
        trace = self.sim.trace
        t0 = self.sim.now
        if sc_id is None or slot is None:
            raise BlockMissingError(
                f"no live replica of {block.name} and no superchunk placement"
            )
        source = self._pick_parity_source(sc_id)
        # Parity block ships from the failed disk's (alive) node.
        accum = XorAccumulator(source.lstors.primary.parity_block(slot))
        yield self.switch.transfer(
            source.node.primary_nic, self.node.primary_nic, block.size
        )
        # XOR in the mirrors of the source disk's other superchunks.
        for other_sc in self.layout.superchunks_of(source.name):
            if other_sc == sc_id:
                continue
            mirror_name = self.layout.superchunk(other_sc).mirror_of(source.name)
            mirror = self.namenode.datanode(mirror_name)
            if not mirror.alive:
                raise BlockMissingError(
                    f"degraded read of {block.name} needs dead mirror {mirror_name}"
                )
            assert isinstance(mirror, RaidpDataNode)
            sibling_name = mirror.block_in_slot(other_sc, slot)
            payload = mirror.slot_payload(other_sc, slot)
            if sibling_name is not None:
                yield from mirror.fs.read(sibling_name, 0, block.size)
            yield self.switch.transfer(
                mirror.node.primary_nic, self.node.primary_nic, block.size
            )
            accum.add(payload)
        # The XOR chain is a CPU pass on the client.
        yield from self.node.compute_bytes(
            block.size * max(len(self.layout.superchunks_of(source.name)), 1),
            intensity=0.2,
        )
        self.stats_degraded_reads += 1
        if trace.enabled:
            trace.complete(
                "hdfs", "degraded_read", t0, self.sim.now,
                block=block.name, sc=sc_id, source=source.name,
            )
        return accum.result()

    def _pick_parity_source(self, sc_id: int) -> RaidpDataNode:
        """A home of the lost superchunk whose node and Lstor survive."""
        sc = self.layout.superchunk(sc_id)
        for home in sorted(sc.disks):
            datanode = self.namenode.datanode(home)
            assert isinstance(datanode, RaidpDataNode)
            if datanode.node.alive and not datanode.lstors.primary.failed:
                return datanode
        raise BlockMissingError(
            f"superchunk {sc_id}: no reachable Lstor for a degraded read"
        )
