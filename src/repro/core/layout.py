"""Superchunk layout: the 1-sharing / 1-mirroring invariants (paper §3.1).

A *superchunk* is a uniformly-sized contiguous disk region, mirrored
bitwise on exactly one other disk (1-mirroring).  The layout guarantees
that no two disks share more than one superchunk (1-sharing), so a double
disk failure loses at most one superchunk -- which the Lstors can then
rebuild.

:class:`Layout` is the incremental bookkeeper: superchunks are added one
mirror-pair at a time and every invariant is enforced at the point of
mutation.  :func:`rotational_layout` builds the paper's Fig. 3
construction (shifted row pairs) for any disk count, yielding the maximal
N-1 superchunks per disk.

Terminology used throughout the core package:

- ``disk id`` -- opaque string naming a disk (one per DataNode disk).
- ``superchunk id`` -- small integer, unique across the cluster.
- ``slot`` -- the position of a superchunk within its disk (superchunks
  are packed contiguously, so byte offset = slot * superchunk_size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro import units
from repro.errors import CapacityError, LayoutError
from repro.sim.snapshot import InlineState


@dataclass(frozen=True)
class LayoutSpec(InlineState):
    """Geometry shared by every disk participating in a layout."""

    superchunk_size: int = 6 * units.GiB  # the paper's evaluation size
    block_size: int = 64 * units.MiB  # HDFS default
    max_superchunks_per_disk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.superchunk_size <= 0 or self.block_size <= 0:
            raise ValueError("sizes must be positive")
        if self.superchunk_size % self.block_size != 0:
            raise ValueError("superchunk size must be a multiple of block size")

    @property
    def blocks_per_superchunk(self) -> int:
        return self.superchunk_size // self.block_size


@dataclass(frozen=True)
class Superchunk(InlineState):
    """One mirrored pair: the same content lives on two disks."""

    sc_id: int
    disk_a: str
    disk_b: str
    slot_a: int
    slot_b: int

    @property
    def disks(self) -> FrozenSet[str]:
        return frozenset((self.disk_a, self.disk_b))

    def slot_on(self, disk: str) -> int:
        if disk == self.disk_a:
            return self.slot_a
        if disk == self.disk_b:
            return self.slot_b
        raise LayoutError(f"superchunk {self.sc_id} is not on disk {disk}")

    def mirror_of(self, disk: str) -> str:
        if disk == self.disk_a:
            return self.disk_b
        if disk == self.disk_b:
            return self.disk_a
        raise LayoutError(f"superchunk {self.sc_id} is not on disk {disk}")


class Layout(InlineState):
    """Incremental superchunk layout with invariant enforcement.

    ``domains`` optionally maps each disk to a failure domain (a server,
    a rack); when given, a superchunk's two copies must live in distinct
    domains (paper §3.1: "replicas should be placed not just on
    different devices but also in different failure domains"), so losing
    an entire domain never loses both copies of anything.
    """

    def __init__(
        self,
        disks: Iterable[str],
        spec: Optional[LayoutSpec] = None,
        domains: Optional[Dict[str, str]] = None,
    ) -> None:
        self.spec = spec or LayoutSpec()
        self._disks: List[str] = list(disks)
        if len(set(self._disks)) != len(self._disks):
            raise LayoutError("duplicate disk ids")
        self._domains = dict(domains) if domains else None
        if self._domains is not None:
            missing = [d for d in self._disks if d not in self._domains]
            if missing:
                raise LayoutError(f"disks without a failure domain: {missing}")
        self._superchunks: Dict[int, Superchunk] = {}
        # disk -> ordered slots (superchunk id per slot).
        self._slots: Dict[str, List[int]] = {d: [] for d in self._disks}
        # unordered disk pair -> superchunk id (the 1-sharing index).
        self._pair_index: Dict[FrozenSet[str], int] = {}
        self._next_id = 0

    def domain_of(self, disk: str) -> Optional[str]:
        """The disk's failure domain, or None when domains are unused."""
        if self._domains is None:
            return None
        return self._domains[disk]

    def same_domain(self, disk_a: str, disk_b: str) -> bool:
        """True iff both disks sit in one configured failure domain."""
        return (
            self._domains is not None
            and self._domains[disk_a] == self._domains[disk_b]
        )

    # Backwards-compatible private alias used internally.
    _same_domain = same_domain

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def disks(self) -> List[str]:
        return list(self._disks)

    @property
    def superchunks(self) -> Dict[int, Superchunk]:
        return dict(self._superchunks)

    def superchunk(self, sc_id: int) -> Superchunk:
        try:
            return self._superchunks[sc_id]
        except KeyError:
            raise LayoutError(f"unknown superchunk {sc_id}") from None

    def superchunks_of(self, disk: str) -> List[int]:
        """Superchunk ids on ``disk``, ordered by slot."""
        try:
            return list(self._slots[disk])
        except KeyError:
            raise LayoutError(f"unknown disk {disk}") from None

    def shared(self, disk_a: str, disk_b: str) -> Optional[int]:
        """The superchunk the two disks share, if any."""
        return self._pair_index.get(frozenset((disk_a, disk_b)))

    def sharing_partners(self, disk: str) -> List[str]:
        """Disks that share a superchunk with ``disk``."""
        return [self._superchunks[sc].mirror_of(disk) for sc in self._slots[disk]]

    def max_superchunks(self, disk: str) -> int:
        limit = len(self._disks) - 1
        if self.spec.max_superchunks_per_disk is not None:
            limit = min(limit, self.spec.max_superchunks_per_disk)
        return limit

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def can_pair(self, disk_a: str, disk_b: str) -> bool:
        """True if a new superchunk may legally span these two disks."""
        if disk_a == disk_b:
            return False
        if disk_a not in self._slots or disk_b not in self._slots:
            return False
        if self._same_domain(disk_a, disk_b):
            return False  # both copies in one failure domain
        if frozenset((disk_a, disk_b)) in self._pair_index:
            return False  # would violate 1-sharing
        return (
            len(self._slots[disk_a]) < self.max_superchunks(disk_a)
            and len(self._slots[disk_b]) < self.max_superchunks(disk_b)
        )

    def add_disk(self, disk: str, domain: Optional[str] = None) -> None:
        """Admit a (replacement) disk that holds no superchunks yet.

        The rejoin path uses this: a node whose data was re-homed during
        recovery restarts from wiped media, and its disk re-enters the
        layout empty -- a legal receiver for future superchunks.  The
        disk's old failure domain is remembered across removal, so
        ``domain`` is only needed for genuinely new disks.
        """
        if disk in self._slots:
            raise LayoutError(f"disk {disk} already in layout")
        if self._domains is not None:
            if domain is not None:
                self._domains[disk] = domain
            elif disk not in self._domains:
                raise LayoutError(f"disk {disk} needs a failure domain")
        self._disks.append(disk)
        self._slots[disk] = []

    def add_superchunk(self, disk_a: str, disk_b: str) -> Superchunk:
        """Allocate a new mirrored superchunk across two disks."""
        if disk_a == disk_b:
            raise LayoutError(f"superchunk mirrors must be distinct disks: {disk_a}")
        if self._same_domain(disk_a, disk_b):
            raise LayoutError(
                f"{disk_a} and {disk_b} share failure domain "
                f"{self.domain_of(disk_a)!r}"
            )
        for disk in (disk_a, disk_b):
            if disk not in self._slots:
                raise LayoutError(f"unknown disk {disk}")
            if len(self._slots[disk]) >= self.max_superchunks(disk):
                raise CapacityError(f"disk {disk} is full of superchunks")
        pair = frozenset((disk_a, disk_b))
        if pair in self._pair_index:
            raise LayoutError(
                f"disks {disk_a} and {disk_b} already share superchunk "
                f"{self._pair_index[pair]} (1-sharing)"
            )
        sc = Superchunk(
            sc_id=self._next_id,
            disk_a=disk_a,
            disk_b=disk_b,
            slot_a=len(self._slots[disk_a]),
            slot_b=len(self._slots[disk_b]),
        )
        self._next_id += 1
        self._superchunks[sc.sc_id] = sc
        self._slots[disk_a].append(sc.sc_id)
        self._slots[disk_b].append(sc.sc_id)
        self._pair_index[pair] = sc.sc_id
        return sc

    def remove_disk(self, disk: str) -> List[Superchunk]:
        """Drop a failed disk; returns its superchunks (now un-mirrored).

        The superchunks remain in the layout (their surviving copy is
        still addressable); re-mirroring them is the recovery planner's
        job via :meth:`remirror`.
        """
        if disk not in self._slots:
            raise LayoutError(f"unknown disk {disk}")
        orphans = [self._superchunks[sc] for sc in self._slots[disk]]
        for sc in orphans:
            self._pair_index.pop(sc.disks, None)
        del self._slots[disk]
        self._disks.remove(disk)
        return orphans

    def remirror(self, sc_id: int, new_disk: str) -> Superchunk:
        """Re-home one side of a superchunk onto ``new_disk``.

        Used after a disk failure: the surviving copy stays put, the lost
        copy is re-created on ``new_disk``.  All invariants re-checked.
        """
        old = self.superchunk(sc_id)
        survivors = [d for d in (old.disk_a, old.disk_b) if d in self._slots]
        if len(survivors) != 1:
            raise LayoutError(
                f"superchunk {sc_id} has {len(survivors)} surviving copies; "
                "remirror applies only to singly-homed superchunks"
            )
        survivor = survivors[0]
        if new_disk == survivor:
            raise LayoutError("cannot mirror a superchunk onto its own disk")
        if new_disk not in self._slots:
            raise LayoutError(f"unknown disk {new_disk}")
        if self._same_domain(survivor, new_disk):
            raise LayoutError(
                f"{survivor} and {new_disk} share failure domain "
                f"{self.domain_of(survivor)!r}"
            )
        pair = frozenset((survivor, new_disk))
        if pair in self._pair_index:
            raise LayoutError(
                f"disks {survivor} and {new_disk} already share (1-sharing)"
            )
        if len(self._slots[new_disk]) >= self.max_superchunks(new_disk):
            raise CapacityError(f"disk {new_disk} is full of superchunks")
        updated = Superchunk(
            sc_id=sc_id,
            disk_a=survivor,
            disk_b=new_disk,
            slot_a=old.slot_on(survivor),
            slot_b=len(self._slots[new_disk]),
        )
        self._superchunks[sc_id] = updated
        self._slots[new_disk].append(sc_id)
        self._pair_index[pair] = sc_id
        return updated

    def restore_superchunk(self, previous: Superchunk, receiver: str) -> None:
        """Undo a :meth:`remirror` whose data copy failed mid-flight.

        The receiver gives the superchunk back and the pre-remirror
        record is reinstated, so the chunk returns to its singly-homed
        (orphan) state and a later recovery can re-plan it.  The old
        pair index entry is only restored when both old homes are still
        in the layout (the usual case -- one of them is a removed dead
        disk -- leaves no pair entry, matching post-``remove_disk``
        state).
        """
        sc_id = previous.sc_id
        current = self._superchunks.get(sc_id)
        if current is None:
            raise LayoutError(f"unknown superchunk {sc_id}")
        self._pair_index.pop(current.disks, None)
        slots = self._slots.get(receiver)
        if slots is not None and sc_id in slots:
            slots.remove(sc_id)
        self._superchunks[sc_id] = previous
        if all(d in self._slots for d in previous.disks):
            self._pair_index[previous.disks] = sc_id

    def rehome(self, sc_id: int, disk_a: str, disk_b: str) -> Superchunk:
        """Re-create a fully-orphaned superchunk on a fresh disk pair.

        Used after a double failure destroyed both homes of the shared
        superchunk: the reconstructed content is placed on a new legal
        pair.  All invariants re-checked.
        """
        old = self.superchunk(sc_id)
        if any(d in self._slots for d in old.disks):
            raise LayoutError(
                f"superchunk {sc_id} still has a live home; use remirror"
            )
        if disk_a == disk_b:
            raise LayoutError("superchunk mirrors must be distinct disks")
        if self._same_domain(disk_a, disk_b):
            raise LayoutError(
                f"{disk_a} and {disk_b} share failure domain "
                f"{self.domain_of(disk_a)!r}"
            )
        for disk in (disk_a, disk_b):
            if disk not in self._slots:
                raise LayoutError(f"unknown disk {disk}")
            if len(self._slots[disk]) >= self.max_superchunks(disk):
                raise CapacityError(f"disk {disk} is full of superchunks")
        pair = frozenset((disk_a, disk_b))
        if pair in self._pair_index:
            raise LayoutError(
                f"disks {disk_a} and {disk_b} already share (1-sharing)"
            )
        updated = Superchunk(
            sc_id=sc_id,
            disk_a=disk_a,
            disk_b=disk_b,
            slot_a=len(self._slots[disk_a]),
            slot_b=len(self._slots[disk_b]),
        )
        self._superchunks[sc_id] = updated
        self._slots[disk_a].append(sc_id)
        self._slots[disk_b].append(sc_id)
        self._pair_index[pair] = sc_id
        return updated

    # ------------------------------------------------------------------
    # Verification and bounds.
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Re-check every invariant from scratch; raises on violation."""
        seen_pairs: Set[FrozenSet[str]] = set()
        for sc in self._superchunks.values():
            live = [d for d in (sc.disk_a, sc.disk_b) if d in self._slots]
            if len(set(live)) != len(live):
                raise LayoutError(f"superchunk {sc.sc_id} mirrored onto one disk")
            if len(live) == 2:
                pair = sc.disks
                if pair in seen_pairs:
                    raise LayoutError(
                        f"1-sharing violated: {sorted(pair)} share two superchunks"
                    )
                seen_pairs.add(pair)
                if self._same_domain(*sorted(pair)):
                    raise LayoutError(
                        f"superchunk {sc.sc_id} mirrored within one failure domain"
                    )
            for disk in live:
                slot = sc.slot_on(disk)
                if self._slots[disk][slot] != sc.sc_id:
                    raise LayoutError(
                        f"slot table corrupt: disk {disk} slot {slot}"
                    )
        # Note: we do not re-check the N-1 per-disk bound here.  It is an
        # *allocation-time* constraint; after a failure shrinks N, the
        # surviving disks may transiently hold up to old-N minus one
        # superchunks until recovery rearranges them.
        if self.spec.max_superchunks_per_disk is not None:
            for disk, slots in self._slots.items():
                if len(slots) > self.spec.max_superchunks_per_disk:
                    raise LayoutError(f"disk {disk} exceeds its superchunk cap")

    @property
    def is_fully_mirrored(self) -> bool:
        """True when every superchunk currently has both copies."""
        return all(
            sum(1 for d in sc.disks if d in self._slots) == 2
            for sc in self._superchunks.values()
        )

    @staticmethod
    def max_total_superchunks(num_disks: int) -> int:
        """The paper's bound: at most N(N-1) superchunk *copies* / 2 pairs.

        Each disk holds at most N-1 superchunks and each superchunk
        occupies two disks, so the system holds at most N(N-1)/2 distinct
        superchunks.
        """
        return num_disks * (num_disks - 1) // 2

    @staticmethod
    def max_after_failures(num_disks: int, failures: int) -> int:
        """Distinct superchunks re-arrangeable after ``failures`` losses."""
        n = num_disks - failures
        return max(n * (n - 1) // 2, 0)

    def min_superchunk_size(self, disk_capacity: int) -> int:
        """Minimal superchunk size so a disk's capacity fits in N-1 chunks."""
        denom = len(self._disks) - 1
        if denom <= 0:
            raise LayoutError("need at least two disks")
        return -(-disk_capacity // denom)  # ceiling division

    # ------------------------------------------------------------------
    # Rendering (Fig. 2 / Fig. 3 style).
    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII table: columns are disks, rows are slots (cf. Fig. 3)."""
        disks = self._disks
        depth = max((len(self._slots[d]) for d in disks), default=0)
        header = "      " + " ".join(f"{d:>5}" for d in disks)
        lines = [header]
        for row in range(depth):
            cells = []
            for disk in disks:
                slots = self._slots[disk]
                cells.append(f"{slots[row]:>5}" if row < len(slots) else "    .")
            lines.append(f"S{row:<4} " + " ".join(cells))
        return "\n".join(lines)


def domain_aware_layout(
    domains: Dict[str, str],
    superchunks_per_disk: int,
    spec: Optional[LayoutSpec] = None,
) -> Layout:
    """Build a layout over multi-disk servers (or racks).

    ``domains`` maps every disk to its failure domain.  Pairing is
    greedy: the emptiest disk pairs with the emptiest legal disk in a
    *different* domain, which keeps load even and guarantees that a
    whole-domain failure (the paper's 12-disks-per-server example) never
    destroys a superchunk -- every copy it takes down has a live mirror
    elsewhere, so recovery is pure re-replication with no reconstruction.
    """
    if superchunks_per_disk < 1:
        raise LayoutError("need at least one superchunk per disk")
    num_domains = len(set(domains.values()))
    if num_domains < 2:
        raise LayoutError("domain-aware layout needs at least two domains")
    layout = Layout(sorted(domains), spec, domains=domains)

    def fill(disk: str) -> int:
        return len(layout.superchunks_of(disk))

    progress = True
    while progress:
        progress = False
        pending = sorted(
            (d for d in layout.disks if fill(d) < superchunks_per_disk),
            key=lambda d: (fill(d), d),
        )
        for disk in pending:
            partners = sorted(
                (p for p in layout.disks if layout.can_pair(disk, p)),
                key=lambda p: (fill(p), p),
            )
            partner = next(
                (p for p in partners if fill(p) < superchunks_per_disk), None
            )
            if partner is None:
                continue
            layout.add_superchunk(disk, partner)
            progress = True
    layout.verify()
    shortfall = [
        d for d in layout.disks if fill(d) < superchunks_per_disk
    ]
    if shortfall:
        raise CapacityError(
            f"could not reach {superchunks_per_disk} superchunks on {shortfall}; "
            "add disks or domains"
        )
    return layout


def rotational_layout(
    num_disks: int,
    superchunks_per_disk: Optional[int] = None,
    spec: Optional[LayoutSpec] = None,
    disk_names: Optional[Sequence[str]] = None,
) -> Layout:
    """Build the paper's Fig. 3 construction for ``num_disks`` disks.

    Rows come in pairs: the 2i-th row repeats the (2i-1)-th row shifted by
    ``i`` columns, so row-pair ``i`` pairs every disk with the disk ``i``
    columns away.  Using each shift ``i`` at most once keeps 1-sharing,
    and distinct shifts ``1..floor((N-1)/2)`` give every disk up to
    ``N-1`` superchunks (for even N the final shift ``N/2`` contributes a
    half row, since a full row would pair each opposite-disk couple
    twice).
    """
    if num_disks < 2:
        raise LayoutError("a RAIDP layout needs at least two disks")
    names = list(disk_names) if disk_names is not None else [f"d{i}" for i in range(num_disks)]
    if len(names) != num_disks:
        raise LayoutError("disk_names length must equal num_disks")
    layout = Layout(names, spec)
    target = superchunks_per_disk if superchunks_per_disk is not None else num_disks - 1
    if target > num_disks - 1:
        raise CapacityError(
            f"at most {num_disks - 1} superchunks per disk with {num_disks} disks"
        )
    placed = {name: 0 for name in names}
    max_shift = num_disks // 2
    for shift in range(1, max_shift + 1):
        if all(count >= target for count in placed.values()):
            break
        half_row = (num_disks % 2 == 0) and (shift == num_disks // 2)
        columns = range(num_disks // 2) if half_row else range(num_disks)
        for col in columns:
            a = names[col]
            b = names[(col + shift) % num_disks]
            if placed[a] >= target or placed[b] >= target:
                continue
            if not layout.can_pair(a, b):
                continue
            layout.add_superchunk(a, b)
            placed[a] += 1
            placed[b] += 1
    layout.verify()
    return layout
