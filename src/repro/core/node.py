"""RAIDP DataNode: superchunk directories, Lstor interposition, journal.

Extends the baseline :class:`~repro.hdfs.datanode.DataNode` with the
paper's Section 5 machinery:

- block files live at fixed offsets inside preallocated superchunk
  regions (``fs_policy="fixed"``),
- every block write updates the disk's Lstor parity at the block's slot,
- writes are journaled; the record clears when the mirror's
  acknowledgment arrives,
- the *update-oriented* variant reads old data before overwriting it
  (read-modify-write), the *base* variant treats reused slots as null
  because deleted-block parity is folded in during idle time.

The logical parity ledger is **always** kept bit-exact (deferred work is
free in simulated time, not skipped), so the recovery invariants hold in
every configuration; only the *charged time* differs between variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro import units
from repro.core.journal import JournalRecord, RecordState
from repro.core.layout import Layout
from repro.core.lstor import LstorStack
from repro.core.placement import SuperchunkMap
from repro.errors import DfsError
from repro.hdfs.block import Block, BlockLocations
from repro.hdfs.config import DfsConfig
from repro.hdfs.datanode import DataNode
from repro.sim.disk import Disk
from repro.sim.engine import Event, Simulator
from repro.sim.network import Switch
from repro.sim.node import Node
from repro.storage.payload import ContentFactory, Payload
from repro.sim.snapshot import InlineState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hdfs.namenode import NameNode


@dataclass(frozen=True)
class RaidpConfig(InlineState):
    """Feature switches and device parameters of the RAIDP variant.

    The Fig. 8 ablation toggles ``enable_parity`` ("+lstor") and
    ``enable_journal`` ("+journal") on top of the bare superchunk layout;
    ``optimized`` selects block accumulation plus the writer lock;
    ``update_oriented`` enables the read-before-write ("re-write")
    variant with preallocated superchunk files.
    """

    enable_parity: bool = True
    enable_journal: bool = True
    optimized: bool = True
    update_oriented: bool = False
    lstors_per_disk: int = 1
    lstor_write_rate: float = 1.2 * units.GB
    journal_capacity: int = 128 * units.MiB
    #: Fraction of old data served from the page cache on the
    #: read-modify-write path.  The paper's methodology repeats each
    #: measurement five times over the same preallocated files, so a
    #: share of the "old" data is still cached from the previous run --
    #: which is how the measured re-write overhead (21%) lands below the
    #: 4-I/Os-vs-3 bound of 33%.
    old_data_cache_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.lstors_per_disk < 1:
            raise ValueError("need at least one Lstor per disk")
        if self.enable_journal and not self.enable_parity:
            raise ValueError("the journal protects parity; enable parity first")


class RaidpDataNode(DataNode):
    """A DataNode whose disk is laid out in superchunks with an Lstor."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: DfsConfig,
        factory: ContentFactory,
        layout: Layout,
        superchunk_map: SuperchunkMap,
        raidp: RaidpConfig,
        switch: Switch,
        disk: Optional[Disk] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            sim, node, config, factory, fs_policy="fixed", disk=disk, name=name
        )
        self.layout = layout
        self.map = superchunk_map
        self.raidp = raidp
        self.switch = switch
        self.namenode: Optional["NameNode"] = None
        self.lstors = LstorStack(
            sim,
            factory,
            name=f"{self.name}.lstor",
            block_size=config.block_size,
            data_shards=max(len(layout.disks) - 1, 1),
            parity_count=raidp.lstors_per_disk,
            journal_capacity=raidp.journal_capacity,
            write_rate=raidp.lstor_write_rate,
        )
        # block name -> (sc_id, slot); (sc_id, slot) -> block name.
        self._slot_of: Dict[str, Tuple[int, int]] = {}
        self._block_at: Dict[Tuple[int, int], str] = {}
        # Acks that arrived before our own record committed.
        self._pending_acks: Dict[Tuple[str, int], int] = {}
        self._awaiting_ack: Dict[Tuple[str, int], JournalRecord] = {}

    def attach_namenode(self, namenode: "NameNode") -> None:
        self.namenode = namenode

    # ------------------------------------------------------------------
    # Superchunk geometry.
    # ------------------------------------------------------------------
    def superchunk_base(self, sc_id: int) -> int:
        """Physical byte offset of a superchunk on this disk."""
        sc = self.layout.superchunk(sc_id)
        return sc.slot_on(self.name) * self.layout.spec.superchunk_size

    def block_offset(self, sc_id: int, slot: int) -> int:
        return self.superchunk_base(sc_id) + slot * self.config.block_size

    def shard_index_of(self, sc_id: int) -> int:
        """RS data-shard index of a superchunk: its slot on this disk."""
        return self.layout.superchunk(sc_id).slot_on(self.name)

    # ------------------------------------------------------------------
    # Slot-level content tracking (overrides the name-keyed base store).
    # ------------------------------------------------------------------
    def block_in_slot(self, sc_id: int, slot: int) -> Optional[str]:
        return self._block_at.get((sc_id, slot))

    def slot_payload(self, sc_id: int, slot: int) -> Payload:
        """Current content of a block slot (zero when never written)."""
        name = self._block_at.get((sc_id, slot))
        if name is None:
            return self.factory.zero(self.config.block_size)
        return self.content_of(name)

    def _bind_slot(self, name: str, sc_id: int, slot: int) -> None:
        self._slot_of[name] = (sc_id, slot)
        self._block_at[(sc_id, slot)] = name

    # ------------------------------------------------------------------
    # Preallocation (update-oriented evaluation setup, paper §5).
    # ------------------------------------------------------------------
    def preallocate_superchunks(self) -> None:
        """Fill every local slot with deterministic content, parity-consistent.

        Charges no simulated time: this models the experiment setup, not
        the measured workload.  Both mirrors of a superchunk call this
        with the same factory, so contents agree bitwise.
        """
        for sc_id in self.layout.superchunks_of(self.name):
            for slot in range(self.map.slots_per_superchunk):
                if (sc_id, slot) in self._block_at:
                    continue
                name = f"pre_sc{sc_id}_s{slot}"
                payload = self.factory.make(name, 0, self.config.block_size)
                self.store_content(name, payload, 0)
                self._bind_slot(name, sc_id, slot)
                if self.raidp.enable_parity:
                    self.lstors.absorb_update(
                        self.shard_index_of(sc_id),
                        slot,
                        self.factory.zero(self.config.block_size),
                        payload,
                    )

    def block_report(self) -> list:
        """DFS blocks held, excluding preallocation fillers (which are
        local artifacts of the update-oriented setup, not DFS blocks)."""
        return [
            name for name in super().block_report() if not name.startswith("pre_sc")
        ]

    # ------------------------------------------------------------------
    # Block file lifecycle.
    # ------------------------------------------------------------------
    def create_block_file(self, locations: BlockLocations) -> None:
        if locations.sc_id is None or locations.slot is None:
            raise DfsError("RAIDP datanode requires superchunk placement")
        name = locations.block.name
        if not self.fs.exists(name):
            offset = self.block_offset(locations.sc_id, locations.slot)
            self.fs.create(name, fixed_offset=offset)

    def delete_block(self, locations: BlockLocations) -> None:
        """Drop a replica; parity removal is deferred-to-idle (free)."""
        sc_id, slot = locations.sc_id, locations.slot
        if sc_id is not None and slot is not None:
            old = self.slot_payload(sc_id, slot)
            if self.raidp.enable_parity and not old.is_zero():
                self.lstors.absorb_update(
                    self.shard_index_of(sc_id),
                    slot,
                    old,
                    self.factory.zero(self.config.block_size),
                )
            name = self._block_at.pop((sc_id, slot), None)
            if name is not None:
                self._slot_of.pop(name, None)
                self.drop_content(name)
        super().delete_block(locations)

    # ------------------------------------------------------------------
    # Write paths.
    # ------------------------------------------------------------------
    def _commit_block(self, locations: BlockLocations, payload: Payload) -> Generator:
        """Accumulated (optimized) write with parity + journal."""
        block = locations.block
        sc_id, slot = self._placement_of(locations)
        old = self.slot_payload(sc_id, slot)
        delta = old.xor(payload)

        record = None
        if self._journal_active():
            record = self.lstors.primary.journal.append(
                block_name=block.name,
                sc_id=sc_id,
                slot=slot,
                old_data=old,
                new_data=payload,
                parity_delta=delta,
                nbytes=block.size,
                now=self.sim.now,
                version=locations.version,
            )
            yield self.sim.timeout(
                self.lstors.primary.journal_write_time(block.size)
            )

        if self.raidp.update_oriented and self.raidp.enable_parity and not old.is_zero():
            # Read-modify-write: the old data is needed to compute the
            # parity delta before overwriting it (without parity there is
            # nothing to maintain, so no read -- Fig. 8's re-write
            # "only superchunks" bar matches the base variant).  The
            # rewrite is scheduled immediately after its related read
            # (§3.2), so it pays reduced rotational delay, not a seek.
            cached = self.raidp.old_data_cache_fraction
            yield from self.fs.read_modify_write(
                block.name,
                0,
                block.size,
                read_bytes=int(block.size * (1.0 - cached)),
            )
        else:
            yield from self.fs.write(block.name, 0, block.size)
        if self.config.sync_on_block_close:
            yield from self.fs.sync()

        if self.raidp.enable_parity:
            tag = ("w", block.name, locations.version)
            yield from self._absorb_parity(
                sc_id, slot, old, payload, block.size, tag=tag
            )

        self._install_content(locations, payload)
        if record is not None:
            if not self.lstors.primary.failed:
                self.lstors.primary.journal.mark_committed(record.record_id)
            yield from self._send_ack(locations, record)
        return None

    def _journal_active(self) -> bool:
        """Journal only while the primary Lstor lives.

        Losing the Lstor degrades the disk to plain replication: data
        keeps being served and written, but there is no parity to protect
        and no journal device to append to (paper's Lstor-loss case).
        """
        return self.raidp.enable_journal and not self.lstors.primary.failed

    def _stream_block(
        self,
        locations: BlockLocations,
        payload: Payload,
        inbound: Optional[Event],
    ) -> Generator:
        """Unoptimized path: journal, sync, and write per 64 KB packet.

        This is the configuration Fig. 8 shows going off the chart: every
        packet forces a journal record, a disk write at the block's fixed
        superchunk offset (ping-ponging against concurrent writers), and a
        sync.  Acks are charged as latency per packet rather than modeled
        as per-packet flows (pure event-count reduction; the dominant
        costs -- seeks and syncs -- are fully modeled).
        """
        block = locations.block
        sc_id, slot = self._placement_of(locations)
        old = self.slot_payload(sc_id, slot)
        # Without the journal, the page cache coalesces the 64 KB packets
        # and the disk sees write-back-sized chunks (smaller than the
        # streaming batch: concurrent dirtiers trigger early flushes); the
        # journal's sync-per-packet rule forces true packet-granularity
        # I/O, which is what sends this configuration off the chart.
        granularity = (
            self.config.packet_size
            if self.raidp.enable_journal
            else 5 * units.MiB // 8
        )
        offset = 0
        while offset < block.size:
            run = min(granularity, block.size - offset)
            record = None
            if self._journal_active():
                journal = self.lstors.primary.journal
                record = journal.append(
                    block_name=block.name,
                    sc_id=sc_id,
                    slot=slot,
                    old_data=old,
                    new_data=payload,
                    parity_delta=old.xor(payload),
                    nbytes=run,
                    now=self.sim.now,
                    version=locations.version,
                )
                yield self.sim.timeout(
                    self.lstors.primary.journal_write_time(run)
                )
            if (
                self.raidp.update_oriented
                and self.raidp.enable_parity
                and not old.is_zero()
            ):
                yield from self.fs.read(block.name, offset, run)
            yield from self.fs.write(block.name, offset, run)
            if record is not None:
                yield from self.fs.sync()
                # Per-packet remote acknowledgment, charged as latency
                # rather than modeled as per-packet flows (see docstring).
                yield self.sim.timeout(2 * self.switch.BASE_LATENCY)
                if not self.lstors.primary.failed:
                    journal.mark_committed(record.record_id)
                    journal.mark_acked(record.record_id)
                    journal.clear(record.record_id, self.sim.now)
            if self.raidp.enable_parity:
                yield self.sim.timeout(run / self.raidp.lstor_write_rate)
            offset += run
        if inbound is not None:
            yield inbound
        if self.config.sync_on_block_close:
            yield from self.fs.sync()
        if self.raidp.enable_parity:
            self.lstors.absorb_update(
                self.shard_index_of(sc_id),
                slot,
                old,
                payload,
                tag=("w", block.name, locations.version),
            )
        self._install_content(locations, payload)
        return None

    def _absorb_parity(
        self,
        sc_id: int,
        slot: int,
        old: Payload,
        new: Payload,
        nbytes: int,
        tag: Optional[Tuple] = None,
    ) -> Generator:
        """Logical parity update plus the device-transfer time charge."""
        self.lstors.absorb_update(self.shard_index_of(sc_id), slot, old, new, tag=tag)
        if self.lstors.alive_lstors():  # dead devices absorb and cost nothing
            yield self.sim.timeout(nbytes / self.raidp.lstor_write_rate)
        return None

    def _placement_of(self, locations: BlockLocations) -> Tuple[int, int]:
        if locations.sc_id is None or locations.slot is None:
            raise DfsError(
                f"block {locations.block.name} lacks a superchunk placement"
            )
        return locations.sc_id, locations.slot

    def _install_content(self, locations: BlockLocations, payload: Payload) -> None:
        sc_id, slot = self._placement_of(locations)
        previous = self._block_at.get((sc_id, slot))
        if previous is not None and previous != locations.block.name:
            self._slot_of.pop(previous, None)
            self.drop_content(previous)
        self.store_content(locations.block.name, payload, locations.version)
        self._bind_slot(locations.block.name, sc_id, slot)

    # ------------------------------------------------------------------
    # In-place sub-block updates (paper §8 future work).
    # ------------------------------------------------------------------
    def update_block_range(
        self, locations: BlockLocations, block_offset: int, nbytes: int
    ) -> Generator:
        """Sub-block read-modify-write with parity and journal.

        The range's old bytes are read (to compute the parity delta), the
        new bytes are written in their place, the Lstor absorbs the
        range-sized delta, and the journal records the update.  Both
        mirrors derive the new content deterministically from
        (block name, version), so they stay bit-identical.
        """
        block = locations.block
        sc_id, slot = self._placement_of(locations)
        if block_offset < 0 or block_offset + nbytes > block.size:
            raise DfsError(
                f"update outside block {block.name}: "
                f"[{block_offset}, {block_offset + nbytes})"
            )
        old = self.slot_payload(sc_id, slot)
        new = self._patched_content(block, locations.version, old, block_offset, nbytes)

        record = None
        if self._journal_active():
            record = self.lstors.primary.journal.append(
                block_name=block.name,
                sc_id=sc_id,
                slot=slot,
                old_data=old,
                new_data=new,
                parity_delta=old.xor(new),
                nbytes=nbytes,
                now=self.sim.now,
                version=locations.version,
            )
            yield self.sim.timeout(self.lstors.primary.journal_write_time(nbytes))
        # The sub-block RMW: read the old range, rewrite it in place.
        self.create_block_file(locations)
        yield from self.fs.read_modify_write(block.name, block_offset, nbytes)
        if self.config.sync_on_block_close:
            yield from self.fs.sync()
        if self.raidp.enable_parity:
            tag = ("u", block.name, locations.version, block_offset)
            self.lstors.absorb_update(
                self.shard_index_of(sc_id), slot, old, new, tag=tag
            )
            yield self.sim.timeout(nbytes / self.raidp.lstor_write_rate)
        self._install_content(locations, new)
        if record is not None:
            if not self.lstors.primary.failed:
                self.lstors.primary.journal.mark_committed(record.record_id)
            yield from self._send_ack(locations, record)
        return None

    def _patched_content(
        self, block: Block, version: int, old: Payload, block_offset: int, nbytes: int
    ) -> Payload:
        """Deterministic post-update content of a partially updated block."""
        from repro.storage.payload import BytesPayload

        if isinstance(old, BytesPayload):
            patch = self.factory.make(f"{block.name}:u{version}", version, nbytes)
            assert isinstance(patch, BytesPayload)
            return old.splice(block_offset, patch)
        # Symbolic plane: sub-block granularity is not representable;
        # model the update as a whole-block version bump.
        return self.factory.make(block.name, version, block.size)

    # ------------------------------------------------------------------
    # Journal acknowledgment protocol (paper §3.4).
    # ------------------------------------------------------------------
    def _send_ack(self, locations: BlockLocations, record: JournalRecord) -> Generator:
        """Send our commit ack to the mirror; arm clearing of our record.

        Our record clears when the *mirror's* ack reaches us; the mirror
        symmetrically clears on receiving ours.
        """
        key = (locations.block.name, locations.version)
        partner = self._partner_of(locations)
        if partner is None:
            # Degraded single-replica write: nothing to wait for.
            if not self.lstors.primary.failed:
                self.lstors.primary.journal.mark_acked(record.record_id)
                self.lstors.primary.journal.clear(record.record_id, self.sim.now)
            return None
        self._awaiting_ack[key] = record
        # Did the partner's ack already arrive?
        if key in self._pending_acks:
            self._pending_acks.pop(key)
            self._clear_record(key)
        flow = self.switch.transfer(
            self.node.primary_nic, partner.node.primary_nic, self.config.ack_size
        )
        flow.add_callback(lambda _ev, p=partner, k=key: p._on_remote_ack(k))
        yield flow
        return None

    def _on_remote_ack(self, key: Tuple[str, int]) -> None:
        if key in self._awaiting_ack:
            self._clear_record(key)
        else:
            self._pending_acks[key] = self._pending_acks.get(key, 0) + 1

    def _clear_record(self, key: Tuple[str, int]) -> None:
        record = self._awaiting_ack.pop(key)
        if self.lstors.primary.failed:
            return  # the journal died with its Lstor; nothing left to clear
        journal = self.lstors.primary.journal
        journal.mark_acked(record.record_id)
        journal.clear(record.record_id, self.sim.now)

    def resolve_orphan_ack(self, block_name: str, version: int) -> bool:
        """Settle a journal record whose mirror died before acknowledging.

        Called by the client after a pipeline recovery: the surviving
        replica's record would otherwise wait forever for the dead
        partner's ack.  The write is durable here and the partner is
        gone, so the record is acknowledged-by-decree and cleared.
        Returns True when a record was actually resolved.
        """
        key = (block_name, version)
        record = self._awaiting_ack.get(key)
        if record is None:
            # The ack raced in (or the record was never ours to clear).
            self._pending_acks.pop(key, None)
            return False
        self._clear_record(key)
        return True

    def _partner_of(self, locations: BlockLocations) -> Optional["RaidpDataNode"]:
        if self.namenode is None:
            raise DfsError(f"{self.name} has no namenode attached")
        others = [n for n in locations.datanodes if n != self.name]
        if not others:
            return None
        partner = self.namenode.datanode(others[0])
        assert isinstance(partner, RaidpDataNode)
        return partner

    # ------------------------------------------------------------------
    # Rejoin cleanup.
    # ------------------------------------------------------------------
    def purge_block(self, block_name: str) -> None:
        """Drop one replica and keep the local parity consistent.

        Rejoin-time cleanup for orphaned/stale replicas: the parity
        contribution of the dropped content is folded out (deferred-work
        accounting, charges no time) before the slot is unbound, so the
        surviving Lstor still matches the disk.
        """
        placement = self._slot_of.pop(block_name, None)
        if placement is not None:
            sc_id, slot = placement
            self._block_at.pop(placement, None)
            if (
                self.raidp.enable_parity
                and not self.lstors.primary.failed
                and sc_id in self.layout.superchunks
                and self.name in self.layout.superchunk(sc_id).disks
            ):
                old = self.content_of(block_name)
                if not old.is_zero():
                    self.lstors.absorb_update(
                        self.shard_index_of(sc_id),
                        slot,
                        old,
                        self.factory.zero(self.config.block_size),
                    )
        super().purge_block(block_name)

    def wipe_storage(self) -> None:
        """Replaced disk *and* replaced Lstor: empty media, zero parity,
        clean journal, no dangling ack state."""
        for block_name in list(self._contents):
            self.drop_content(block_name)
            if self.fs.exists(block_name):
                self.fs.delete(block_name)
        self._slot_of.clear()
        self._block_at.clear()
        self._pending_acks.clear()
        self._awaiting_ack.clear()
        self.lstors.reset(self.sim.now)

    # ------------------------------------------------------------------
    # Recovery-side accessors.
    # ------------------------------------------------------------------
    def superchunk_payloads(self, sc_id: int) -> Dict[int, Payload]:
        """slot -> payload for every occupied slot of a local superchunk."""
        result = {}
        for slot in range(self.map.slots_per_superchunk):
            name = self._block_at.get((sc_id, slot))
            if name is not None:
                result[slot] = self.content_of(name)
        return result

    def install_recovered_block(
        self, locations: BlockLocations, payload: Payload
    ) -> None:
        """Adopt a re-replicated or reconstructed block (logical side)."""
        self.create_block_file(locations)
        sc_id, slot = self._placement_of(locations)
        old = self.slot_payload(sc_id, slot)
        if self.raidp.enable_parity:
            self.lstors.absorb_update(self.shard_index_of(sc_id), slot, old, payload)
        self._install_content(locations, payload)

    # ------------------------------------------------------------------
    # Journal roll-forward (paper §3.4).
    # ------------------------------------------------------------------
    def apply_replayed_write(self, record: JournalRecord, locations: BlockLocations) -> None:
        """Idempotently (re)apply one journaled write to this replica.

        Safe whether or not the original write reached this node's
        content store, disk, or parity: parity absorption dedups on the
        record's tag, and content installation is a plain overwrite.
        """
        sc_id, slot = self._placement_of(locations)
        old = self.slot_payload(sc_id, slot)
        self.create_block_file(locations)
        if self.raidp.enable_parity:
            already_applied = (
                self.version_of(record.block_name) >= record.version
            )
            effective_old = record.new_data if already_applied else old
            self.lstors.absorb_update(
                self.shard_index_of(sc_id),
                slot,
                effective_old,
                record.new_data,
                tag=record.tag,
            )
        self._install_content(locations, record.new_data)
        self._versions[record.block_name] = max(
            self.version_of(record.block_name), record.version
        )

    def roll_forward(self) -> Generator:
        """Replay every unresolved journal record after a crash.

        Re-applies the write locally (content, disk, parity), pushes the
        record to the mirror so its replica and parity catch up, and
        clears the record.  Returns the number of records replayed.
        """
        journal = self.lstors.primary.journal
        records = journal.replay_candidates()
        for record in records:
            locations = self._locations_of_record(record)
            if locations is not None:
                self.apply_replayed_write(record, locations)
                yield from self.fs.write(record.block_name, 0, record.nbytes)
                yield from self.fs.sync()
                partner = self._partner_of(locations)
                if partner is not None:
                    flow = self.switch.transfer(
                        self.node.primary_nic,
                        partner.node.primary_nic,
                        record.journal_bytes,
                    )
                    yield flow
                    partner.apply_replayed_write(record, locations)
                    yield from partner.fs.write(record.block_name, 0, record.nbytes)
                    yield from partner.fs.sync()
            if record.state is RecordState.APPENDED:
                journal.mark_committed(record.record_id)
            if record.state is RecordState.COMMITTED:
                journal.mark_acked(record.record_id)
            journal.clear(record.record_id, self.sim.now)
            self._awaiting_ack.pop((record.block_name, record.version), None)
        return len(records)

    def _locations_of_record(self, record: JournalRecord) -> Optional[BlockLocations]:
        if self.namenode is None:
            raise DfsError(f"{self.name} has no namenode attached")
        for locations in self.namenode.all_blocks():
            if locations.block.name == record.block_name:
                return locations
        return None  # block deleted since the record was written
