"""Block scrubbing: bit-rot detection and repair.

The paper motivates extra redundancy with "bad sectors on replicas used
for recovery" [Pinheiro et al.]; a production system therefore scrubs:
it periodically re-reads blocks, verifies their checksums (HDFS keeps a
CRC file beside every block), and repairs mismatches.

RAIDP gives the scrubber a second repair source besides the remote
mirror: the *local* Lstor.  A corrupted block equals the parity XOR the
disk's other superchunks' blocks at the same slot -- all local reads, no
network.  :class:`Scrubber` implements detection plus both repair paths,
and :func:`corrupt_block` injects bit rot beneath the parity (media decay
does not update the Lstor, so parity still reflects the good data --
which is exactly why the local repair works).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, List

import numpy as np

from repro.core.node import RaidpDataNode
from repro.errors import DataLossError, RecoveryError
from repro.hdfs.block import BlockLocations
from repro.hdfs.datanode import DataNode
from repro.storage.payload import BytesPayload, Payload, TokenPayload, XorAccumulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cluster import RaidpCluster


def corrupt_block(datanode: DataNode, block_name: str, seed: int = 0xBAD) -> None:
    """Inject bit rot into one stored replica, beneath the parity.

    In the bytes plane some bytes are flipped; in the token plane the
    content is replaced by a distinguishable rot token.  The Lstor parity
    and the checksum record are left alone -- media decay asks nobody.
    """
    payload = datanode.content_of(block_name)
    if isinstance(payload, BytesPayload):
        rng = np.random.default_rng(seed)
        data = payload.data.copy()
        victims = rng.choice(len(data), size=max(len(data) // 128, 1), replace=False)
        data[victims] ^= 0xFF
        rotten: Payload = BytesPayload(data)
    else:
        rotten = TokenPayload.of(f"ROT:{block_name}", seed)
    # Slip beneath the content store without touching version/checksum.
    datanode._contents[block_name] = rotten


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over a DataNode."""

    scanned: int = 0
    corrupt: List[str] = field(default_factory=list)
    repaired: List[str] = field(default_factory=list)
    duration: float = 0.0


class Scrubber:
    """Scans DataNodes for checksum mismatches and repairs them."""

    def __init__(self, dfs: "RaidpCluster") -> None:
        self.dfs = dfs
        self.sim = dfs.sim

    # ------------------------------------------------------------------
    # Detection.
    # ------------------------------------------------------------------
    def verify_block(self, datanode: DataNode, block_name: str) -> bool:
        """Does the stored content still match its recorded checksum?"""
        return datanode.content_checksum_ok(block_name)

    def scan(
        self, datanode: DataNode, repair: bool = True, source: str = "mirror"
    ) -> Generator:
        """Process body: read and verify every replica on ``datanode``.

        Charges a full disk read plus checksum computation per block.
        Returns a :class:`ScrubReport`.
        """
        report = ScrubReport()
        started = self.sim.now
        for locations in list(self.dfs.namenode.all_blocks()):
            block = locations.block
            if not datanode.has_block(block.name):
                continue
            yield from datanode.fs.read(block.name, 0, block.size)
            yield from datanode._process_stream(block.size)  # CRC pass
            report.scanned += 1
            if not self.verify_block(datanode, block.name):
                report.corrupt.append(block.name)
                if repair:
                    yield from self.repair(datanode, locations, source=source)
                    report.repaired.append(block.name)
        report.duration = self.sim.now - started
        return report

    # ------------------------------------------------------------------
    # Repair.
    # ------------------------------------------------------------------
    def repair(
        self, datanode: DataNode, locations: BlockLocations, source: str = "mirror"
    ) -> Generator:
        """Restore one corrupted replica.

        ``source="mirror"`` fetches the mirror's good copy (network +
        remote disk read); ``source="local_parity"`` rebuilds from the
        local Lstor and the disk's other superchunks at the same slot
        (local reads only -- RAIDP-specific).
        """
        if source == "mirror":
            yield from self._repair_from_mirror(datanode, locations)
        elif source == "local_parity":
            yield from self._repair_from_local_parity(datanode, locations)
        else:
            raise ValueError(f"unknown repair source {source!r}")
        return None

    def _repair_from_mirror(
        self, datanode: DataNode, locations: BlockLocations
    ) -> Generator:
        block = locations.block
        others = [n for n in locations.datanodes if n != datanode.name]
        mirrors = [
            self.dfs.namenode.datanode(n)
            for n in others
            if self.dfs.namenode.datanode(n).alive
        ]
        if not mirrors:
            raise DataLossError(f"no live mirror to repair {block.name} from")
        mirror = mirrors[0]
        good = yield from mirror.read_block(locations)
        if not mirror.content_checksum_ok(block.name):
            raise DataLossError(f"both replicas of {block.name} are rotten")
        yield self.dfs.switch.transfer(
            mirror.node.primary_nic, datanode.node.primary_nic, block.size
        )
        yield from datanode.fs.write(block.name, 0, block.size)
        # Bit rot never reached the parity; only the content store heals.
        datanode._contents[block.name] = good
        return None

    def _repair_from_local_parity(
        self, datanode: DataNode, locations: BlockLocations
    ) -> Generator:
        if not isinstance(datanode, RaidpDataNode):
            raise RecoveryError("local-parity repair requires a RAIDP datanode")
        block = locations.block
        sc_id, slot = locations.sc_id, locations.slot
        if sc_id is None or slot is None:
            raise RecoveryError(f"{block.name} lacks a superchunk placement")
        # XOR the parity with every *other* local superchunk's block at
        # this slot; each contributes one local disk read.
        chain = XorAccumulator(datanode.lstors.primary.parity_block(slot))
        for other_sc in datanode.layout.superchunks_of(datanode.name):
            if other_sc == sc_id:
                continue
            other_name = datanode.block_in_slot(other_sc, slot)
            payload = datanode.slot_payload(other_sc, slot)
            if other_name is not None:
                yield from datanode.fs.read(other_name, 0, block.size)
            chain.add(payload)
        accum = chain.result()
        if not self._matches_checksum(datanode, block.name, accum):
            raise DataLossError(
                f"local parity reconstruction of {block.name} failed its checksum"
            )
        yield from datanode.fs.write(block.name, 0, block.size)
        datanode._contents[block.name] = accum
        return None

    @staticmethod
    def _matches_checksum(
        datanode: DataNode, block_name: str, candidate: Payload
    ) -> bool:
        expected = datanode._checksums.get(block_name)
        return expected is not None and expected == candidate.checksum()
