"""Failure recovery: re-replication planning and Lstor reconstruction.

Covers the paper's Section 3.3 and the Section 6.4 evaluation:

**Single disk failure.**  Every superchunk of the failed disk survives on
exactly one other disk (its *sender*).  Recovery matches each sender with
a *receiver* disk such that 1-sharing is preserved, no receiver takes
more than one superchunk (parallelism), mutual-exchange violations (the
paper's D0<->D2 example) are excluded, and disk load is balanced.  Two
planners are provided: a greedy least-loaded planner and a min-cost
assignment planner on the dynamic Hungarian solver -- the formulation the
paper sketches in Fig. 6.

**Double disk failure.**  At most one superchunk is shared; it is
reconstructed on a recovery node by XOR-ing the failed disk's Lstor
parity with the surviving mirrors of that disk's other superchunks.  The
timed model matches §6.4: one thread per source (14 superchunk threads +
1 parity thread on a 16-node cluster), each looping request-chunk /
lock / XOR, under either a whole-superchunk lock or a byte-range lock,
at a configurable chunk size and over a configurable NIC -- the axes of
Table 2.  The content plane is verified bit-exactly through the Lstor.

A RAID-6 full-array rebuild simulator provides Table 2's baseline rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.journal import RecordState
from repro.core.node import RaidpDataNode
from repro.errors import DataLossError, MatchingError, RecoveryError, ReproError
from repro.hdfs.block import BlockLocations
from repro.matching.hungarian import DynamicHungarian
from repro.sim.engine import Simulator
from repro.sim.network import Nic
from repro.sim.resources import ByteRangeLock, Lock
from repro.storage.payload import Payload, XorAccumulator


@dataclass(frozen=True)
class RecoveryOptions:
    """Tunable axes of the recovery experiments (Table 2)."""

    chunk_size: int = 4 * units.MiB
    lock_mode: str = "byte_range"  # or "superchunk"
    nic_index: int = 0  # 0 = 10 Gbps NIC, 1 = 1 Gbps NIC
    planner: str = "hungarian"  # or "greedy"
    #: XOR rate when the working chunk fits the last-level cache.
    xor_rate_cached: float = 0.78 * units.GB
    #: XOR rate when chunks stream from DRAM (large chunks miss cache).
    xor_rate_streaming: float = 0.65 * units.GB
    #: Chunks at or below this size XOR at the cached rate.
    cache_threshold: int = 8 * units.MiB
    #: Fixed cost of taking the reconstruction lock once.
    lock_overhead: float = 1.3 * units.MSEC
    #: Share of a streaming (cache-missing) chunk's XOR that contends on
    #: the receiver's DRAM bus under byte-range locking; hardware
    #: prefetch overlaps the remainder with other threads.
    streaming_bus_share: float = 0.75
    #: Rebuild the lost superchunk's two halves concurrently on two
    #: recovery nodes, one half per failed disk's Lstor (§3.3: "the two
    #: Lstors and sets of mirroring superchunks can be used to rebuild
    #: the lost superchunk in parallel, with each set used to rebuild
    #: half").  Falls back to single-source when an Lstor is dead.
    parallel_halves: bool = False

    def __post_init__(self) -> None:
        if self.lock_mode not in ("byte_range", "superchunk"):
            raise ValueError(f"unknown lock mode {self.lock_mode!r}")
        if self.planner not in ("hungarian", "greedy"):
            raise ValueError(f"unknown planner {self.planner!r}")
        if self.chunk_size <= 0:
            raise ValueError("chunk size must be positive")

    @property
    def xor_rate(self) -> float:
        """Effective per-thread XOR rate at the configured chunk size."""
        if self.chunk_size <= self.cache_threshold:
            return self.xor_rate_cached
        return self.xor_rate_streaming


@dataclass
class RecoveryReport:
    """What a recovery run did and how long it took."""

    duration: float = 0.0
    remirrored: List[Tuple[int, str, str]] = field(default_factory=list)
    reconstructed_sc: Optional[int] = None
    bytes_reconstructed: int = 0
    plan_cost: float = 0.0
    #: The dead disks this recovery covered (one for a single failure,
    #: two for a double) -- lets auditors match reports to failures.
    failed_disks: Tuple[str, ...] = ()
    #: ((sc_id, sender, receiver), error) per remirror that failed --
    #: e.g. a sender dying mid-copy (a stacked failure).  The rest of
    #: the recovery still completes; the superchunk's metadata rolls
    #: back to its pre-remirror state.
    failed_remirrors: List[Tuple[Tuple[int, str, str], ReproError]] = field(
        default_factory=list
    )
    #: (sc_id, error) per superchunk whose reconstruction was impossible
    #: -- more overlapping failures than the two the design tolerates.
    #: Recorded rather than raised so the recovery can still salvage the
    #: singly-lost superchunks around it.
    lost_superchunks: List[Tuple[int, ReproError]] = field(default_factory=list)


class RecoveryManager:
    """Drives recovery on a :class:`RaidpCluster`."""

    def __init__(self, dfs: RaidpCluster) -> None:
        self.dfs = dfs
        self.sim = dfs.sim

    # ==================================================================
    # Planning (pure, no simulated time).
    # ==================================================================
    def plan_single_failure(
        self, failed: str, options: Optional[RecoveryOptions] = None
    ) -> List[Tuple[int, str, str]]:
        """Match orphan superchunks to receivers: (sc_id, sender, receiver).

        Must be called *after* the failed disk was removed from the
        layout.  Raises :class:`RecoveryError` when no legal full
        assignment exists.
        """
        options = options or RecoveryOptions()
        layout = self.dfs.layout
        orphans = [
            sc
            for sc in layout.superchunks.values()
            if failed in sc.disks and len([d for d in sc.disks if d in layout.disks]) == 1
        ]
        if not orphans:
            return []
        senders = []
        for sc in orphans:
            sender = sc.mirror_of(failed)
            survivor = self.dfs.datanode_by_name(sender)
            if sender not in layout.disks or not (
                survivor.alive
                and not survivor.disk.failed
                and survivor.node.alive
            ):
                # The surviving mirror is itself dead: the superchunk is
                # doubly lost and remirroring cannot help.  Leave it for
                # the sharing pair's Lstor reconstruction (or, beyond the
                # design point, for degraded reads) rather than planning
                # a copy from a disk that cannot be read.
                continue
            senders.append((sc.sc_id, sender))
        if not senders:
            return []
        # A receiver must be healthy in fact, not just in metadata: a
        # sweeping failure (whole server down) may not have marked every
        # sibling disk dead yet.
        receivers = [
            dn.name
            for dn in self.dfs.datanodes
            if dn.alive
            and dn.node.alive
            and not dn.disk.failed
            and dn.name != failed
        ]
        if options.planner == "greedy":
            return self._plan_greedy(senders, receivers)
        return self._plan_hungarian(senders, receivers)

    def _legal(self, sender: str, receiver: str) -> bool:
        """Can ``receiver`` adopt a superchunk whose survivor is ``sender``?

        Like a fresh pairing -- distinct disks, no existing shared
        superchunk, different failure domains -- except that only the
        *receiver* needs free capacity: the sender already holds its
        copy and gains nothing from the transfer.
        """
        layout = self.dfs.layout
        if sender == receiver:
            return False
        if sender not in layout.disks or receiver not in layout.disks:
            return False
        if layout.same_domain(sender, receiver):
            return False
        if layout.shared(sender, receiver) is not None:
            return False
        return (
            len(layout.superchunks_of(receiver)) < layout.max_superchunks(receiver)
        )

    def _load(self, disk: str) -> int:
        return self.dfs.map.load_of_disk(disk)

    def _plan_greedy(
        self, senders: List[Tuple[int, str]], receivers: List[str]
    ) -> List[Tuple[int, str, str]]:
        """Least-loaded-first greedy assignment (the naive baseline)."""
        free = set(receivers)
        plan = []
        used_pairs = set()
        for sc_id, sender in senders:
            candidates = sorted(
                (r for r in free if self._legal(sender, r)),
                key=lambda r: (self._load(r), r),
            )
            chosen = None
            for receiver in candidates:
                if frozenset((sender, receiver)) not in used_pairs:
                    chosen = receiver
                    break
            if chosen is None:
                raise RecoveryError(
                    f"greedy planner: no receiver for superchunk {sc_id}"
                )
            free.remove(chosen)
            used_pairs.add(frozenset((sender, chosen)))
            plan.append((sc_id, sender, chosen))
        return plan

    def _plan_hungarian(
        self, senders: List[Tuple[int, str]], receivers: List[str]
    ) -> List[Tuple[int, str, str]]:
        """Min-cost assignment with mutual-exchange elimination.

        Costs are receiver loads, so lightly-loaded disks attract
        superchunks.  After each solve, any mutual exchange (sender A ->
        receiver B while sender B -> receiver A, which would create the
        same shared pair twice or pair two senders) has its costlier edge
        removed and the problem re-solved on the warm-started dynamic
        solver -- the paper's Mills-Tettey use case.
        """
        cost: List[List[Optional[float]]] = []
        for _sc_id, sender in senders:
            row = [
                float(self._load(receiver)) if self._legal(sender, receiver) else None
                for receiver in receivers
            ]
            cost.append(row)
        solver = DynamicHungarian(cost)
        for _round in range(len(senders) * len(receivers) + 1):
            try:
                assignment, total = solver.solve()
            except MatchingError as err:
                raise RecoveryError(f"hungarian planner: {err}") from err
            conflict = self._find_exchange_conflict(assignment, senders, receivers)
            if conflict is None:
                plan = [
                    (senders[row][0], senders[row][1], receivers[col])
                    for row, col in sorted(assignment.items())
                ]
                self._last_plan_cost = total
                return plan
            solver.remove_edge(*conflict)
        raise RecoveryError("hungarian planner failed to converge")

    def _find_exchange_conflict(
        self,
        assignment: Dict[int, int],
        senders: List[Tuple[int, str]],
        receivers: List[str],
    ) -> Optional[Tuple[int, int]]:
        """Detect A->B while B->A; returns the costlier edge to remove."""
        chosen = {
            senders[row][1]: (row, receivers[col]) for row, col in assignment.items()
        }
        for sender, (row, receiver) in chosen.items():
            back = chosen.get(receiver)
            if back is not None and back[1] == sender:
                other_row = back[0]
                # Remove the edge whose receiver carries more load.
                if self._load(receiver) >= self._load(sender):
                    return (row, assignment[row])
                return (other_row, assignment[other_row])
        return None

    # ==================================================================
    # Single-failure execution.
    # ==================================================================
    def recover_single_failure(
        self, failed: str, options: Optional[RecoveryOptions] = None
    ) -> RecoveryReport:
        """Full single-failure recovery, driving the simulation itself.

        Use :meth:`single_failure_body` instead when calling from inside
        a running simulation process (e.g. the cluster monitor).
        """
        return self.sim.run_process(
            self.single_failure_body(failed, options), name=f"recover:{failed}"
        )

    def single_failure_body(
        self, failed: str, options: Optional[RecoveryOptions] = None
    ) -> Generator:
        """Process body: plan, transfer, rewire metadata; returns a report."""
        options = options or RecoveryOptions()
        report = RecoveryReport(failed_disks=(failed,))
        started = self.sim.now
        trace = self.sim.trace
        self.dfs.namenode.mark_datanode_dead(failed)
        if failed not in self.dfs.layout.disks:
            # A re-failure of a disk recovery already evicted (e.g. a
            # rejoined node dying again before the balancer re-admitted
            # it): its data was re-homed the first time, so there is
            # nothing to move -- just the liveness bookkeeping above.
            report.duration = self.sim.now - started
            return report
        # Divert writes away from the affected superchunks until the
        # recovery completes (paper §3.4).
        frozen = list(self.dfs.layout.superchunks_of(failed))
        for sc_id in frozen:
            self.dfs.map.freeze(sc_id)
        try:
            self.dfs.layout.remove_disk(failed)
            self._last_plan_cost = 0.0
            plan = self.plan_single_failure(failed, options)
            report.plan_cost = getattr(self, "_last_plan_cost", 0.0)
            if trace.enabled:
                # Planning is pure (charges no simulated time): a
                # zero-duration phase span keeps it in the breakdown.
                trace.complete(
                    "recovery", "plan", self.sim.now, self.sim.now,
                    failed=failed, moves=len(plan), cost=report.plan_cost,
                )
            if plan:
                transfers = [
                    self.sim.process(
                        self._remirror_superchunk(sc_id, sender, receiver, options),
                        name=f"remirror:sc{sc_id}",
                    )
                    for sc_id, sender, receiver in plan
                ]
                # Await each transfer individually: one superchunk's
                # sender dying mid-copy (a stacked failure) must not
                # abort the others.
                for entry, proc in zip(plan, transfers):
                    try:
                        yield proc
                    except ReproError as exc:
                        report.failed_remirrors.append((entry, exc))
                    else:
                        report.remirrored.append(entry)
        finally:
            for sc_id in frozen:
                self.dfs.map.unfreeze(sc_id)
        report.duration = self.sim.now - started
        if trace.enabled:
            trace.complete(
                "recovery", "single", started, self.sim.now,
                failed=failed, remirrored=len(report.remirrored),
            )
        return report

    def _remirror_superchunk(
        self, sc_id: int, sender: str, receiver: str, options: RecoveryOptions
    ) -> Generator:
        """Copy one superchunk's live blocks sender -> receiver."""
        dfs = self.dfs
        trace = self.sim.trace
        t0 = self.sim.now
        src = dfs.datanode_by_name(sender)
        dst = dfs.datanode_by_name(receiver)
        blocks = dfs.map.blocks_in(sc_id)
        previous = dfs.layout.superchunk(sc_id)
        updated = dfs.layout.remirror(sc_id, receiver)
        dfs.map.register_superchunk(sc_id)
        installed: List[BlockLocations] = []
        try:
            for slot in sorted(blocks):
                block_name = blocks[slot]
                locations = self._locations_by_name(block_name)
                if locations is None:
                    continue  # a preallocation filler, not a live block
                # Read at the sender, stream, write at the receiver.
                read = self.sim.process(
                    src.fs.read(block_name, 0, locations.block.size)
                )
                flow = dfs.switch.transfer(
                    src.node.nics[options.nic_index],
                    dst.node.nics[options.nic_index],
                    locations.block.size,
                )
                yield self.sim.all_of([read, flow])
                # Capture the content at install time and publish the new
                # replica in the same instant: a rewrite landing on the
                # sender mid-copy is resent (HDFS pipeline-recovery style),
                # and one landing after this point already targets the
                # receiver, so the copy can never go stale.
                payload = src.content_of(block_name)
                dst.install_recovered_block(locations, payload)
                if receiver not in locations.datanodes:
                    locations.datanodes.append(receiver)
                installed.append(locations)
                yield from dst.fs.write(locations.block.name, 0, locations.block.size)
        except ReproError:
            # A stacked failure killed the sender (or receiver) mid-copy.
            # Roll the half-built replica back -- purge unwinds both the
            # content and the receiver's absorbed parity -- so metadata
            # never advertises a copy that does not exist.
            for locations in installed:
                if receiver in locations.datanodes:
                    locations.datanodes.remove(receiver)
                dst.purge_block(locations.block.name)
            dfs.layout.restore_superchunk(previous, receiver)
            if trace.enabled:
                trace.complete(
                    "recovery", "remirror", t0, self.sim.now,
                    sc=sc_id, sender=sender, receiver=receiver,
                    blocks=len(installed), aborted=True,
                )
            raise
        if trace.enabled:
            trace.complete(
                "recovery", "remirror", t0, self.sim.now,
                sc=sc_id, sender=sender, receiver=receiver,
                blocks=len(installed),
            )
        return None

    def _locations_by_name(self, block_name: str) -> Optional[BlockLocations]:
        for locations in self.dfs.namenode.all_blocks():
            if locations.block.name == block_name:
                return locations
        return None

    # ==================================================================
    # Double-failure reconstruction (Table 2's RAIDP rows).
    # ==================================================================
    def recover_double_failure(
        self,
        failed_a: str,
        failed_b: str,
        recovery_node: Optional[str] = None,
        options: Optional[RecoveryOptions] = None,
        remirror_rest: bool = True,
        install: bool = True,
    ) -> RecoveryReport:
        """Survive a simultaneous two-disk failure (drives the sim).

        Use :meth:`double_failure_body` from inside a running simulation
        process.
        """
        return self.sim.run_process(
            self.double_failure_body(
                failed_a,
                failed_b,
                recovery_node=recovery_node,
                options=options,
                remirror_rest=remirror_rest,
                install=install,
            ),
            name=f"recover:{failed_a}+{failed_b}",
        )

    def double_failure_body(
        self,
        failed_a: str,
        failed_b: str,
        recovery_node: Optional[str] = None,
        options: Optional[RecoveryOptions] = None,
        remirror_rest: bool = True,
        install: bool = True,
        tolerate_loss: bool = False,
    ) -> Generator:
        """Process body for a simultaneous two-disk failure.

        Reconstructs the shared superchunk from ``failed_a``'s Lstor and
        the surviving mirrors of its other superchunks, then (optionally)
        re-replicates both disks' remaining superchunks like two single
        failures.  Returns the report; reconstruction correctness is
        verified bit-exactly by the caller via the cluster invariants.

        With ``tolerate_loss`` (the monitor's mode), a shared superchunk
        that cannot be reconstructed -- a third overlapping casualty
        broke the XOR chain, which is past the two-failure design point
        -- is recorded in ``report.lost_superchunks`` and the rest of
        the recovery proceeds; without it the error propagates.
        """
        options = options or RecoveryOptions()
        dfs = self.dfs
        report = RecoveryReport(failed_disks=(failed_a, failed_b))
        started = self.sim.now
        trace = self.sim.trace
        shared = dfs.layout.shared(failed_a, failed_b)
        # Divert writes away from both disks' superchunks for the whole
        # recovery window (paper §3.4).  Sorted: freeze/unfreeze must not
        # run in set-hash order (RDP002) -- a shared superchunk appears
        # in both disks' lists, and ordered traversal keeps every
        # freeze-window trace and fingerprint bitwise reproducible.
        frozen = sorted(
            {
                sc_id
                for failed in (failed_a, failed_b)
                if failed in dfs.layout.disks
                for sc_id in dfs.layout.superchunks_of(failed)
            }
        )
        for sc_id in frozen:
            dfs.map.freeze(sc_id)
        try:
            dfs.namenode.mark_datanode_dead(failed_a)
            dfs.namenode.mark_datanode_dead(failed_b)

            rebuilt: Dict[int, Payload] = {}
            if shared is not None:
                try:
                    lost_source = self._pick_lost_source(failed_a, failed_b, shared)
                    # Source superchunks *before* the layout forgets the
                    # failed disks.
                    source_scs = [
                        sc_id
                        for sc_id in dfs.layout.superchunks_of(lost_source.name)
                        if sc_id != shared
                    ]
                    mirrors = {
                        sc_id: dfs.layout.superchunk(sc_id).mirror_of(
                            lost_source.name
                        )
                        for sc_id in source_scs
                    }
                    receiver_name = recovery_node or self._pick_recovery_node(
                        exclude={failed_a, failed_b}
                    )
                    other_source = dfs.datanode_by_name(
                        failed_b if lost_source.name == failed_a else failed_a
                    )
                    if (
                        options.parallel_halves
                        and not other_source.lstors.primary.failed
                    ):
                        rebuilt = yield from self._reconstruct_halves(
                            shared, lost_source, other_source, receiver_name, options
                        )
                    else:
                        rebuilt = yield from self._reconstruct_superchunk(
                            shared, lost_source, mirrors, receiver_name, options
                        )
                    report.reconstructed_sc = shared
                    report.bytes_reconstructed = len(rebuilt) * dfs.config.block_size
                    if install:
                        # Re-home onto a legal pair and rewire metadata.  §6.4's
                        # timing experiment measures reconstruction only (and a
                        # maximally-dense layout has no legal pair left), so the
                        # Table 2 harness passes install=False.
                        self._install_reconstruction(
                            shared, rebuilt, receiver_name, failed_a, failed_b
                        )
                        if trace.enabled:
                            trace.complete(
                                "recovery", "install", self.sim.now,
                                self.sim.now, sc=shared,
                                receiver=receiver_name,
                            )
                except ReproError as exc:
                    # A third overlapping casualty broke the XOR chain (or
                    # no healthy receiver remains).  That superchunk is
                    # past the two-failure design point; record the loss
                    # and still salvage everything singly lost.
                    if not tolerate_loss:
                        raise
                    report.lost_superchunks.append((shared, exc))

            for failed in (failed_a, failed_b):
                if failed in dfs.layout.disks:  # _install_reconstruction may have removed them
                    dfs.layout.remove_disk(failed)
            if remirror_rest:
                for failed in (failed_a, failed_b):
                    plan = self.plan_single_failure(failed, options)
                    if trace.enabled:
                        trace.complete(
                            "recovery", "plan", self.sim.now, self.sim.now,
                            failed=failed, moves=len(plan),
                        )
                    if not plan:
                        continue
                    procs = [
                        self.sim.process(
                            self._remirror_superchunk(sc, s, r, options)
                        )
                        for sc, s, r in plan
                    ]
                    # Isolated per superchunk, as in single recovery: a
                    # stacked failure mid-copy costs one chunk, not all.
                    for entry, proc in zip(plan, procs):
                        try:
                            yield proc
                        except ReproError as exc:
                            report.failed_remirrors.append((entry, exc))
                        else:
                            report.remirrored.append(entry)
        finally:
            for sc_id in frozen:
                dfs.map.unfreeze(sc_id)
        report.duration = self.sim.now - started
        if trace.enabled:
            trace.complete(
                "recovery", "double", started, self.sim.now,
                failed_a=failed_a, failed_b=failed_b, shared=shared,
                remirrored=len(report.remirrored),
            )
        return report

    def _pick_lost_source(
        self, failed_a: str, failed_b: str, shared: Optional[int]
    ) -> RaidpDataNode:
        """Choose which failed disk's Lstor drives the reconstruction.

        Either side works in a clean double failure.  When a *third*
        overlapping failure killed the mirror of one side's source
        superchunks, that side's XOR chain cannot be read back -- prefer
        the side whose surviving mirrors are all actually healthy, so a
        co-detected extra failure does not abort the whole recovery.
        """
        dfs = self.dfs
        candidates = []
        for name in (failed_a, failed_b):
            datanode = dfs.datanode_by_name(name)
            if datanode.lstors.primary.failed:
                continue
            mirrors_ok = True
            for sc_id in dfs.layout.superchunks_of(name):
                if sc_id == shared:
                    continue
                mirror = dfs.datanode_by_name(
                    dfs.layout.superchunk(sc_id).mirror_of(name)
                )
                if not (
                    mirror.alive and not mirror.disk.failed and mirror.node.alive
                ):
                    mirrors_ok = False
                    break
            candidates.append((not mirrors_ok, name))
        if not candidates:
            raise DataLossError(
                "both Lstors gone: the shared superchunk is unrecoverable"
            )
        candidates.sort()
        return dfs.datanode_by_name(candidates[0][1])

    def _pick_recovery_node(self, exclude: set) -> str:
        layout = self.dfs.layout
        for dn in self.dfs.datanodes:
            if dn.name in exclude or dn.name not in layout.disks:
                continue
            if dn.alive and not dn.disk.failed and dn.node.alive:
                return dn.name
        raise RecoveryError("no live node available for reconstruction")

    def _reconstruct_superchunk(
        self,
        shared_sc: int,
        lost_source: RaidpDataNode,
        mirrors: Dict[int, str],
        receiver_name: str,
        options: RecoveryOptions,
        byte_range: Optional[Tuple[int, int]] = None,
        slots: Optional[range] = None,
    ) -> Generator:
        """Process body: threads pull chunks, lock, and XOR.

        ``byte_range``/``slots`` restrict the work to part of the
        superchunk (the parallel-halves mode); default is the whole
        thing.  Returns slot -> payload of the rebuilt superchunk
        (logical plane, computed through the Lstor for bit-exactness).
        """
        dfs = self.dfs
        trace = self.sim.trace
        t0 = self.sim.now
        receiver = dfs.datanode_by_name(receiver_name)
        full_size = dfs.layout.spec.superchunk_size
        byte_lo, byte_hi = byte_range if byte_range is not None else (0, full_size)
        sc_size = byte_hi - byte_lo
        block_size = dfs.config.block_size

        # --- logical plane: XOR parity with surviving mirror contents.
        surviving: Dict[int, Dict[int, Payload]] = {}
        for sc_id, mirror_name in mirrors.items():
            mirror = dfs.datanode_by_name(mirror_name)
            if not mirror.alive:
                raise DataLossError(
                    f"mirror {mirror_name} of superchunk {sc_id} is dead too"
                )
            surviving[sc_id] = mirror.superchunk_payloads(sc_id)
        # Journal replay (crash consistency): a write that was in flight
        # when the source disk died may have landed on the surviving
        # mirror without its delta ever being absorbed into the source's
        # parity.  The source's Lstor survives -- RAIDP's premise -- and
        # every un-absorbed write still sits in its journal as an
        # APPENDED record whose ``old_data`` is exactly the content the
        # parity covers; substituting it for the mirror's newer copy
        # keeps the XOR chain consistent.
        replayed = set()
        roll_forward: Dict[int, Payload] = {}
        for record in lost_source.lstors.primary.journal.replay_candidates():
            if record.state is not RecordState.APPENDED:
                continue
            key = (record.sc_id, record.slot)
            if key in replayed:
                continue
            replayed.add(key)
            payloads = surviving.get(record.sc_id)
            if payloads is not None:
                payloads[record.slot] = record.old_data
            elif record.sc_id == shared_sc:
                # The record is *for* the superchunk being reconstructed:
                # the write may have completed on the other (also dead)
                # replica, in which case the NameNode kept the new
                # version and the journal's new_data is the only
                # surviving copy.  If the client rolled the version back
                # (no replica survived the write), the parity's old view
                # is already correct.
                locations = self._locations_by_name(record.block_name)
                if locations is not None and locations.version == record.version:
                    roll_forward[record.slot] = record.new_data
        if slots is None:
            slots = range(dfs.map.slots_per_superchunk)
        rebuilt: Dict[int, Payload] = {}
        for slot in slots:
            blocks_at_slot = {
                lost_source.shard_index_of(sc_id): payloads[slot]
                for sc_id, payloads in surviving.items()
                if slot in payloads
            }
            missing = lost_source.shard_index_of(shared_sc)
            chain = XorAccumulator(lost_source.lstors.primary.parity_block(slot))
            for payload in blocks_at_slot.values():
                chain.add(payload)
            accum = chain.result()
            if not accum.is_zero():
                rebuilt[slot] = accum
        for slot, payload in roll_forward.items():
            if slot in slots:
                rebuilt[slot] = payload

        # --- timed plane: one puller thread per source + one for parity.
        lock_whole = Lock(self.sim, name="reconstruct")
        lock_ranges = ByteRangeLock(self.sim, name="reconstruct")
        # Large chunks miss the last-level cache, so concurrent XOR
        # threads contend on the receiver's DRAM bandwidth: one streaming
        # XOR at a time.  Cache-resident (small) chunks XOR in parallel.
        memory_bus = Lock(self.sim, name="xor-bus")
        streaming = options.chunk_size > options.cache_threshold
        nic_of = lambda dn: dn.node.nics[options.nic_index]  # noqa: E731
        rx_nic = nic_of(receiver)

        def puller(source_dn: RaidpDataNode, source_sc: Optional[int]) -> Generator:
            """Stream one source (a mirror superchunk, or the parity when
            ``source_sc`` is None) into the receiver, chunk by chunk."""
            offset = byte_lo
            while offset < byte_hi:
                run = min(options.chunk_size, byte_hi - offset)
                ops = []
                if source_sc is not None:
                    ops.append(
                        self.sim.process(
                            source_dn.disk.read(
                                source_dn.superchunk_base(source_sc) + offset,
                                run,
                            )
                        )
                    )
                ops.append(
                    dfs.switch.transfer(nic_of(source_dn), rx_nic, run)
                )
                yield self.sim.all_of(ops)
                # XOR the received chunk into the staging buffer under the
                # configured correctness lock.  A superchunk-wide lock
                # serializes everything by itself; byte-range XORs run in
                # parallel except for the share of a streaming chunk that
                # contends on DRAM bandwidth (prefetch hides the rest).
                xor_time = run / options.xor_rate
                if options.lock_mode == "superchunk":
                    grant = yield lock_whole.request()
                    try:
                        yield self.sim.sleep(options.lock_overhead + xor_time)
                    finally:
                        lock_whole.release(grant)
                else:
                    grant = yield lock_ranges.acquire(offset, offset + run)
                    try:
                        bus_share = options.streaming_bus_share if streaming else 0.0
                        yield self.sim.sleep(
                            options.lock_overhead + (1.0 - bus_share) * xor_time
                        )
                        if bus_share > 0.0:
                            bus_grant = yield memory_bus.request()
                            try:
                                yield self.sim.sleep(bus_share * xor_time)
                            finally:
                                memory_bus.release(bus_grant)
                    finally:
                        lock_ranges.release(grant)
                offset += run
            return None

        def writer() -> Generator:
            # Move assembled block files to the receiver's disk.
            written = 0
            while written < sc_size:
                run = min(block_size, sc_size - written)
                yield from receiver.disk.write(
                    receiver.disk.geometry.capacity - full_size + byte_lo + written,
                    run,
                )
                written += run
            return None

        threads = [
            self.sim.process(
                puller(dfs.datanode_by_name(mirror_name), sc_id),
                name=f"pull:sc{sc_id}",
            )
            for sc_id, mirror_name in mirrors.items()
        ]
        threads.append(
            self.sim.process(puller(lost_source, None), name="pull:parity")
        )
        yield self.sim.all_of(threads)
        yield self.sim.process(writer(), name="assemble")
        if trace.enabled:
            trace.complete(
                "recovery", "reconstruct", t0, self.sim.now,
                sc=shared_sc, source=lost_source.name,
                receiver=receiver_name, bytes=sc_size,
                pullers=len(threads),
            )
        return rebuilt

    def _reconstruct_halves(
        self,
        shared_sc: int,
        source_a: RaidpDataNode,
        source_b: RaidpDataNode,
        receiver_name: str,
        options: RecoveryOptions,
    ) -> Generator:
        """Rebuild the two halves concurrently, one per failed Lstor.

        Half A comes from ``source_a``'s parity and its mirrors; half B
        symmetrically from ``source_b`` -- demonstrating the §3.3
        flexibility that either Lstor can serve any part of the
        superchunk.  Each half streams into its own recovery node, so
        the receiver NIC bottleneck halves too.
        """
        dfs = self.dfs
        slots_total = dfs.map.slots_per_superchunk
        if slots_total < 2:
            mirrors = self._mirrors_of(source_a, shared_sc)
            result = yield from self._reconstruct_superchunk(
                shared_sc, source_a, mirrors, receiver_name, options
            )
            return result
        block_size = dfs.config.block_size
        mid_slot = slots_total // 2
        mid_byte = mid_slot * block_size
        full_size = dfs.layout.spec.superchunk_size
        receiver_b = self._pick_recovery_node(
            exclude={source_a.name, source_b.name, receiver_name}
        )
        half_a = self.sim.process(
            self._reconstruct_superchunk(
                shared_sc,
                source_a,
                self._mirrors_of(source_a, shared_sc),
                receiver_name,
                options,
                byte_range=(0, mid_byte),
                slots=range(0, mid_slot),
            ),
            name="rebuild:half-a",
        )
        half_b = self.sim.process(
            self._reconstruct_superchunk(
                shared_sc,
                source_b,
                self._mirrors_of(source_b, shared_sc),
                receiver_b,
                options,
                byte_range=(mid_byte, full_size),
                slots=range(mid_slot, slots_total),
            ),
            name="rebuild:half-b",
        )
        results = yield self.sim.all_of([half_a, half_b])
        rebuilt: Dict[int, Payload] = {}
        for partial in results:
            rebuilt.update(partial)
        return rebuilt

    def _mirrors_of(self, source: RaidpDataNode, shared_sc: int) -> Dict[int, str]:
        """Mirror disk of each of ``source``'s other superchunks."""
        layout = self.dfs.layout
        return {
            sc_id: layout.superchunk(sc_id).mirror_of(source.name)
            for sc_id in layout.superchunks_of(source.name)
            if sc_id != shared_sc
        }

    def _install_reconstruction(
        self,
        sc_id: int,
        rebuilt: Dict[int, Payload],
        receiver_name: str,
        failed_a: str,
        failed_b: str,
    ) -> None:
        """Re-home the reconstructed superchunk and update all metadata."""
        dfs = self.dfs
        partner_name = self._pick_partner_for(receiver_name, {failed_a, failed_b})
        # Forget the dead homes first so rehome sees a fully-orphaned chunk.
        for failed in (failed_a, failed_b):
            if failed in dfs.layout.disks:
                dfs.layout.remove_disk(failed)
        dfs.layout.rehome(sc_id, receiver_name, partner_name)
        dfs.map.register_superchunk(sc_id)
        blocks = dfs.map.blocks_in(sc_id)
        for slot, block_name in sorted(blocks.items()):
            locations = self._locations_by_name(block_name)
            if locations is None:
                continue
            payload = rebuilt.get(slot)
            if payload is None:
                raise DataLossError(
                    f"reconstruction hole: block {block_name} at slot {slot}"
                )
            for home in (receiver_name, partner_name):
                datanode = dfs.datanode_by_name(home)
                datanode.install_recovered_block(locations, payload)
                if home not in locations.datanodes:
                    locations.datanodes.append(home)

    def _pick_partner_for(self, receiver: str, exclude: set) -> str:
        layout = self.dfs.layout
        for dn in self.dfs.datanodes:
            name = dn.name
            if name == receiver or name in exclude:
                continue
            if not (dn.alive and not dn.disk.failed and dn.node.alive):
                continue
            if name not in layout.disks:
                continue  # rejoined-from-wipe disks re-enter via add_disk
            if layout.same_domain(receiver, name):
                continue
            if layout.shared(receiver, name) is not None:
                continue
            if len(layout.superchunks_of(name)) >= layout.max_superchunks(name):
                continue
            return name
        raise RecoveryError(
            f"no legal mirror partner for reconstructed superchunk on {receiver}"
        )


# ======================================================================
# RAID-6 rebuild baseline (Table 2, bottom rows).
# ======================================================================
class _Raid6Rig:
    """Hardware for the distributed RAID-6 rebuild: one rebuild master,
    two replacement disks, ``surviving_disks`` survivors on one switch.

    The rebuild runs as two strictly sequential phases -- gather+decode,
    then writeback -- which share no simulation state beyond the clock:
    the read phase never touches the replacement disks and the writeback
    phase never touches the sources.  The phases can therefore run in
    separate simulators (``Simulator(start=boundary)`` for the second)
    and produce bitwise-identical completion times to the single-sim
    monolith, which the experiment decomposition exploits to pipeline
    RAID-6 rows across pool workers.  ``simulate_raid6_rebuild`` keeps
    the monolithic schedule as the differential oracle for that claim.
    """

    def __init__(
        self,
        surviving_disks: int,
        chunk_size: int,
        nic_rate: float,
        disk_rate: Optional[float],
        start: float = 0.0,
    ) -> None:
        from repro.sim.disk import Disk, DiskGeometry
        from repro.sim.network import Switch

        self.chunk_size = chunk_size
        self.sim = Simulator(start=start)
        geometry = (
            DiskGeometry(transfer_rate=disk_rate) if disk_rate else DiskGeometry()
        )
        self.switch = Switch(self.sim)
        self.master = self.switch.attach(Nic("master", nic_rate))
        self.replacements = [
            self.switch.attach(Nic(f"replacement{i}", nic_rate)) for i in range(2)
        ]
        self.sources = [
            self.switch.attach(Nic(f"src{i}", nic_rate))
            for i in range(surviving_disks)
        ]
        self.source_disks = [
            Disk(self.sim, geometry, name=f"sd{i}") for i in range(surviving_disks)
        ]
        self.replacement_disks = [
            Disk(self.sim, geometry, name=f"rd{i}") for i in range(2)
        ]

    def source_stream(self, index: int, data_per_disk: int, xor_rate: float) -> Generator:
        # Each survivor disk has exactly this stream as its client, so
        # the read takes the uncontended stream_io fast path: a timeout
        # for the charged duration replaces the process + queue
        # round-trip (identical simulated timing, ~half the schedule
        # entries per chunk).  Hot loop: locals are pre-bound.
        sim, chunk_size = self.sim, self.chunk_size
        disk = self.source_disks[index]
        stream_io = disk.stream_io
        transfer = self.switch.transfer
        src, master = self.sources[index], self.master
        timeout, all_of, sleep = sim.timeout, sim.all_of, sim.sleep
        offset = 0
        while offset < data_per_disk:
            run = min(chunk_size, data_per_disk - offset)
            read = timeout(stream_io("read", offset, run))
            flow = transfer(src, master, run)
            yield all_of([read, flow])
            # Decode on the master (serialized per received chunk).
            yield sleep(run / xor_rate)
            offset += run
        return None

    def writeback(self, index: int, data_per_disk: int) -> Generator:
        # Mirror of source_stream: each replacement disk is private to
        # its writeback stream, so writes take the stream_io fast path.
        sim, chunk_size = self.sim, self.chunk_size
        stream_io = self.replacement_disks[index].stream_io
        transfer = self.switch.transfer
        master, dst = self.master, self.replacements[index]
        timeout, all_of = sim.timeout, sim.all_of
        offset = 0
        while offset < data_per_disk:
            run = min(chunk_size, data_per_disk - offset)
            flow = transfer(master, dst, run)
            write = timeout(stream_io("write", offset, run))
            yield all_of([flow, write])
            offset += run
        return None

    def read_all(self, data_per_disk: int, xor_rate: float) -> Generator:
        readers = [
            self.sim.process(self.source_stream(i, data_per_disk, xor_rate), name=f"src{i}")
            for i in range(len(self.source_disks))
        ]
        yield self.sim.all_of(readers)

    def write_all(self, data_per_disk: int) -> Generator:
        writers = [
            self.sim.process(self.writeback(i, data_per_disk), name=f"wb{i}")
            for i in range(2)
        ]
        yield self.sim.all_of(writers)


def _raid6_xor_rate(chunk_size: int, xor_rate: Optional[float]) -> float:
    if xor_rate is not None:
        return xor_rate
    # Same cache-vs-streaming decode rates as the RAIDP reconstruction.
    return RecoveryOptions(chunk_size=chunk_size).xor_rate


def simulate_raid6_rebuild(
    data_per_disk: int,
    surviving_disks: int = 14,
    chunk_size: int = 4 * units.MiB,
    nic_rate: float = units.gbps(10),
    disk_rate: Optional[float] = None,
    xor_rate: Optional[float] = None,
) -> float:
    """Simulated wall-clock of a distributed RAID-6 double rebuild.

    Every stripe lost two blocks, so *all* data on *all* survivors must be
    read and shipped to the rebuild master, decoded, and two disks'
    worth of data written back out.  Returns the duration in seconds.

    Runs both phases in one simulator; the per-phase entry points below
    decompose the same schedule for the parallel runner.
    """
    xor_rate = _raid6_xor_rate(chunk_size, xor_rate)
    rig = _Raid6Rig(surviving_disks, chunk_size, nic_rate, disk_rate)

    def rebuild() -> Generator:
        yield from rig.read_all(data_per_disk, xor_rate)
        yield from rig.write_all(data_per_disk)

    rig.sim.run_process(rebuild())
    return rig.sim.now


def simulate_raid6_read_phase(
    data_per_disk: int,
    surviving_disks: int = 14,
    chunk_size: int = 4 * units.MiB,
    nic_rate: float = units.gbps(10),
    disk_rate: Optional[float] = None,
    xor_rate: Optional[float] = None,
) -> float:
    """Phase 1 of the RAID-6 rebuild: gather and decode every survivor.

    Returns the boundary time at which the last chunk has been decoded,
    suitable for handing to :func:`simulate_raid6_writeback_phase` as its
    ``start``.
    """
    xor_rate = _raid6_xor_rate(chunk_size, xor_rate)
    rig = _Raid6Rig(surviving_disks, chunk_size, nic_rate, disk_rate)
    rig.sim.run_process(rig.read_all(data_per_disk, xor_rate))
    return rig.sim.now


def simulate_raid6_writeback_phase(
    start: float,
    data_per_disk: int,
    surviving_disks: int = 14,
    chunk_size: int = 4 * units.MiB,
    nic_rate: float = units.gbps(10),
    disk_rate: Optional[float] = None,
) -> float:
    """Phase 2 of the RAID-6 rebuild: stream decoded data to both
    replacement disks, starting at the read phase's boundary time.

    Returns the rebuild completion time (the Table 2 row value).
    """
    rig = _Raid6Rig(surviving_disks, chunk_size, nic_rate, disk_rate, start=start)
    rig.sim.run_process(rig.write_all(data_per_disk))
    return rig.sim.now
