"""The RAIDP core: the paper's primary contribution.

- :mod:`repro.core.layout` -- superchunk layout (1-sharing, 1-mirroring).
- :mod:`repro.core.lstor` -- per-disk parity add-ons, single and stacked.
- :mod:`repro.core.journal` -- the crash-consistency journal.
- :mod:`repro.core.placement` -- pair-constrained block placement.
- :mod:`repro.core.node` -- the RAIDP DataNode.
- :mod:`repro.core.cluster` -- the :class:`RaidpCluster` facade.
- :mod:`repro.core.recovery` -- single- and double-failure recovery.
"""

from repro.core.balancer import Balancer, BalanceReport
from repro.core.client import RaidpClient
from repro.core.cluster import RaidpCluster
from repro.core.journal import Journal, JournalRecord, RecordState
from repro.core.layout import Layout, LayoutSpec, Superchunk, rotational_layout
from repro.core.lstor import Lstor, LstorStack
from repro.core.monitor import ClusterMonitor, MonitorConfig
from repro.core.node import RaidpConfig, RaidpDataNode
from repro.core.placement import RaidpPlacement, SuperchunkMap
from repro.core.recovery import RecoveryManager, RecoveryOptions, RecoveryReport
from repro.core.scrubber import Scrubber, corrupt_block

__all__ = [
    "BalanceReport",
    "Balancer",
    "ClusterMonitor",
    "RaidpClient",
    "Journal",
    "JournalRecord",
    "Layout",
    "LayoutSpec",
    "Lstor",
    "LstorStack",
    "MonitorConfig",
    "RaidpCluster",
    "RaidpConfig",
    "RaidpDataNode",
    "RaidpPlacement",
    "RecordState",
    "RecoveryManager",
    "RecoveryOptions",
    "RecoveryReport",
    "Scrubber",
    "Superchunk",
    "SuperchunkMap",
    "corrupt_block",
    "rotational_layout",
]
