"""Deterministic, seedable fault injection for simulated clusters.

Any workload or experiment can run under churn reproducibly: a
:class:`FaultSchedule` is a declarative, time-sorted list of
:class:`Fault` records (disk failure at t, node crash/restart, transient
NIC degradation, Lstor loss), and a :class:`FaultInjector` installs the
schedule as a simulation process that applies each fault at its instant.
Two runs with the same cluster seed and the same schedule produce
bit-identical histories -- the property the chaos soak asserts.

Fault kinds and their semantics:

``disk_fail``
    The target DataNode's disk dies (in-flight and future I/O raises
    :class:`~repro.errors.DiskFailedError`).  The heartbeat detector
    notices and triggers recovery.
``disk_replace``
    The target DataNode's disk is swapped for an empty one (content
    gone, head at zero).  Pair with a monitor rejoin to readmit it.
``node_crash``
    The target server fails wholesale: every disk on it dies and its
    DataNodes stop serving.
``node_restart``
    The crashed server comes back with replaced disks.  When the
    injector was given a monitor, each DataNode re-enters through
    :meth:`~repro.core.monitor.ClusterMonitor.rejoin` (block report,
    reconciliation, quarantine release); without one the DataNodes are
    just marked alive again.
``nic_degrade``
    The target node's primary NIC runs at ``factor`` of its rates for
    ``duration`` seconds, then restores -- a transient link fault.
    In-flight flows are re-fair-shared at both edges.
``lstor_fail``
    The target DataNode's (primary) Lstor dies: parity is gone but the
    disk keeps serving -- the paper's "Lstor loss" case, where RAIDP
    degrades to plain 2-way replication for that disk.

Targets are DataNode names for disk/Lstor faults and server (node)
names for node/NIC faults; for single-disk servers the two coincide.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.sim.engine import Process

HOURS_PER_YEAR = 24 * 365.0

FAULT_KINDS = (
    "disk_fail",
    "disk_replace",
    "node_crash",
    "node_restart",
    "nic_degrade",
    "lstor_fail",
)


class FaultError(ReproError):
    """A fault schedule is malformed or targets something unknown."""


@dataclass(frozen=True, order=True)
class Fault:
    """One scheduled fault.  Ordering is by time (schedule order)."""

    at: float
    kind: str
    target: str
    #: ``nic_degrade`` only: rate multiplier in (0, 1] and how long the
    #: degradation lasts before the NIC restores.
    factor: float = 1.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise FaultError("fault time must be non-negative")
        if self.kind == "nic_degrade":
            if not (0 < self.factor <= 1):
                raise FaultError("nic_degrade factor must be in (0, 1]")
            if self.duration <= 0:
                raise FaultError("nic_degrade needs a positive duration")


@dataclass(frozen=True)
class InjectionRecord:
    """What the injector actually did, at the simulated instant it did it."""

    at: float
    fault: Fault
    note: str = ""


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted fault plan."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(sorted(self.faults)))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def extended(self, *faults: Fault) -> "FaultSchedule":
        return FaultSchedule(self.faults + tuple(faults))

    def shifted(self, delta: float) -> "FaultSchedule":
        """The same schedule, ``delta`` seconds later."""
        return FaultSchedule(
            tuple(replace(f, at=f.at + delta) for f in self.faults)
        )

    def validate(self, dfs) -> None:
        """Check every target resolves against ``dfs`` before running."""
        datanode_names = {dn.name for dn in dfs.datanodes}
        node_names = {node.name for node in dfs.cluster.nodes}
        for fault in self.faults:
            if fault.kind in ("node_crash", "node_restart", "nic_degrade"):
                if fault.target not in node_names and fault.target not in datanode_names:
                    raise FaultError(
                        f"{fault.kind} targets unknown node {fault.target!r}"
                    )
            elif fault.target not in datanode_names:
                raise FaultError(
                    f"{fault.kind} targets unknown datanode {fault.target!r}"
                )


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a cluster as a sim process."""

    def __init__(self, dfs, schedule: FaultSchedule, monitor=None) -> None:
        self.dfs = dfs
        self.sim = dfs.sim
        self.schedule = schedule
        self.monitor = monitor
        self.injected: List[InjectionRecord] = []
        self._saved_rates: dict = {}
        self._process: Optional[Process] = None
        schedule.validate(dfs)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Install the schedule walker; returns its process."""
        if self._process is not None:
            raise FaultError("injector already started")
        self._process = self.sim.process(self._runner(), name="fault-injector")
        return self._process

    @property
    def done(self) -> bool:
        return self._process is not None and self._process.triggered

    def _runner(self) -> Generator:
        for fault in self.schedule:
            delay = fault.at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            note = self._apply(fault)
            self.injected.append(InjectionRecord(self.sim.now, fault, note))
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "fault", fault.kind, self.sim.now,
                    target=fault.target, note=note,
                )
        return len(self.injected)

    # ------------------------------------------------------------------
    # Target resolution.
    # ------------------------------------------------------------------
    def _datanode(self, name: str):
        return self.dfs.namenode.datanode(name)

    def _node(self, name: str):
        for node in self.dfs.cluster.nodes:
            if node.name == name:
                return node
        # Allow naming a node by one of its DataNodes (multi-disk servers).
        return self._datanode(name).node

    def _datanodes_on(self, node) -> list:
        return [dn for dn in self.dfs.datanodes if dn.node is node]

    # ------------------------------------------------------------------
    # Application.
    # ------------------------------------------------------------------
    def _apply(self, fault: Fault) -> str:
        if fault.kind == "disk_fail":
            datanode = self._datanode(fault.target)
            datanode.disk.fail()
            return f"disk {datanode.disk.name} failed"
        if fault.kind == "disk_replace":
            datanode = self._datanode(fault.target)
            datanode.disk.repair()
            return f"disk {datanode.disk.name} replaced"
        if fault.kind == "node_crash":
            node = self._node(fault.target)
            node.fail()
            return f"node {node.name} crashed ({len(node.disks)} disks down)"
        if fault.kind == "node_restart":
            node = self._node(fault.target)
            node.restart()
            rejoined = []
            for datanode in self._datanodes_on(node):
                if self.monitor is not None:
                    self.monitor.rejoin(datanode)
                else:
                    datanode.alive = True
                rejoined.append(datanode.name)
            return f"node {node.name} restarted; rejoined {rejoined}"
        if fault.kind == "nic_degrade":
            node = self._node(fault.target)
            nic = node.primary_nic
            self._saved_rates.setdefault(nic, (nic.tx_rate, nic.rx_rate))
            switch = self.dfs.switch
            switch.set_nic_rates(
                nic, nic.tx_rate * fault.factor, nic.rx_rate * fault.factor
            )
            self.sim.process(
                self._restore_nic(nic, fault.duration),
                name=f"nic-restore:{nic.name}",
            )
            return (
                f"nic {nic.name} degraded to {fault.factor:.2f}x "
                f"for {fault.duration:g}s"
            )
        if fault.kind == "lstor_fail":
            datanode = self._datanode(fault.target)
            datanode.lstors.primary.fail()
            return f"lstor {datanode.lstors.primary.name} failed"
        raise FaultError(f"unknown fault kind {fault.kind!r}")  # pragma: no cover

    def _restore_nic(self, nic, duration: float) -> Generator:
        yield self.sim.timeout(duration)
        tx_rate, rx_rate = self._saved_rates.pop(nic)
        self.dfs.switch.set_nic_rates(nic, tx_rate, rx_rate)
        return None


# ----------------------------------------------------------------------
# Seeded schedule construction.
# ----------------------------------------------------------------------
def chaos_schedule(
    dfs,
    seed: int,
    window: Tuple[float, float] = (2.0, 10.0),
    singles: int = 1,
    doubles: int = 1,
    node_crashes: int = 1,
    nic_degrades: int = 1,
    lstor_losses: int = 1,
    restart_delay: float = 4.0,
    min_gap: float = 3.5,
) -> FaultSchedule:
    """A randomized-but-seeded chaos plan over ``dfs``'s layout.

    Deterministic given (cluster, seed): victims are drawn from the
    sorted disk list with :class:`random.Random`.  The plan guarantees:

    - ``doubles`` simultaneous failures of superchunk-*sharing* pairs
      (the Lstor-reconstruction path),
    - ``singles`` independent single-disk failures and ``node_crashes``
      whole-node crash + restart cycles (restart ``restart_delay`` after
      the crash -- long enough for detection and recovery, so the
      restart exercises the wiped-media rejoin path),
    - victims are pairwise distinct, and Lstor losses strike disks that
      keep *working* (parity gone, data still served),
    - fault instants are spread across ``window`` so they land while
      traffic is active, and *detectable* faults (disk failures, node
      crashes) are at least ``min_gap`` apart so independent failures
      are never co-detected as one correlated group -- only the
      intentional same-instant sharing pairs exercise the double-failure
      path.  Three overlapping disk losses would exceed RAIDP's
      double-failure design point.
    """
    rng = random.Random(seed)
    layout = dfs.layout
    disks = sorted(layout.disks)
    lo, hi = window

    def when() -> float:
        return round(rng.uniform(lo, hi), 3)

    # Lay out the detectable instants constructively -- i*min_gap plus a
    # sorted random jitter keeps every pair at least min_gap apart --
    # then shuffle which fault gets which instant.
    need = doubles + singles + node_crashes
    span = hi - lo
    slack = span - max(need - 1, 0) * min_gap
    if slack < 0:
        raise FaultError(
            f"window {window} too narrow for {need} detectable faults "
            f"separated by min_gap={min_gap:g}"
        )
    offsets = sorted(rng.uniform(0, slack) for _ in range(need))
    detectable = [round(lo + i * min_gap + offsets[i], 3) for i in range(need)]
    rng.shuffle(detectable)

    def when_detectable() -> float:
        return detectable.pop()

    victims: set = set()
    faults: List[Fault] = []

    # Sharing pairs first (they constrain each other the most).
    for _ in range(doubles):
        candidates = [
            (a, b)
            for i, a in enumerate(disks)
            for b in disks[i + 1 :]
            if a not in victims
            and b not in victims
            and layout.shared(a, b) is not None
        ]
        if not candidates:
            raise FaultError("no unused sharing pair left for a double failure")
        a, b = rng.choice(candidates)
        victims.update((a, b))
        at = when_detectable()
        faults.append(Fault(at=at, kind="disk_fail", target=a))
        faults.append(Fault(at=at, kind="disk_fail", target=b))

    def pick_free() -> str:
        free = [d for d in disks if d not in victims]
        if not free:
            raise FaultError("every disk is already a victim")
        choice = rng.choice(free)
        victims.add(choice)
        return choice

    for _ in range(singles):
        faults.append(
            Fault(at=when_detectable(), kind="disk_fail", target=pick_free())
        )

    for _ in range(node_crashes):
        target = pick_free()
        node_name = layout.domain_of(target) or target
        at = when_detectable()
        faults.append(Fault(at=at, kind="node_crash", target=node_name))
        faults.append(
            Fault(at=at + restart_delay, kind="node_restart", target=node_name)
        )

    # Lstor losses and NIC degradations strike *surviving* disks/nodes so
    # they degrade service without losing data.
    survivors = [d for d in disks if d not in victims]
    for _ in range(lstor_losses):
        if not survivors:
            break
        faults.append(
            Fault(at=when(), kind="lstor_fail", target=rng.choice(survivors))
        )
    for _ in range(nic_degrades):
        if not survivors:
            break
        target = rng.choice(survivors)
        node_name = layout.domain_of(target) or target
        faults.append(
            Fault(
                at=when(),
                kind="nic_degrade",
                target=node_name,
                factor=round(rng.uniform(0.05, 0.25), 3),
                duration=round(rng.uniform(1.0, 3.0), 3),
            )
        )
    return FaultSchedule(tuple(faults))


# ----------------------------------------------------------------------
# Shared failure-model parameters.
#
# Both halves of the failure story consume these: the in-simulator fault
# injector above (seconds-scale chaos under live traffic) and the
# long-horizon durability engine (:mod:`repro.analysis.montecarlo`,
# years-scale fleet statistics).  Keeping the parameter vocabulary in one
# place means an experiment that stresses "AFR 4%, 2-week scrub cadence,
# correlated rack bursts" names the same quantities in both worlds.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiskLifetimeModel:
    """Permanent disk failures: Weibull lifetimes pinned to a target AFR.

    ``weibull_shape == 1.0`` is the exponential (constant-hazard) special
    case; ``< 1`` models infant mortality, ``> 1`` wear-out -- the three
    regimes the disk-population literature (Pinheiro et al., Schroeder &
    Gibson) fits field traces with.  Rather than expose the unintuitive
    Weibull scale directly, the scale is derived so the probability that
    a fresh disk fails within its first year equals ``afr`` for *any*
    shape, so sweeping the shape changes failure clustering over a
    disk's life without changing the headline failure rate.
    """

    #: Annualized failure rate of a fresh disk (fraction in [0, 1)).
    afr: float = 0.02
    #: Weibull shape parameter (1.0 = memoryless/exponential).
    weibull_shape: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.afr < 1.0:
            raise FaultError(f"afr must be in (0, 1), got {self.afr}")
        if self.weibull_shape <= 0.0:
            raise FaultError("weibull_shape must be positive")

    @property
    def scale_hours(self) -> float:
        """Weibull scale such that P(lifetime < 1 year) == afr."""
        return HOURS_PER_YEAR / (-math.log(1.0 - self.afr)) ** (
            1.0 / self.weibull_shape
        )

    @property
    def mttf_hours(self) -> float:
        """Mean lifetime in hours (Weibull mean = scale * Gamma(1+1/k))."""
        return self.scale_hours * math.gamma(1.0 + 1.0 / self.weibull_shape)

    def sample_lifetimes(
        self, rng: "np.random.Generator", count: int
    ) -> "np.ndarray":
        """``count`` independent lifetimes (hours) from the model."""
        if self.weibull_shape == 1.0:
            return rng.exponential(self.scale_hours, size=count)
        return self.scale_hours * rng.weibull(self.weibull_shape, size=count)


@dataclass(frozen=True)
class LatentErrorModel:
    """Latent sector errors interacting with a periodic scrubber.

    Errors develop silently at ``rate_per_disk_year`` and are detected
    and repaired by the scrub pass that next reads them (the
    :class:`repro.core.scrubber.Scrubber` cadence).  What durability
    cares about is the probability that a *rebuild* read -- issued at an
    effectively uniform point inside a scrub interval -- hits an error
    the scrubber has not cleaned yet: the classic rep-2 "second copy has
    a bad sector" loss path.
    """

    #: Rate at which a disk develops undetected sector errors (per year).
    rate_per_disk_year: float = 0.3
    #: Scrub cycle length: every block is re-read and verified this often.
    scrub_interval_hours: float = 14 * 24.0

    def __post_init__(self) -> None:
        if self.rate_per_disk_year < 0:
            raise FaultError("latent error rate must be non-negative")
        if self.scrub_interval_hours <= 0:
            raise FaultError("scrub interval must be positive")

    def disk_read_error_probability(self) -> float:
        """P(>= 1 undetected latent error present when a disk is read).

        The read lands uniformly inside a scrub interval of length T, so
        the exposure age u ~ U[0, T) and presence is 1 - exp(-r u);
        averaging over u gives ``1 - (1 - exp(-rT)) / (rT)``.
        """
        rt = self.rate_per_disk_year / HOURS_PER_YEAR * self.scrub_interval_hours
        if rt <= 0.0:
            return 0.0
        return 1.0 - (1.0 - math.exp(-rt)) / rt

    def block_read_error_probability(self, block_fraction: float) -> float:
        """P(a specific block's rebuild read hits a latent error).

        ``block_fraction`` is the block's share of the disk's data; each
        latent error is assumed to corrupt one block, so the expected
        number of errors on the block is (mean errors present) x
        (block share), and presence follows the Poisson complement.
        The mean errors present under periodic scrubbing is r*T/2
        (uniform exposure age over the interval).
        """
        mean_present = (
            self.rate_per_disk_year
            / HOURS_PER_YEAR
            * self.scrub_interval_hours
            / 2.0
        )
        return -math.expm1(-mean_present * block_fraction)


@dataclass(frozen=True)
class CorrelatedFailureModel:
    """Rack-correlated events: transient outages and failure bursts.

    Outages hide a rack (power/switch loss -- nothing is destroyed; the
    paper's s2 availability concession).  Bursts *destroy*: a shared
    PDU surge or bad firmware batch permanently fails each disk in the
    struck rack independently with ``burst_kill_probability`` -- and any
    co-located parity device (RAIDP's Lstor) with it, which is exactly
    the correlated path that separates intra-rack from cross-rack
    redundancy placements.
    """

    #: Transient whole-rack outages per rack per year.
    rack_outage_rate_per_year: float = 0.25
    #: Hours until an outaged rack returns.
    rack_outage_hours: float = 4.0
    #: Correlated destructive bursts per rack per year.
    burst_rate_per_rack_year: float = 0.02
    #: P(each disk/Lstor in the struck rack dies in the burst).
    burst_kill_probability: float = 0.08

    def __post_init__(self) -> None:
        if min(self.rack_outage_rate_per_year, self.burst_rate_per_rack_year) < 0:
            raise FaultError("correlated failure rates must be non-negative")
        if self.rack_outage_hours <= 0:
            raise FaultError("rack outage duration must be positive")
        if not 0.0 <= self.burst_kill_probability <= 1.0:
            raise FaultError("burst kill probability must be in [0, 1]")


@dataclass(frozen=True)
class RepairModel:
    """How fast and how eagerly the fleet repairs permanent losses.

    ``lazy_threshold``/``lazy_max_wait_hours`` implement lazy recovery:
    rebuilds are deferred until enough disks are pending to batch (or a
    deadline passes), trading a longer blocks-at-risk exposure for fewer
    spurious rebuilds of transiently-absent disks.  The concurrency cap
    models the fleet's shared repair bandwidth: when more disks are dead
    than ``concurrent_rebuilds``, completions queue behind it.
    """

    #: Hours from failure to the monitor declaring the disk dead.
    detection_hours: float = 0.25
    #: Hours to re-replicate one disk at full repair bandwidth.
    disk_rebuild_hours: float = 12.0
    #: Fleet-wide simultaneous rebuild slots (repair-bandwidth cap).
    concurrent_rebuilds: int = 8
    #: Pending-disk count that triggers a (lazy) rebuild batch.
    lazy_threshold: int = 1
    #: Ceiling on lazy deferral for a pending disk.
    lazy_max_wait_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.detection_hours < 0 or self.lazy_max_wait_hours < 0:
            raise FaultError("repair delays must be non-negative")
        if self.disk_rebuild_hours <= 0:
            raise FaultError("disk_rebuild_hours must be positive")
        if self.concurrent_rebuilds < 1:
            raise FaultError("need at least one rebuild slot")
        if self.lazy_threshold < 1:
            raise FaultError("lazy_threshold must be >= 1")
