"""Deterministic, seedable fault injection for simulated clusters.

Any workload or experiment can run under churn reproducibly: a
:class:`FaultSchedule` is a declarative, time-sorted list of
:class:`Fault` records (disk failure at t, node crash/restart, transient
NIC degradation, Lstor loss), and a :class:`FaultInjector` installs the
schedule as a simulation process that applies each fault at its instant.
Two runs with the same cluster seed and the same schedule produce
bit-identical histories -- the property the chaos soak asserts.

Fault kinds and their semantics:

``disk_fail``
    The target DataNode's disk dies (in-flight and future I/O raises
    :class:`~repro.errors.DiskFailedError`).  The heartbeat detector
    notices and triggers recovery.
``disk_replace``
    The target DataNode's disk is swapped for an empty one (content
    gone, head at zero).  Pair with a monitor rejoin to readmit it.
``node_crash``
    The target server fails wholesale: every disk on it dies and its
    DataNodes stop serving.
``node_restart``
    The crashed server comes back with replaced disks.  When the
    injector was given a monitor, each DataNode re-enters through
    :meth:`~repro.core.monitor.ClusterMonitor.rejoin` (block report,
    reconciliation, quarantine release); without one the DataNodes are
    just marked alive again.
``nic_degrade``
    The target node's primary NIC runs at ``factor`` of its rates for
    ``duration`` seconds, then restores -- a transient link fault.
    In-flight flows are re-fair-shared at both edges.
``lstor_fail``
    The target DataNode's (primary) Lstor dies: parity is gone but the
    disk keeps serving -- the paper's "Lstor loss" case, where RAIDP
    degrades to plain 2-way replication for that disk.

Targets are DataNode names for disk/Lstor faults and server (node)
names for node/NIC faults; for single-disk servers the two coincide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Generator, List, Optional, Tuple

from repro.errors import ReproError
from repro.sim.engine import Process

FAULT_KINDS = (
    "disk_fail",
    "disk_replace",
    "node_crash",
    "node_restart",
    "nic_degrade",
    "lstor_fail",
)


class FaultError(ReproError):
    """A fault schedule is malformed or targets something unknown."""


@dataclass(frozen=True, order=True)
class Fault:
    """One scheduled fault.  Ordering is by time (schedule order)."""

    at: float
    kind: str
    target: str
    #: ``nic_degrade`` only: rate multiplier in (0, 1] and how long the
    #: degradation lasts before the NIC restores.
    factor: float = 1.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise FaultError("fault time must be non-negative")
        if self.kind == "nic_degrade":
            if not (0 < self.factor <= 1):
                raise FaultError("nic_degrade factor must be in (0, 1]")
            if self.duration <= 0:
                raise FaultError("nic_degrade needs a positive duration")


@dataclass(frozen=True)
class InjectionRecord:
    """What the injector actually did, at the simulated instant it did it."""

    at: float
    fault: Fault
    note: str = ""


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted fault plan."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(sorted(self.faults)))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def extended(self, *faults: Fault) -> "FaultSchedule":
        return FaultSchedule(self.faults + tuple(faults))

    def shifted(self, delta: float) -> "FaultSchedule":
        """The same schedule, ``delta`` seconds later."""
        return FaultSchedule(
            tuple(replace(f, at=f.at + delta) for f in self.faults)
        )

    def validate(self, dfs) -> None:
        """Check every target resolves against ``dfs`` before running."""
        datanode_names = {dn.name for dn in dfs.datanodes}
        node_names = {node.name for node in dfs.cluster.nodes}
        for fault in self.faults:
            if fault.kind in ("node_crash", "node_restart", "nic_degrade"):
                if fault.target not in node_names and fault.target not in datanode_names:
                    raise FaultError(
                        f"{fault.kind} targets unknown node {fault.target!r}"
                    )
            elif fault.target not in datanode_names:
                raise FaultError(
                    f"{fault.kind} targets unknown datanode {fault.target!r}"
                )


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a cluster as a sim process."""

    def __init__(self, dfs, schedule: FaultSchedule, monitor=None) -> None:
        self.dfs = dfs
        self.sim = dfs.sim
        self.schedule = schedule
        self.monitor = monitor
        self.injected: List[InjectionRecord] = []
        self._saved_rates: dict = {}
        self._process: Optional[Process] = None
        schedule.validate(dfs)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Install the schedule walker; returns its process."""
        if self._process is not None:
            raise FaultError("injector already started")
        self._process = self.sim.process(self._runner(), name="fault-injector")
        return self._process

    @property
    def done(self) -> bool:
        return self._process is not None and self._process.triggered

    def _runner(self) -> Generator:
        for fault in self.schedule:
            delay = fault.at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            note = self._apply(fault)
            self.injected.append(InjectionRecord(self.sim.now, fault, note))
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "fault", fault.kind, self.sim.now,
                    target=fault.target, note=note,
                )
        return len(self.injected)

    # ------------------------------------------------------------------
    # Target resolution.
    # ------------------------------------------------------------------
    def _datanode(self, name: str):
        return self.dfs.namenode.datanode(name)

    def _node(self, name: str):
        for node in self.dfs.cluster.nodes:
            if node.name == name:
                return node
        # Allow naming a node by one of its DataNodes (multi-disk servers).
        return self._datanode(name).node

    def _datanodes_on(self, node) -> list:
        return [dn for dn in self.dfs.datanodes if dn.node is node]

    # ------------------------------------------------------------------
    # Application.
    # ------------------------------------------------------------------
    def _apply(self, fault: Fault) -> str:
        if fault.kind == "disk_fail":
            datanode = self._datanode(fault.target)
            datanode.disk.fail()
            return f"disk {datanode.disk.name} failed"
        if fault.kind == "disk_replace":
            datanode = self._datanode(fault.target)
            datanode.disk.repair()
            return f"disk {datanode.disk.name} replaced"
        if fault.kind == "node_crash":
            node = self._node(fault.target)
            node.fail()
            return f"node {node.name} crashed ({len(node.disks)} disks down)"
        if fault.kind == "node_restart":
            node = self._node(fault.target)
            node.restart()
            rejoined = []
            for datanode in self._datanodes_on(node):
                if self.monitor is not None:
                    self.monitor.rejoin(datanode)
                else:
                    datanode.alive = True
                rejoined.append(datanode.name)
            return f"node {node.name} restarted; rejoined {rejoined}"
        if fault.kind == "nic_degrade":
            node = self._node(fault.target)
            nic = node.primary_nic
            self._saved_rates.setdefault(nic, (nic.tx_rate, nic.rx_rate))
            switch = self.dfs.switch
            switch.set_nic_rates(
                nic, nic.tx_rate * fault.factor, nic.rx_rate * fault.factor
            )
            self.sim.process(
                self._restore_nic(nic, fault.duration),
                name=f"nic-restore:{nic.name}",
            )
            return (
                f"nic {nic.name} degraded to {fault.factor:.2f}x "
                f"for {fault.duration:g}s"
            )
        if fault.kind == "lstor_fail":
            datanode = self._datanode(fault.target)
            datanode.lstors.primary.fail()
            return f"lstor {datanode.lstors.primary.name} failed"
        raise FaultError(f"unknown fault kind {fault.kind!r}")  # pragma: no cover

    def _restore_nic(self, nic, duration: float) -> Generator:
        yield self.sim.timeout(duration)
        tx_rate, rx_rate = self._saved_rates.pop(nic)
        self.dfs.switch.set_nic_rates(nic, tx_rate, rx_rate)
        return None


# ----------------------------------------------------------------------
# Seeded schedule construction.
# ----------------------------------------------------------------------
def chaos_schedule(
    dfs,
    seed: int,
    window: Tuple[float, float] = (2.0, 10.0),
    singles: int = 1,
    doubles: int = 1,
    node_crashes: int = 1,
    nic_degrades: int = 1,
    lstor_losses: int = 1,
    restart_delay: float = 4.0,
    min_gap: float = 3.5,
) -> FaultSchedule:
    """A randomized-but-seeded chaos plan over ``dfs``'s layout.

    Deterministic given (cluster, seed): victims are drawn from the
    sorted disk list with :class:`random.Random`.  The plan guarantees:

    - ``doubles`` simultaneous failures of superchunk-*sharing* pairs
      (the Lstor-reconstruction path),
    - ``singles`` independent single-disk failures and ``node_crashes``
      whole-node crash + restart cycles (restart ``restart_delay`` after
      the crash -- long enough for detection and recovery, so the
      restart exercises the wiped-media rejoin path),
    - victims are pairwise distinct, and Lstor losses strike disks that
      keep *working* (parity gone, data still served),
    - fault instants are spread across ``window`` so they land while
      traffic is active, and *detectable* faults (disk failures, node
      crashes) are at least ``min_gap`` apart so independent failures
      are never co-detected as one correlated group -- only the
      intentional same-instant sharing pairs exercise the double-failure
      path.  Three overlapping disk losses would exceed RAIDP's
      double-failure design point.
    """
    rng = random.Random(seed)
    layout = dfs.layout
    disks = sorted(layout.disks)
    lo, hi = window

    def when() -> float:
        return round(rng.uniform(lo, hi), 3)

    # Lay out the detectable instants constructively -- i*min_gap plus a
    # sorted random jitter keeps every pair at least min_gap apart --
    # then shuffle which fault gets which instant.
    need = doubles + singles + node_crashes
    span = hi - lo
    slack = span - max(need - 1, 0) * min_gap
    if slack < 0:
        raise FaultError(
            f"window {window} too narrow for {need} detectable faults "
            f"separated by min_gap={min_gap:g}"
        )
    offsets = sorted(rng.uniform(0, slack) for _ in range(need))
    detectable = [round(lo + i * min_gap + offsets[i], 3) for i in range(need)]
    rng.shuffle(detectable)

    def when_detectable() -> float:
        return detectable.pop()

    victims: set = set()
    faults: List[Fault] = []

    # Sharing pairs first (they constrain each other the most).
    for _ in range(doubles):
        candidates = [
            (a, b)
            for i, a in enumerate(disks)
            for b in disks[i + 1 :]
            if a not in victims
            and b not in victims
            and layout.shared(a, b) is not None
        ]
        if not candidates:
            raise FaultError("no unused sharing pair left for a double failure")
        a, b = rng.choice(candidates)
        victims.update((a, b))
        at = when_detectable()
        faults.append(Fault(at=at, kind="disk_fail", target=a))
        faults.append(Fault(at=at, kind="disk_fail", target=b))

    def pick_free() -> str:
        free = [d for d in disks if d not in victims]
        if not free:
            raise FaultError("every disk is already a victim")
        choice = rng.choice(free)
        victims.add(choice)
        return choice

    for _ in range(singles):
        faults.append(
            Fault(at=when_detectable(), kind="disk_fail", target=pick_free())
        )

    for _ in range(node_crashes):
        target = pick_free()
        node_name = layout.domain_of(target) or target
        at = when_detectable()
        faults.append(Fault(at=at, kind="node_crash", target=node_name))
        faults.append(
            Fault(at=at + restart_delay, kind="node_restart", target=node_name)
        )

    # Lstor losses and NIC degradations strike *surviving* disks/nodes so
    # they degrade service without losing data.
    survivors = [d for d in disks if d not in victims]
    for _ in range(lstor_losses):
        if not survivors:
            break
        faults.append(
            Fault(at=when(), kind="lstor_fail", target=rng.choice(survivors))
        )
    for _ in range(nic_degrades):
        if not survivors:
            break
        target = rng.choice(survivors)
        node_name = layout.domain_of(target) or target
        faults.append(
            Fault(
                at=when(),
                kind="nic_degrade",
                target=node_name,
                factor=round(rng.uniform(0.05, 0.25), 3),
                duration=round(rng.uniform(1.0, 3.0), 3),
            )
        )
    return FaultSchedule(tuple(faults))
