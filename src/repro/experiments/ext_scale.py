"""Extension: large-cluster scale-out (16 / 64 / 128 / 256 nodes).

The paper evaluates RAIDP on 16 nodes; the parity-declustering and
warehouse-scale literature it cites gets its results from sweeping much
larger disk counts.  This sweep grows the cluster to 256 nodes under a
fixed per-node working set and reports, per replication scheme:

- DFSIO write runtime (should stay ~flat: writes are pipeline-local),
- double-failure recovery time (RAIDP: one superchunk from Lstor parity
  plus the dead disk's surviving mirrors -- independent of cluster size),
- accumulated network GB per node (RAIDP's 2 copies vs HDFS-3's 3).

The sweep leans on the incremental fair-share solver: at 256 nodes a
write burst keeps hundreds of flows in flight, where the old
rebuild-the-world allocator was O(flows^2) per arrival.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.experiments.parallel import fan_out
from repro.experiments.runner import ExperimentResult
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec

#: Cluster sizes swept (the paper's 16 plus three scale-out points).
SIZES = (16, 64, 128, 256)
SCHEMES = ("hdfs3", "raidp")

#: One placement seed: the sweep is size- not placement-sensitive.
SCALE_SEEDS = (1,)

#: Per-node working set and layout constants, sized so the 256-node
#: point stays interactive at smoke scale (full scale multiplies by 8).
BLOCK_SIZE = 8 * units.MiB
BYTES_PER_NODE = 32 * units.MiB
SUPERCHUNK_SIZE = 32 * units.MiB
SUPERCHUNKS_PER_DISK = 8

#: Task key: (scheme, num_nodes, placement seed) for HDFS-3 points, or
#: (scheme, num_nodes, seed, phase) with phase "write"/"recovery" for
#: RAIDP points.  The write phase returns its measurements plus a
#: snapshot of the post-ingest cluster; the recovery phase restores that
#: snapshot instead of re-simulating the whole ingest.  Legacy 3-tuple
#: RAIDP keys still run both phases in one simulator.
#:
#: Phase-split RAIDP tasks additionally run under the flight recorder
#: and append a 4th element -- per-phase disk-latency SLO summaries --
#: to their result tuples; the first three elements keep the legacy
#: layout, so 3-unpacking consumers keep working.
TaskKey = Tuple

#: Sampling cadence for the phase SLO summaries (simulated seconds).
SLO_SAMPLE_INTERVAL = 0.25


def tasks(
    full_scale: bool = False, seeds: Optional[Sequence[int]] = None
) -> List[TaskKey]:
    seeds = tuple(seeds) if seeds is not None else SCALE_SEEDS
    keys: List[TaskKey] = []
    for num_nodes in SIZES:
        for scheme in SCHEMES:
            for seed in seeds:
                if scheme == "raidp":
                    keys.append((scheme, num_nodes, seed, "write"))
                    keys.append((scheme, num_nodes, seed, "recovery"))
                else:
                    keys.append((scheme, num_nodes, seed))
    return keys


def task_deps(key: TaskKey) -> Tuple[TaskKey, ...]:
    """The recovery phase consumes the write phase's cluster snapshot."""
    if len(key) == 4 and key[3] == "recovery":
        return ((key[0], key[1], key[2], "write"),)
    return ()


def task_cost(key: TaskKey) -> float:
    """Relative weight: ingest work scales with node count; recovery on a
    restored snapshot is roughly constant (one superchunk rebuild)."""
    if len(key) == 4 and key[3] == "recovery":
        return 1.0
    num_nodes = key[1]
    return max(1.0, num_nodes / 16.0)


def _build(scheme: str, num_nodes: int, seed: int) -> Any:
    spec = ClusterSpec(num_nodes=num_nodes)
    if scheme == "hdfs3":
        return HdfsCluster(
            spec=spec,
            config=DfsConfig(replication=3, block_size=BLOCK_SIZE),
            payload_mode="tokens",
            seed=seed,
        )
    return RaidpCluster(
        spec=spec,
        config=DfsConfig(replication=2, block_size=BLOCK_SIZE),
        raidp=RaidpConfig(),
        superchunk_size=SUPERCHUNK_SIZE,
        superchunks_per_disk=SUPERCHUNKS_PER_DISK,
        payload_mode="tokens",
        seed=seed,
    )


def _recover_worst_pair(dfs: RaidpCluster) -> float:
    # Fail the first superchunk-sharing disk pair: the paper's worst case
    # (one superchunk lost on both copies, rebuilt via Lstor parity).
    disks = dfs.layout.disks
    pair = next(
        (a, b)
        for i, a in enumerate(disks)
        for b in disks[i + 1 :]
        if dfs.layout.shared(a, b) is not None
    )
    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(
        pair[0],
        pair[1],
        options=RecoveryOptions(),
        remirror_rest=False,
        install=False,
    )
    return report.duration


def _phase_slo(sampler: Any) -> Dict[str, float]:
    """Small, picklable SLO digest of one sampled phase.

    Scores the default disk-latency specs over this run's window and
    keeps only numbers: the worst windowed p50/p99 and a 0/1 verdict
    (so seed-averaging in merge() turns it into a pass fraction).
    """
    from repro.obs.slo import default_slos, evaluate_slos

    latency = [s for s in default_slos() if s.series.startswith("disk_io_latency")]
    digest: Dict[str, float] = {}
    ok = 1.0
    for result in evaluate_slos(sampler.store, latency, run=sampler.run):
        label = result.spec.series.rsplit(":", 1)[1]
        digest[f"{label}_worst"] = float(result.worst or 0.0)
        if not result.ok:
            ok = 0.0
    digest["slo_ok"] = ok
    return digest


def run_task(
    key: TaskKey, full_scale: bool = False, deps: Optional[Dict[TaskKey, Tuple]] = None
) -> Tuple:
    """One sweep point or phase.

    - hdfs3 / legacy raidp keys return (write seconds, net GB per node,
      recovery seconds or None).
    - ("raidp", n, seed, "write") returns (write seconds, net GB per
      node, snapshot bytes, slo digest) -- the snapshot travels to the
      recovery task as a dependency result (pickled across the pool
      boundary, which is what makes spawn-context workers work at all).
    - ("raidp", n, seed, "recovery") returns the final row tuple
      (write seconds, net GB per node, recovery seconds, slo digests);
      indexes 0-2 are the legacy triple.
    """
    from repro.obs.metrics import cluster_metrics
    from repro.obs.timeseries import Sampler, capture
    from repro.workloads.dfsio import dfsio_write

    scheme, num_nodes, seed = key[:3]
    if len(key) == 4 and key[3] == "recovery":
        dep = (deps or {})[(scheme, num_nodes, seed, "write")]
        write_s, per_node_gb, blob = dep[:3]
        slo = dict(dep[3]) if len(dep) > 3 else {}
        with capture(Sampler(interval=SLO_SAMPLE_INTERVAL)) as sampler:
            dfs = RaidpCluster.from_snapshot(blob)
            sampler.watch(cluster_metrics(dfs))
            recovery_s = _recover_worst_pair(dfs)
        slo["recovery"] = _phase_slo(sampler)
        return write_s, per_node_gb, recovery_s, slo
    dataset = num_nodes * BYTES_PER_NODE * (8 if full_scale else 1)
    if len(key) == 4:  # phase-split raidp: sampled write phase
        with capture(Sampler(interval=SLO_SAMPLE_INTERVAL)) as sampler:
            dfs = _build(scheme, num_nodes, seed)
            sampler.watch(cluster_metrics(dfs))
            write = dfsio_write(dfs, dataset)
        per_node_gb = dfs.switch.total_bytes / num_nodes / units.GB
        return (
            write.runtime, per_node_gb, dfs.snapshot(),
            {"write": _phase_slo(sampler)},
        )
    dfs = _build(scheme, num_nodes, seed)
    write = dfsio_write(dfs, dataset)
    per_node_gb = dfs.switch.total_bytes / num_nodes / units.GB
    if scheme != "raidp":
        return write.runtime, per_node_gb, None
    return write.runtime, per_node_gb, _recover_worst_pair(dfs)


def merge(
    keyed: Dict[TaskKey, Tuple],
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    from repro.sim.stats import mean

    seeds = tuple(seeds) if seeds is not None else SCALE_SEEDS
    result = ExperimentResult(
        experiment="ext-scale",
        title="large-cluster scale-out: write, recovery, per-node network",
        unit="seconds (write/recovery rows), GB (network rows)",
    )
    for num_nodes in SIZES:
        for scheme in SCHEMES:
            samples = [
                keyed[
                    (scheme, num_nodes, seed, "recovery")
                    if scheme == "raidp"
                    else (scheme, num_nodes, seed)
                ]
                for seed in seeds
            ]
            result.add(f"{scheme} write @{num_nodes}", mean(s[0] for s in samples))
            result.add(
                f"{scheme} net GB/node @{num_nodes}", mean(s[1] for s in samples)
            )
            if scheme == "raidp":
                result.add(
                    f"{scheme} recovery @{num_nodes}",
                    mean(s[2] for s in samples),
                )
                # SLO columns ride only on phase-split (sampled) runs;
                # legacy 3-tuple samples simply have no digest to report.
                digests = [s[3] for s in samples if len(s) > 3]
                for phase in ("write", "recovery"):
                    rows = [d[phase] for d in digests if d.get(phase)]
                    if not rows:
                        continue
                    result.add(
                        f"{scheme} {phase} p99 worst @{num_nodes}",
                        mean(r["p99_worst"] for r in rows),
                    )
                    result.add(
                        f"{scheme} {phase} SLO ok @{num_nodes}",
                        mean(r["slo_ok"] for r in rows),
                    )
    result.notes = (
        "expected shape: write runtime and per-node network ~flat in "
        "cluster size for both schemes (scale-out); RAIDP's per-node "
        "network ~half of HDFS-3's (1 remote copy vs 2); RAIDP recovery "
        "~flat (rebuild cost is per-disk, not per-cluster)"
    )
    return result


def run(
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    keyed = fan_out(__name__, full_scale=full_scale, seeds=seeds, jobs=jobs)
    return merge(keyed, full_scale=full_scale, seeds=seeds)
