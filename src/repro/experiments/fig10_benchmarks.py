"""Fig. 10: RAIDP vs HDFS-3 across write / terasort / wordcount / read.

Top row: runtimes with the percentage delta the paper prints above the
RAIDP bars (-22%, -9%, +0%, +3%).  Bottom row: accumulated network volume
(-50%, -54%, +22%, +7%).  For TeraSort the network metric is the DFS
layer's traffic (replication + remote reads); the MapReduce shuffle is
reported separately, since the paper's counter tracks HDFS traffic where
replication dominates.
"""

from __future__ import annotations

from repro.sim.stats import mean
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SEEDS,
    Scale,
    build_hdfs,
    build_hdfs_warm,
    build_hdfs_written,
    build_raidp,
    build_raidp_warm,
    build_raidp_written,
    pick_scale,
    warm_phase,
)
from repro.experiments.parallel import fan_out
from repro.experiments.runner import ExperimentResult
from repro.workloads.dfsio import dfsio_read, dfsio_write
from repro.workloads.terasort import teragen, terasort
from repro.workloads.wordcount import wordcount, wordcount_input

#: workload -> (paper runtime delta, paper network delta).
PAPER_DELTAS = {
    "write": (-0.22, -0.50),
    "terasort": (-0.09, -0.54),
    "wordcount": (0.00, 0.22),
    "read": (0.03, 0.07),
}

#: Task key: (system, workload, placement seed).
TaskKey = Tuple[str, str, int]


def tasks(full_scale: bool = False, seeds: Sequence[int] = DEFAULT_SEEDS) -> List[TaskKey]:
    return [
        (system, workload, seed)
        for workload in PAPER_DELTAS
        for system in ("hdfs3", "raidp")
        for seed in seeds
    ]


def _warm_generated(
    system: str, warmup_name: str, warmup: Any, scale: Scale, seed: int
) -> Any:
    """A cluster restored at the boundary after ``warmup`` ran on it."""
    builder = (
        (lambda: build_hdfs(3, scale, seed))
        if system == "hdfs3"
        else (lambda: build_raidp(scale, seed))
    )
    return warm_phase(
        f"{system}_{warmup_name}",
        builder,
        warmup,
        dataset=scale.dataset,
        nodes=scale.num_nodes,
        seed=seed,
    )


def run_task(key: TaskKey, full_scale: bool = False) -> Tuple[float, float]:
    """One cell: (runtime, network bytes) for one system+workload+seed.

    Every workload's un-measured ingest phase (DFSIO write, TeraGen,
    WordCount corpus generation) is phase-memoized: the cluster restores
    at the post-ingest boundary instead of re-simulating it per task,
    bitwise-identical to the inline run (fingerprint tests pin this).
    """
    system, workload, seed = key
    scale = pick_scale(full_scale)
    dataset = scale.dataset
    if workload == "write":
        dfs = (
            build_hdfs_warm(3, scale, seed)
            if system == "hdfs3"
            else build_raidp_warm(scale, seed)
        )
        res = dfsio_write(dfs, dataset)
        return res.runtime, float(res.network_bytes)
    if workload == "read":
        dfs = (
            build_hdfs_written(3, scale, seed)
            if system == "hdfs3"
            else build_raidp_written(scale, seed)
        )
        res = dfsio_read(dfs)
        return res.runtime, float(res.network_bytes)
    if workload == "terasort":
        dfs = _warm_generated(
            system, "teragen", lambda d: teragen(d, dataset), scale, seed
        )
        res = terasort(dfs, dataset)
        return res.runtime, res.dfs_network_bytes
    if workload == "wordcount":
        dfs = _warm_generated(
            system, "wc_input", lambda d: wordcount_input(d, dataset), scale, seed
        )
        res = wordcount(dfs, dataset)
        return res.runtime, float(res.network_bytes)
    raise ValueError(f"unknown workload {workload!r}")


def merge(
    keyed: Dict[TaskKey, Tuple[float, float]],
    full_scale: bool = False,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig10",
        title="RAIDP vs HDFS-3: runtime and network deltas",
        unit="relative delta (raidp/hdfs3 - 1)",
    )

    def avg(system: str, workload: str) -> Tuple[float, float]:
        samples = [keyed[(system, workload, seed)] for seed in seeds]
        return mean(s[0] for s in samples), mean(s[1] for s in samples)

    for workload, (paper_rt, paper_net) in PAPER_DELTAS.items():
        hdfs_rt, hdfs_net = avg("hdfs3", workload)
        raidp_rt, raidp_net = avg("raidp", workload)
        result.add(f"{workload}: runtime delta", raidp_rt / hdfs_rt - 1.0, paper_rt)
        result.add(f"{workload}: network delta", raidp_net / hdfs_net - 1.0, paper_net)
    result.notes = (
        "paper's wordcount +22% network carries a 23% stddev (called noise "
        "in the text); the reproduced value is near zero"
    )
    return result


def run(
    full_scale: bool = False,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    keyed = fan_out(__name__, full_scale=full_scale, seeds=seeds, jobs=jobs)
    return merge(keyed, full_scale=full_scale, seeds=seeds)
