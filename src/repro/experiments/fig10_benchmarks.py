"""Fig. 10: RAIDP vs HDFS-3 across write / terasort / wordcount / read.

Top row: runtimes with the percentage delta the paper prints above the
RAIDP bars (-22%, -9%, +0%, +3%).  Bottom row: accumulated network volume
(-50%, -54%, +22%, +7%).  For TeraSort the network metric is the DFS
layer's traffic (replication + remote reads); the MapReduce shuffle is
reported separately, since the paper's counter tracks HDFS traffic where
replication dominates.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.experiments.common import (
    DEFAULT_SEEDS,
    averaged,
    build_hdfs,
    build_raidp,
    pick_scale,
)
from repro.experiments.runner import ExperimentResult
from repro.workloads.dfsio import dfsio_read, dfsio_write
from repro.workloads.terasort import teragen, terasort
from repro.workloads.wordcount import wordcount, wordcount_input


def _measure(dfs_builder: Callable[[int], object], workload: str, dataset: int, seeds):
    """(runtime, network) averaged over seeds for one system+workload."""

    def one(seed: int) -> Tuple[float, float]:
        dfs = dfs_builder(seed)
        if workload == "write":
            res = dfsio_write(dfs, dataset)
            return res.runtime, float(res.network_bytes)
        if workload == "read":
            dfsio_write(dfs, dataset)
            res = dfsio_read(dfs)
            return res.runtime, float(res.network_bytes)
        if workload == "terasort":
            teragen(dfs, dataset)
            res = terasort(dfs, dataset)
            return res.runtime, res.dfs_network_bytes
        if workload == "wordcount":
            wordcount_input(dfs, dataset)
            res = wordcount(dfs, dataset)
            return res.runtime, float(res.network_bytes)
        raise ValueError(f"unknown workload {workload!r}")

    samples = [one(seed) for seed in seeds]
    runtime = sum(s[0] for s in samples) / len(samples)
    network = sum(s[1] for s in samples) / len(samples)
    return runtime, network


#: workload -> (paper runtime delta, paper network delta).
PAPER_DELTAS = {
    "write": (-0.22, -0.50),
    "terasort": (-0.09, -0.54),
    "wordcount": (0.00, 0.22),
    "read": (0.03, 0.07),
}


def run(full_scale: bool = False, seeds=DEFAULT_SEEDS) -> ExperimentResult:
    scale = pick_scale(full_scale)
    result = ExperimentResult(
        experiment="fig10",
        title="RAIDP vs HDFS-3: runtime and network deltas",
        unit="relative delta (raidp/hdfs3 - 1)",
    )
    for workload, (paper_rt, paper_net) in PAPER_DELTAS.items():
        hdfs_rt, hdfs_net = _measure(
            lambda seed: build_hdfs(3, scale, seed), workload, scale.dataset, seeds
        )
        raidp_rt, raidp_net = _measure(
            lambda seed: build_raidp(scale, seed), workload, scale.dataset, seeds
        )
        result.add(f"{workload}: runtime delta", raidp_rt / hdfs_rt - 1.0, paper_rt)
        result.add(f"{workload}: network delta", raidp_net / hdfs_net - 1.0, paper_net)
    result.notes = (
        "paper's wordcount +22% network carries a 23% stddev (called noise "
        "in the text); the reproduced value is near zero"
    )
    return result
