"""Experiment regenerators: one module per table/figure of the paper.

Every experiment module exposes ``run(scale=...) -> ExperimentResult``
and registers itself with the registry in
:mod:`repro.experiments.runner`, which also provides the CLI::

    python -m repro.experiments            # list experiments
    python -m repro.experiments fig8       # regenerate Fig. 8
    python -m repro.experiments all        # everything

Simulated datasets are scaled down by default (the paper's 100 GB runs
take minutes of wall clock in pure Python); pass ``--full`` for
paper-scale inputs.  Reported *ratios* are scale-stable.
"""

from repro.experiments.runner import (
    REGISTRY,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
