"""Fig. 8: TestDFSIO write performance across every RAIDP configuration.

Eleven bars: RAIDP optimized x {only superchunks, +lstor, +journal},
RAIDP unoptimized x the same three, RAIDP re-write (update-oriented)
optimized x the same three, plus HDFS-2 and HDFS-3.  Reported as runtime
relative to HDFS-3 (the paper prints these ratios above its bars).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    DEFAULT_SEEDS,
    averaged,
    build_hdfs,
    build_raidp,
    pick_scale,
)
from repro.experiments.runner import ExperimentResult
from repro.workloads.dfsio import dfsio_write

#: (label, raidp kwargs, paper's relative runtime).
OPTIMIZED_BARS = [
    ("raidp opt: only superchunks", dict(enable_parity=False, enable_journal=False), 0.63),
    ("raidp opt: +lstor", dict(enable_parity=True, enable_journal=False), 0.71),
    ("raidp opt: +journal", dict(), 0.78),
]
UNOPTIMIZED_BARS = [
    (
        "raidp unopt: only superchunks",
        dict(optimized=False, enable_parity=False, enable_journal=False),
        1.67,
    ),
    (
        "raidp unopt: +lstor",
        dict(optimized=False, enable_parity=True, enable_journal=False),
        1.78,
    ),
    ("raidp unopt: +journal", dict(optimized=False), 22.04),
]
REWRITE_BARS = [
    (
        "raidp re-write: only superchunks",
        dict(update_oriented=True, enable_parity=False, enable_journal=False),
        0.64,
    ),
    (
        "raidp re-write: +lstor",
        dict(update_oriented=True, enable_parity=True, enable_journal=False),
        1.14,
    ),
    ("raidp re-write: +journal", dict(update_oriented=True), 1.21),
]


def run(full_scale: bool = False, seeds=DEFAULT_SEEDS) -> ExperimentResult:
    scale = pick_scale(full_scale)
    result = ExperimentResult(
        experiment="fig8",
        title="TestDFSIO write runtime relative to HDFS-3",
        unit="runtime / HDFS-3 runtime",
    )

    def hdfs_runtime(replication: int, dataset: int):
        return averaged(
            lambda seed: dfsio_write(
                build_hdfs(replication, scale, seed), dataset
            ).runtime,
            seeds,
        )

    def raidp_runtime(kwargs: dict, dataset: int):
        return averaged(
            lambda seed: dfsio_write(
                build_raidp(scale, seed, **kwargs), dataset
            ).runtime,
            seeds,
        )

    baseline = hdfs_runtime(3, scale.dataset)
    result.add("hdfs 2 replicas", hdfs_runtime(2, scale.dataset) / baseline, 0.68)
    result.add("hdfs 3 replicas", 1.0, 1.0)
    for label, kwargs, paper in OPTIMIZED_BARS + REWRITE_BARS:
        result.add(label, raidp_runtime(kwargs, scale.dataset) / baseline, paper)
    # The unoptimized family simulates every 64 KB packet; it runs on a
    # reduced dataset against its own HDFS-3 reference (ratios are
    # scale-stable because both sides are throughput-bound).
    small_baseline = hdfs_runtime(3, scale.unoptimized_dataset)
    for label, kwargs, paper in UNOPTIMIZED_BARS:
        result.add(
            label,
            raidp_runtime(kwargs, scale.unoptimized_dataset) / small_baseline,
            paper,
        )
    result.notes = (
        "expected shape: optimized raidp between hdfs-2 and hdfs-3 with "
        "small +lstor/+journal increments; re-write ~1.2x hdfs-3; "
        "unoptimized +journal off the chart"
    )
    return result
