"""Fig. 8: TestDFSIO write performance across every RAIDP configuration.

Eleven bars: RAIDP optimized x {only superchunks, +lstor, +journal},
RAIDP unoptimized x the same three, RAIDP re-write (update-oriented)
optimized x the same three, plus HDFS-2 and HDFS-3.  Reported as runtime
relative to HDFS-3 (the paper prints these ratios above its bars).
"""

from __future__ import annotations

from repro.sim.stats import mean
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SEEDS,
    build_hdfs_warm,
    build_raidp_warm,
    pick_scale,
)
from repro.experiments.parallel import fan_out
from repro.experiments.runner import ExperimentResult
from repro.workloads.dfsio import dfsio_write

#: (label, raidp kwargs, paper's relative runtime).
OPTIMIZED_BARS = [
    ("raidp opt: only superchunks", dict(enable_parity=False, enable_journal=False), 0.63),
    ("raidp opt: +lstor", dict(enable_parity=True, enable_journal=False), 0.71),
    ("raidp opt: +journal", dict(), 0.78),
]
UNOPTIMIZED_BARS = [
    (
        "raidp unopt: only superchunks",
        dict(optimized=False, enable_parity=False, enable_journal=False),
        1.67,
    ),
    (
        "raidp unopt: +lstor",
        dict(optimized=False, enable_parity=True, enable_journal=False),
        1.78,
    ),
    ("raidp unopt: +journal", dict(optimized=False), 22.04),
]
REWRITE_BARS = [
    (
        "raidp re-write: only superchunks",
        dict(update_oriented=True, enable_parity=False, enable_journal=False),
        0.64,
    ),
    (
        "raidp re-write: +lstor",
        dict(update_oriented=True, enable_parity=True, enable_journal=False),
        1.14,
    ),
    ("raidp re-write: +journal", dict(update_oriented=True), 1.21),
]


#: label -> raidp kwargs for every bar (including the unoptimized family).
_BAR_KWARGS = {
    label: kwargs
    for label, kwargs, _paper in OPTIMIZED_BARS + REWRITE_BARS + UNOPTIMIZED_BARS
}

#: Task key: (system, spec, dataset kind, placement seed).  ``system`` is
#: "hdfs" (spec = replication factor) or "raidp" (spec = bar label);
#: ``dataset kind`` selects the full or the reduced (per-packet) dataset.
TaskKey = Tuple[str, Hashable, str, int]


def tasks(full_scale: bool = False, seeds: Sequence[int] = DEFAULT_SEEDS) -> List[TaskKey]:
    """Independent sweep cells, one simulated cluster run each."""
    keys: List[TaskKey] = []
    for seed in seeds:
        keys.append(("hdfs", 3, "full", seed))
        keys.append(("hdfs", 2, "full", seed))
        for label, _kwargs, _paper in OPTIMIZED_BARS + REWRITE_BARS:
            keys.append(("raidp", label, "full", seed))
        # The unoptimized family simulates every 64 KB packet; it runs on
        # a reduced dataset against its own HDFS-3 reference (ratios are
        # scale-stable because both sides are throughput-bound).
        keys.append(("hdfs", 3, "small", seed))
        for label, _kwargs, _paper in UNOPTIMIZED_BARS:
            keys.append(("raidp", label, "small", seed))
    return keys


def run_task(key: TaskKey, full_scale: bool = False) -> float:
    """One cell: build the cluster for ``key``'s seed and time the write.

    Cluster assembly is snapshot-memoized (the write itself is the
    measured phase, so only the empty-cluster build is shared); restored
    and cold-built clusters are bitwise-indistinguishable.
    """
    system, spec, dataset_kind, seed = key
    scale = pick_scale(full_scale)
    dataset = scale.dataset if dataset_kind == "full" else scale.unoptimized_dataset
    if system == "hdfs":
        dfs = build_hdfs_warm(int(spec), scale, seed)
    else:
        dfs = build_raidp_warm(scale, seed, **_BAR_KWARGS[spec])
    return dfsio_write(dfs, dataset).runtime


def merge(
    keyed: Dict[TaskKey, float],
    full_scale: bool = False,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ExperimentResult:
    """Average cells across seeds and emit rows in the paper's bar order."""
    result = ExperimentResult(
        experiment="fig8",
        title="TestDFSIO write runtime relative to HDFS-3",
        unit="runtime / HDFS-3 runtime",
    )

    def avg(system: str, spec: Hashable, dataset_kind: str) -> float:
        return mean(keyed[(system, spec, dataset_kind, seed)] for seed in seeds)

    baseline = avg("hdfs", 3, "full")
    result.add("hdfs 2 replicas", avg("hdfs", 2, "full") / baseline, 0.68)
    result.add("hdfs 3 replicas", 1.0, 1.0)
    for label, _kwargs, paper in OPTIMIZED_BARS + REWRITE_BARS:
        result.add(label, avg("raidp", label, "full") / baseline, paper)
    small_baseline = avg("hdfs", 3, "small")
    for label, _kwargs, paper in UNOPTIMIZED_BARS:
        result.add(label, avg("raidp", label, "small") / small_baseline, paper)
    result.notes = (
        "expected shape: optimized raidp between hdfs-2 and hdfs-3 with "
        "small +lstor/+journal increments; re-write ~1.2x hdfs-3; "
        "unoptimized +journal off the chart"
    )
    return result


def run(
    full_scale: bool = False,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    keyed = fan_out(__name__, full_scale=full_scale, seeds=seeds, jobs=jobs)
    return merge(keyed, full_scale=full_scale, seeds=seeds)
