"""Fig. 7 and §4: datacenter cost breakdown and the RAIDP savings bound."""

from __future__ import annotations

from repro.analysis.cost import (
    HYPERCONVERGED,
    SUPERMICRO,
    DatacenterCostModel,
    fig7_rows,
)
from repro.experiments.runner import ExperimentResult


def run(full_scale: bool = False) -> ExperimentResult:
    del full_scale  # analytic; no scale
    result = ExperimentResult(
        experiment="fig7",
        title="datacenter cost analysis (Fig. 7 + §4)",
        unit="fractions / dollars / ratios",
    )
    paper_breakdown = {
        "servers": 0.57,
        "networking equipment": 0.08,
        "power distribution & cooling": 0.18,
        "power": 0.13,
        "other infrastructure": 0.04,
    }
    for component, fraction in fig7_rows().items():
        result.add(f"TCO share: {component}", fraction, paper_breakdown[component])
    model = DatacenterCostModel()
    result.add(
        "infrastructure overhead fraction",
        model.infrastructure_overhead_fraction(),
        0.43,
    )
    result.add("Lstor BOM ($)", model.lstor.total, 30.0)
    result.add(
        "third disk vs two Lstors (x)",
        DatacenterCostModel(derived_disk_cost=100.0).lstor_pair_vs_third_replica(),
        1.66,
    )
    result.add(
        "hyper-converged derived disk cost ($)",
        HYPERCONVERGED.derived_disk_cost,
        3000.0,
    )
    result.add(
        "supermicro derived-cost multiplier (x)",
        SUPERMICRO.derived_multiplier,
        3.0,
    )
    result.add("RAIDP TCO savings fraction", model.raidp_savings_fraction(), 0.33)
    result.notes = (
        "savings approach the 33% bound; Lstor BOM stays far below the "
        "cost of a third disk"
    )
    return result
