"""Extension: the §8 in-place-update what-if, trace-driven.

Replays a YCSB-A-like trace (Zipfian reads + small updates) twice on a
RAIDP cluster: once with the in-place sub-block update path, once with
the append-only rewrite fallback, and reports the runtime and disk-I/O
savings the paper predicts real database traces would showcase.
"""

from __future__ import annotations

from repro import units
from repro.experiments.common import build_raidp, pick_scale
from repro.experiments.runner import ExperimentResult
from repro.workloads.traces import (
    generate_ycsb_trace,
    replay_trace,
    update_amplification,
)


def run(full_scale: bool = False) -> ExperimentResult:
    scale = pick_scale(full_scale)
    trace = generate_ycsb_trace(
        num_records=16,
        record_size=(64 if full_scale else 16) * units.MiB,
        operations=300 if full_scale else 120,
        update_fraction=0.5,
        update_size=64 * units.KiB,
        seed=11,
    )
    result = ExperimentResult(
        experiment="ext-updates",
        title="in-place updates vs append-only rewrites (paper §8)",
        unit="seconds / bytes / ratios",
    )
    measured = {}
    for mode in ("in_place", "rewrite"):
        dfs = build_raidp(scale, seed=1)
        measured[mode] = replay_trace(dfs, trace, mode=mode)
        result.add(f"runtime [{mode}] (s)", measured[mode].runtime)
        result.add(
            f"disk bytes written [{mode}] (GiB)",
            measured[mode].disk_bytes_written / units.GiB,
        )
    result.add(
        "runtime speedup (rewrite / in-place)",
        measured["rewrite"].runtime / measured["in_place"].runtime,
    )
    result.add(
        "trace update amplification (x)", update_amplification(trace)
    )
    result.notes = (
        "expected shape: in-place updates cut both runtime and disk "
        "write volume by roughly the record/update size ratio"
    )
    return result
