"""Extension: the §8 SSD what-if.

Re-runs the Fig. 8 write family on flash geometry.  The paper predicts
"upgrading to SSDs will likely reduce the amount of performance impact
that random I/O currently has in our workloads": the unoptimized
configurations' ping-pong penalty and the re-write variant's seek costs
should shrink toward the pure transfer-count ratios.
"""

from __future__ import annotations

from typing import Dict

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.experiments.common import Scale, pick_scale
from repro.experiments.runner import ExperimentResult
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec
from repro.sim.disk import DiskGeometry, ssd_geometry
from repro.workloads.dfsio import dfsio_write

CONFIGS = [
    ("raidp opt +journal", dict()),
    ("raidp re-write +journal", dict(update_oriented=True)),
    (
        "raidp unopt only-superchunks",
        dict(optimized=False, enable_parity=False, enable_journal=False),
    ),
]


def _family(geometry: DiskGeometry, scale: Scale, dataset: int) -> Dict[str, float]:
    spec = ClusterSpec(num_nodes=scale.num_nodes, disk_geometry=geometry)
    hdfs = HdfsCluster(
        spec=spec, config=DfsConfig(replication=3), payload_mode="tokens", seed=1
    )
    baseline = dfsio_write(hdfs, dataset).runtime
    ratios = {}
    for label, kwargs in CONFIGS:
        dfs = RaidpCluster(
            spec=spec,
            config=DfsConfig(replication=2),
            raidp=RaidpConfig(**kwargs),
            superchunk_size=scale.superchunk_size,
            payload_mode="tokens",
            seed=1,
        )
        ratios[label] = dfsio_write(dfs, dataset).runtime / baseline
    return ratios


def run(full_scale: bool = False) -> ExperimentResult:
    scale = pick_scale(full_scale)
    dataset = scale.unoptimized_dataset  # unoptimized configs simulate packets
    result = ExperimentResult(
        experiment="ext-ssd",
        title="the Fig. 8 write family on flash (paper §8 what-if)",
        unit="runtime / HDFS-3 runtime (same media)",
    )
    hdd = _family(DiskGeometry(), scale, dataset)
    ssd = _family(ssd_geometry(), scale, dataset)
    for label, _ in CONFIGS:
        result.add(f"{label} [HDD]", hdd[label])
        result.add(f"{label} [SSD]", ssd[label])
    result.notes = (
        "expected shape: the random-I/O penalties vanish on flash -- the "
        "unoptimized bar collapses to the optimized level and the re-write "
        "overhead settles at the per-disk transfer bound (2 transfers per "
        "disk vs 1 on HDFS-3).  The flip side, matching §8's caution: with "
        "seeks gone, the Lstor/journal device transfers dominate, so the "
        "+journal configuration loses its HDD-era advantage unless Lstors "
        "scale up with the media (raise RaidpConfig.lstor_write_rate)"
    )
    return result
