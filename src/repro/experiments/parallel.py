"""Multiprocessing fan-out for the experiment suite.

The paper's evaluation sweeps many independent cluster configurations
(every figure bar and table row is its own simulated cluster with its own
placement seed), which is embarrassingly parallel.  This module fans
those sweep points out to a worker pool:

- An experiment module may opt into *task granularity* by exporting a
  ``tasks(full_scale, seeds)`` function returning an ordered list of
  hashable task keys, a module-level ``run_task(key, full_scale)``
  executing one key, and a ``merge(keyed, full_scale, seeds)`` that
  assembles the per-key values into the final
  :class:`~repro.experiments.runner.ExperimentResult`.  Each key embeds
  its own placement seed, so results are bit-identical at any job count.
- A task module may additionally export ``task_cost(key) -> float``
  (relative cost weight) and ``task_deps(key) -> keys`` (same-module
  prerequisite keys).  Costs drive longest-task-first dispatch so a
  straggler row (the per-packet configurations, the RAID-6 4 MB rebuild)
  starts first instead of serializing the tail of the run.  Dependency
  edges let one task hand its result -- e.g. a post-warmup cluster
  snapshot, or a rebuild phase boundary time -- to a successor task; a
  dependent module's ``run_task`` accepts the extra keyword ``deps``, a
  ``{key: result}`` dict of its prerequisites.
- Modules without the protocol run whole-experiment-at-a-time (still
  inside a worker, so independent experiments overlap).

Rows are merged in the order ``tasks`` emitted them, never in completion
order, so ``--jobs 4`` output is row-for-row identical to ``--jobs 1``.
Dependencies must point backwards in that emission order (a task may
only depend on keys emitted before it), which also makes the sequential
path a trivially valid topological order.

The worker count comes from, in priority order: an explicit ``jobs``
argument, the ``RAIDP_JOBS`` environment variable, else 1 (sequential,
in-process -- the sequential path runs the exact same task/merge code).
``jobs <= 0`` means "all cores".  The pool start method is ``fork``
where available (snapshot stores and imports are inherited); set
``RAIDP_MP_CONTEXT=spawn`` to force the spawn path, which the snapshot
tests use to prove every dependency payload survives pickling.
"""

from __future__ import annotations

import importlib
import inspect
import multiprocessing
import os
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

#: Sentinel key for "run the module's run() as a single task".
WHOLE_EXPERIMENT = "__whole_experiment__"

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "RAIDP_JOBS"

#: Environment variable forcing a multiprocessing start method.
MP_CONTEXT_ENV_VAR = "RAIDP_MP_CONTEXT"


class TaskSpec(NamedTuple):
    """One picklable unit of work for the pool."""

    module: str
    key: Hashable
    full_scale: bool


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``RAIDP_JOBS`` > 1; <=0 = all cores."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from exc
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def supports_tasks(module: Any) -> bool:
    """True if the module opted into task-granularity fan-out."""
    return (
        hasattr(module, "tasks")
        and hasattr(module, "run_task")
        and hasattr(module, "merge")
    )


def task_cost(module: Any, key: Hashable) -> float:
    """Relative cost weight of one task (1.0 when unannotated)."""
    if key == WHOLE_EXPERIMENT:
        return float(getattr(module, "COST_HINT", 1.0))
    cost_fn = getattr(module, "task_cost", None)
    return float(cost_fn(key)) if cost_fn is not None else 1.0


def task_deps(module: Any, key: Hashable) -> Tuple[Hashable, ...]:
    """Same-module prerequisite keys of one task (empty when unannotated)."""
    if key == WHOLE_EXPERIMENT:
        return ()
    deps_fn = getattr(module, "task_deps", None)
    return tuple(deps_fn(key)) if deps_fn is not None else ()


def _accepts_deps(module: Any) -> bool:
    return "deps" in inspect.signature(module.run_task).parameters


def _execute(spec: TaskSpec, deps: Optional[Dict[Hashable, Any]] = None) -> Any:
    """Pool worker body (module-level, hence picklable)."""
    module = importlib.import_module(spec.module)
    if spec.key == WHOLE_EXPERIMENT:
        return module.run(full_scale=spec.full_scale)
    if deps and _accepts_deps(module):
        return module.run_task(spec.key, full_scale=spec.full_scale, deps=deps)
    return module.run_task(spec.key, full_scale=spec.full_scale)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the already-imported interpreter state (cheap start,
    # deterministic hash seed inheritance, warm snapshot store); fall
    # back to spawn elsewhere.  RAIDP_MP_CONTEXT overrides for tests.
    methods = multiprocessing.get_all_start_methods()
    override = os.environ.get(MP_CONTEXT_ENV_VAR, "").strip()
    if override:
        if override not in methods:
            raise ValueError(
                f"{MP_CONTEXT_ENV_VAR}={override!r} not available; "
                f"choose from {methods}"
            )
        return multiprocessing.get_context(override)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class _Plan:
    """Resolved dependency/cost structure over one spec list."""

    def __init__(self, specs: Sequence[TaskSpec]) -> None:
        index_of: Dict[Tuple[str, Hashable], int] = {}
        for index, spec in enumerate(specs):
            index_of[(spec.module, spec.key)] = index
        self.specs = list(specs)
        self.costs: List[float] = []
        self.deps: List[Tuple[int, ...]] = []
        for index, spec in enumerate(specs):
            module = importlib.import_module(spec.module)
            self.costs.append(task_cost(module, spec.key))
            dep_indices = []
            for dep_key in task_deps(module, spec.key):
                dep_index = index_of.get((spec.module, dep_key))
                if dep_index is None:
                    raise ValueError(
                        f"task {spec.key!r} of {spec.module} depends on "
                        f"{dep_key!r}, which is not in the spec list"
                    )
                if dep_index >= index:
                    raise ValueError(
                        f"task {spec.key!r} of {spec.module} depends on "
                        f"{dep_key!r}, which is emitted after it; "
                        "dependencies must point backwards"
                    )
                dep_indices.append(dep_index)
            self.deps.append(tuple(dep_indices))

    def dep_results(
        self, index: int, results: List[Any]
    ) -> Optional[Dict[Hashable, Any]]:
        if not self.deps[index]:
            return None
        return {
            self.specs[dep].key: results[dep] for dep in self.deps[index]
        }


def _run_sequential(plan: _Plan) -> List[Any]:
    results: List[Any] = [None] * len(plan.specs)
    for index, spec in enumerate(plan.specs):
        results[index] = _execute(spec, plan.dep_results(index, results))
    return results


def _run_pooled(plan: _Plan, workers: int) -> List[Any]:
    """Dependency-aware pool dispatch, longest-known-task first.

    Ready tasks are submitted in descending cost order; the pool consumes
    its queue FIFO, so submission order is start order.  Results are
    slotted by input index, never completion order.
    """
    total = len(plan.specs)
    results: List[Any] = [None] * total
    waiting_on: List[int] = [len(deps) for deps in plan.deps]
    dependents: List[List[int]] = [[] for _ in range(total)]
    for index, deps in enumerate(plan.deps):
        for dep in deps:
            dependents[dep].append(index)

    condition = threading.Condition()
    completed: List[Tuple[int, Any]] = []
    failures: List[BaseException] = []

    def _make_callbacks(
        index: int,
    ) -> Tuple[Callable[[Any], None], Callable[[BaseException], None]]:
        def on_done(value: Any) -> None:
            with condition:
                completed.append((index, value))
                condition.notify()

        def on_error(exc: BaseException) -> None:
            with condition:
                failures.append(exc)
                condition.notify()

        return on_done, on_error

    with _pool_context().Pool(processes=workers) as pool:

        def submit(indices: List[int]) -> None:
            # Longest task first; ties broken by input order so dispatch
            # stays deterministic.
            for index in sorted(indices, key=lambda i: (-plan.costs[i], i)):
                on_done, on_error = _make_callbacks(index)
                pool.apply_async(
                    _execute,
                    (plan.specs[index], plan.dep_results(index, results)),
                    callback=on_done,
                    error_callback=on_error,
                )

        submit([index for index in range(total) if waiting_on[index] == 0])
        finished = 0
        while finished < total:
            with condition:
                while not completed and not failures:
                    condition.wait()
                if failures:
                    raise failures[0]
                batch, completed[:] = completed[:], []
            newly_ready: List[int] = []
            for index, value in batch:
                results[index] = value
                finished += 1
                for dependent in dependents[index]:
                    waiting_on[dependent] -= 1
                    if waiting_on[dependent] == 0:
                        newly_ready.append(dependent)
            if newly_ready:
                submit(newly_ready)
    return results


def run_specs(specs: Sequence[TaskSpec], jobs: Optional[int] = None) -> List[Any]:
    """Execute specs, returning values in input order (never completion order)."""
    plan = _Plan(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return _run_sequential(plan)
    return _run_pooled(plan, workers=min(jobs, len(specs)))


def fan_out(
    module_name: str,
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> Dict[Hashable, Any]:
    """Run one protocol module's tasks, returning ``{key: value}``.

    Used by the modules' own ``run()`` so the single-experiment API gets
    the same fan-out as the CLI.
    """
    module = importlib.import_module(module_name)
    keys = list(
        module.tasks(full_scale=full_scale, seeds=seeds)
        if seeds is not None
        else module.tasks(full_scale=full_scale)
    )
    specs = [TaskSpec(module_name, key, full_scale) for key in keys]
    values = run_specs(specs, jobs)
    return dict(zip(keys, values))


def run_many(
    names: Sequence[str],
    full_scale: bool = False,
    jobs: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[Any]:
    """Run several registered experiments through one shared pool.

    Returns the :class:`ExperimentResult` list in ``names`` order.  All
    experiments' tasks are flattened into a single dispatch plan so a
    slow experiment's stragglers overlap the next experiment's work.
    """
    from repro.experiments.runner import REGISTRY

    plan = []  # (name, module_name, keys-or-None, start offset)
    specs: List[TaskSpec] = []
    for name in names:
        if name not in REGISTRY:
            raise KeyError(f"unknown experiment {name!r}; known: {sorted(REGISTRY)}")
        module_name, _title = REGISTRY[name]
        module = importlib.import_module(module_name)
        start = len(specs)
        if supports_tasks(module):
            keys = list(
                module.tasks(full_scale=full_scale, seeds=seeds)
                if seeds is not None
                else module.tasks(full_scale=full_scale)
            )
            specs.extend(TaskSpec(module_name, key, full_scale) for key in keys)
            plan.append((name, module_name, keys, start))
        else:
            specs.append(TaskSpec(module_name, WHOLE_EXPERIMENT, full_scale))
            plan.append((name, module_name, None, start))
    values = run_specs(specs, jobs)
    results = []
    for name, module_name, keys, start in plan:
        if keys is None:
            results.append(values[start])
            continue
        module = importlib.import_module(module_name)
        keyed = dict(zip(keys, values[start : start + len(keys)]))
        if seeds is not None:
            results.append(module.merge(keyed, full_scale=full_scale, seeds=seeds))
        else:
            results.append(module.merge(keyed, full_scale=full_scale))
    return results
