"""Multiprocessing fan-out for the experiment suite.

The paper's evaluation sweeps many independent cluster configurations
(every figure bar and table row is its own simulated cluster with its own
placement seed), which is embarrassingly parallel.  This module fans
those sweep points out to a worker pool:

- An experiment module may opt into *task granularity* by exporting a
  ``tasks(full_scale, seeds)`` function returning an ordered list of
  hashable task keys, a module-level ``run_task(key, full_scale)``
  executing one key, and a ``merge(keyed, full_scale, seeds)`` that
  assembles the per-key values into the final
  :class:`~repro.experiments.runner.ExperimentResult`.  Each key embeds
  its own placement seed, so results are bit-identical at any job count.
- Modules without the protocol run whole-experiment-at-a-time (still
  inside a worker, so independent experiments overlap).

Rows are merged in the order ``tasks`` emitted them, never in completion
order, so ``--jobs 4`` output is row-for-row identical to ``--jobs 1``.

The worker count comes from, in priority order: an explicit ``jobs``
argument, the ``RAIDP_JOBS`` environment variable, else 1 (sequential,
in-process -- the sequential path runs the exact same task/merge code).
``jobs <= 0`` means "all cores".
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
from typing import Any, Dict, Hashable, List, NamedTuple, Optional, Sequence

#: Sentinel key for "run the module's run() as a single task".
WHOLE_EXPERIMENT = "__whole_experiment__"

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "RAIDP_JOBS"


class TaskSpec(NamedTuple):
    """One picklable unit of work for the pool."""

    module: str
    key: Hashable
    full_scale: bool


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``RAIDP_JOBS`` > 1; <=0 = all cores."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from exc
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def supports_tasks(module: Any) -> bool:
    """True if the module opted into task-granularity fan-out."""
    return (
        hasattr(module, "tasks")
        and hasattr(module, "run_task")
        and hasattr(module, "merge")
    )


def _execute(spec: TaskSpec) -> Any:
    """Pool worker body (module-level, hence picklable)."""
    module = importlib.import_module(spec.module)
    if spec.key == WHOLE_EXPERIMENT:
        return module.run(full_scale=spec.full_scale)
    return module.run_task(spec.key, full_scale=spec.full_scale)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the already-imported interpreter state (cheap start,
    # deterministic hash seed inheritance); fall back to spawn elsewhere.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_specs(specs: Sequence[TaskSpec], jobs: Optional[int] = None) -> List[Any]:
    """Execute specs, returning values in input order (never completion order)."""
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [_execute(spec) for spec in specs]
    workers = min(jobs, len(specs))
    with _pool_context().Pool(processes=workers) as pool:
        # chunksize=1: sweep points vary widely in cost (the unoptimized
        # per-packet configurations dominate), so fine-grained dispatch
        # keeps the pool busy.
        return pool.map(_execute, specs, chunksize=1)


def fan_out(
    module_name: str,
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> Dict[Hashable, Any]:
    """Run one protocol module's tasks, returning ``{key: value}``.

    Used by the modules' own ``run()`` so the single-experiment API gets
    the same fan-out as the CLI.
    """
    module = importlib.import_module(module_name)
    keys = list(
        module.tasks(full_scale=full_scale, seeds=seeds)
        if seeds is not None
        else module.tasks(full_scale=full_scale)
    )
    specs = [TaskSpec(module_name, key, full_scale) for key in keys]
    values = run_specs(specs, jobs)
    return dict(zip(keys, values))


def run_many(
    names: Sequence[str],
    full_scale: bool = False,
    jobs: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[Any]:
    """Run several registered experiments through one shared pool.

    Returns the :class:`ExperimentResult` list in ``names`` order.  All
    experiments' tasks are flattened into a single ``pool.map`` so a slow
    experiment's stragglers overlap the next experiment's work.
    """
    from repro.experiments.runner import REGISTRY

    plan = []  # (name, module_name, keys-or-None, start offset)
    specs: List[TaskSpec] = []
    for name in names:
        if name not in REGISTRY:
            raise KeyError(f"unknown experiment {name!r}; known: {sorted(REGISTRY)}")
        module_name, _title = REGISTRY[name]
        module = importlib.import_module(module_name)
        start = len(specs)
        if supports_tasks(module):
            keys = list(
                module.tasks(full_scale=full_scale, seeds=seeds)
                if seeds is not None
                else module.tasks(full_scale=full_scale)
            )
            specs.extend(TaskSpec(module_name, key, full_scale) for key in keys)
            plan.append((name, module_name, keys, start))
        else:
            specs.append(TaskSpec(module_name, WHOLE_EXPERIMENT, full_scale))
            plan.append((name, module_name, None, start))
    values = run_specs(specs, jobs)
    results = []
    for name, module_name, keys, start in plan:
        if keys is None:
            results.append(values[start])
            continue
        module = importlib.import_module(module_name)
        keyed = dict(zip(keys, values[start : start + len(keys)]))
        if seeds is not None:
            results.append(module.merge(keyed, full_scale=full_scale, seeds=seeds))
        else:
            results.append(module.merge(keyed, full_scale=full_scale))
    return results
