"""Table 1: the derived property matrix, rendered alongside the symbols."""

from __future__ import annotations

from repro.analysis.properties import SCHEMES, property_matrix, render_matrix
from repro.experiments.runner import ExperimentResult

#: Symbol -> score for tabulating ratings numerically (+=1, ±=0, -=-1).
_SYMBOL_SCORE = {"+": 1.0, "±": 0.0, "-": -1.0}


def run(full_scale: bool = False) -> ExperimentResult:
    del full_scale  # analytic; no scale
    rows = property_matrix()
    result = ExperimentResult(
        experiment="table1",
        title="property comparison (+1 best / 0 mid / -1 worst)",
        unit="rating score",
    )
    for row in rows:
        for scheme in SCHEMES:
            result.add(
                f"{row.name} [{scheme}]",
                _SYMBOL_SCORE[row.ratings[scheme].value],
            )
    result.notes = "\n" + render_matrix(rows)
    return result
