"""``python -m repro.experiments`` entry point.

Supports the full runner CLI, including ``--jobs N`` / ``RAIDP_JOBS`` to
fan independent sweep points out across worker processes.
"""

import multiprocessing
import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    multiprocessing.freeze_support()
    sys.exit(main())
