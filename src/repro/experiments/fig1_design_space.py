"""Fig. 1: storage efficiency vs repair efficiency for the three schemes."""

from __future__ import annotations

from repro.analysis.design_space import design_space_points, verify_middle_point
from repro.experiments.runner import ExperimentResult


def run(full_scale: bool = False, n: int = 10, superchunks_per_disk: int = 15) -> ExperimentResult:
    del full_scale  # analytic; no scale
    points = design_space_points(n=n, superchunks_per_disk=superchunks_per_disk)
    result = ExperimentResult(
        experiment="fig1",
        title="design space: storage efficiency vs repair efficiency",
        unit="efficiency (1.0 = ideal)",
    )
    for point in points:
        result.add(f"{point.scheme}: storage", point.storage_efficiency)
        result.add(f"{point.scheme}: repair (1 failure)", point.repair_efficiency_single)
        result.add(f"{point.scheme}: repair (2 failures)", point.repair_efficiency_double)
    result.notes = (
        "middle-point property holds"
        if verify_middle_point(points)
        else "WARNING: middle-point property violated"
    )
    return result
