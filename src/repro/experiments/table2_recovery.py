"""Table 2: 6 GB superchunk recovery runtimes after a double disk failure.

Six system configurations x two NICs: RAIDP with byte-range vs
superchunk-wide locking at 4 MB vs 64 MB chunk sizes, plus a distributed
RAID-6 rebuild baseline that must read and decode every surviving disk to
reconstruct the two lost ones.

Task decomposition: RAIDP rows fan out per placement repetition (one
task per seed, warm-started from a shared cluster snapshot), and each
RAID-6 row splits into its gather/decode phase and its writeback phase
-- two simulators chained on the exact boundary time, bitwise-identical
to the monolithic schedule (proved by the differential test against
``simulate_raid6_rebuild``).  Cost annotations let the parallel runner
start the dominant RAID-6 4 MB gather first instead of letting it
serialize the tail of a ``--jobs N`` run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.recovery import (
    RecoveryManager,
    RecoveryOptions,
    simulate_raid6_read_phase,
    simulate_raid6_rebuild,
    simulate_raid6_writeback_phase,
)
from repro.experiments.common import build_raidp_warm, pick_scale
from repro.experiments.parallel import fan_out
from repro.experiments.runner import ExperimentResult
from repro.sim.stats import mean

#: (lock mode, chunk size, paper seconds @10G, paper seconds @1G).
RAIDP_ROWS = [
    ("byte_range", 4 * units.MiB, 125.0, 827.0),
    ("byte_range", 64 * units.MiB, 160.0, 848.0),
    ("superchunk", 64 * units.MiB, 187.0, 850.0),
    ("superchunk", 4 * units.MiB, 211.0, 852.0),
]
#: (chunk size, paper seconds @10G, paper seconds @1G).
RAID6_ROWS = [
    (4 * units.MiB, 1823.0, 12300.0),
    (64 * units.MiB, 2227.0, 13146.0),
]

#: Seeds averaged per RAIDP row.  Recovery runtimes are placement-
#: insensitive at this scale, so one repetition reproduces the table;
#: passing more seeds turns each into its own task.
DEFAULT_SEEDS = (1,)

#: Task key: ("raidp", lock mode, chunk size, nic index, seed) or
#: ("raid6", chunk size, nic index, phase) with phase "read"/"write".
#: Legacy whole-row keys -- ("raidp", lock, chunk, nic) and
#: ("raid6", chunk, nic) -- are still accepted by :func:`run_task`.
TaskKey = Tuple


def tasks(
    full_scale: bool = False, seeds: Optional[Sequence[int]] = None
) -> List[TaskKey]:
    seeds = tuple(seeds) if seeds is not None else DEFAULT_SEEDS
    keys: List[TaskKey] = []
    for lock_mode, chunk, _paper_10g, _paper_1g in RAIDP_ROWS:
        for nic_index in (0, 1):
            for seed in seeds:
                keys.append(("raidp", lock_mode, chunk, nic_index, seed))
    for chunk, _paper_10g, _paper_1g in RAID6_ROWS:
        for nic_index in (0, 1):
            keys.append(("raid6", chunk, nic_index, "read"))
            keys.append(("raid6", chunk, nic_index, "write"))
    return keys


def task_deps(key: TaskKey) -> Tuple[TaskKey, ...]:
    """The writeback phase consumes the read phase's boundary time."""
    if key[0] == "raid6" and len(key) == 4 and key[3] == "write":
        return (("raid6", key[1], key[2], "read"),)
    return ()


def task_cost(key: TaskKey) -> float:
    """Relative wall-clock weight (measured at smoke scale, in seconds).

    The RAID-6 4 MB rows dominate the table (~8-9s each vs ~1-2s per
    RAIDP row); their gather phase is ~80% of that.  Longest-first
    dispatch off these weights is what lets ``--jobs N`` beat the
    one-straggler-serializes-everything schedule.
    """
    if key[0] == "raid6":
        chunk = key[1]
        whole = 9.0 if chunk == 4 * units.MiB else 0.5
        if len(key) == 4:
            return whole * (0.8 if key[3] == "read" else 0.2)
        return whole
    return 1.7


def _nic_rate(nic_index: int) -> float:
    return units.gbps(10) if nic_index == 0 else units.gbps(1)


def run_task(
    key: TaskKey, full_scale: bool = False, deps: Optional[Dict[TaskKey, float]] = None
) -> float:
    """One task: a RAIDP repetition, a RAID-6 phase, or a legacy row."""
    scale = pick_scale(full_scale)
    if key[0] == "raidp":
        _kind, lock_mode, chunk, nic_index = key[:4]
        seed = key[4] if len(key) == 5 else DEFAULT_SEEDS[0]
        dfs = build_raidp_warm(scale, seed=seed)
        manager = RecoveryManager(dfs)
        options = RecoveryOptions(
            lock_mode=lock_mode, chunk_size=chunk, nic_index=nic_index
        )
        report = manager.recover_double_failure(
            "n0", "n1", options=options, remirror_rest=False, install=False
        )
        return report.duration
    # RAID-6 rebuilds both failed disks from all survivors.  Each of the
    # paper's disks carries 16 superchunks x 6 GB = 96 GB of data.
    _kind, chunk, nic_index = key[:3]
    data_per_disk = 16 * scale.superchunk_size
    survivors = scale.num_nodes - 2
    if len(key) == 4:
        if key[3] == "read":
            return simulate_raid6_read_phase(
                data_per_disk=data_per_disk,
                surviving_disks=survivors,
                chunk_size=chunk,
                nic_rate=_nic_rate(nic_index),
            )
        boundary = (deps or {})[("raid6", chunk, nic_index, "read")]
        return simulate_raid6_writeback_phase(
            boundary,
            data_per_disk=data_per_disk,
            surviving_disks=survivors,
            chunk_size=chunk,
            nic_rate=_nic_rate(nic_index),
        )
    return simulate_raid6_rebuild(
        data_per_disk=data_per_disk,
        surviving_disks=survivors,
        chunk_size=chunk,
        nic_rate=_nic_rate(nic_index),
    )


def merge(
    keyed: Dict[TaskKey, float],
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    seeds = tuple(seeds) if seeds is not None else DEFAULT_SEEDS
    result = ExperimentResult(
        experiment="table2",
        title="6 GB superchunk recovery runtimes (16-node cluster)",
        unit="seconds",
    )
    for lock_mode, chunk, paper_10g, paper_1g in RAIDP_ROWS:
        for nic_index, paper in ((0, paper_10g), (1, paper_1g)):
            nic = "10Gbps" if nic_index == 0 else "1Gbps"
            result.add(
                f"raidp {lock_mode} {chunk // units.MiB}MB @{nic}",
                mean(
                    keyed[("raidp", lock_mode, chunk, nic_index, seed)]
                    for seed in seeds
                ),
                paper,
            )
    for chunk, paper_10g, paper_1g in RAID6_ROWS:
        for nic_index, paper in ((0, paper_10g), (1, paper_1g)):
            nic = "10Gbps" if nic_index == 0 else "1Gbps"
            result.add(
                f"raid6 {chunk // units.MiB}MB @{nic}",
                keyed[("raid6", chunk, nic_index, "write")],
                paper,
            )
    result.notes = (
        "expected shape: byte-range/4MB fastest, superchunk/4MB slowest, "
        "the 1Gbps network flattens all RAIDP rows, RAID-6 an order of "
        "magnitude slower"
    )
    return result


def run(
    full_scale: bool = False,
    jobs: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    keyed = fan_out(__name__, full_scale=full_scale, seeds=seeds, jobs=jobs)
    return merge(keyed, full_scale=full_scale, seeds=seeds)
