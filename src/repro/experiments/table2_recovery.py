"""Table 2: 6 GB superchunk recovery runtimes after a double disk failure.

Six system configurations x two NICs: RAIDP with byte-range vs
superchunk-wide locking at 4 MB vs 64 MB chunk sizes, plus a distributed
RAID-6 rebuild baseline that must read and decode every surviving disk to
reconstruct the two lost ones.
"""

from __future__ import annotations

from repro import units
from repro.core.recovery import (
    RecoveryManager,
    RecoveryOptions,
    simulate_raid6_rebuild,
)
from repro.experiments.common import build_raidp, pick_scale
from repro.experiments.runner import ExperimentResult

#: (lock mode, chunk size, paper seconds @10G, paper seconds @1G).
RAIDP_ROWS = [
    ("byte_range", 4 * units.MiB, 125.0, 827.0),
    ("byte_range", 64 * units.MiB, 160.0, 848.0),
    ("superchunk", 64 * units.MiB, 187.0, 850.0),
    ("superchunk", 4 * units.MiB, 211.0, 852.0),
]
#: (chunk size, paper seconds @10G, paper seconds @1G).
RAID6_ROWS = [
    (4 * units.MiB, 1823.0, 12300.0),
    (64 * units.MiB, 2227.0, 13146.0),
]


def run(full_scale: bool = False) -> ExperimentResult:
    scale = pick_scale(full_scale)
    result = ExperimentResult(
        experiment="table2",
        title="6 GB superchunk recovery runtimes (16-node cluster)",
        unit="seconds",
    )
    for lock_mode, chunk, paper_10g, paper_1g in RAIDP_ROWS:
        for nic_index, paper in ((0, paper_10g), (1, paper_1g)):
            dfs = build_raidp(scale, seed=1)
            manager = RecoveryManager(dfs)
            options = RecoveryOptions(
                lock_mode=lock_mode, chunk_size=chunk, nic_index=nic_index
            )
            report = manager.recover_double_failure(
                "n0", "n1", options=options, remirror_rest=False, install=False
            )
            nic = "10Gbps" if nic_index == 0 else "1Gbps"
            result.add(
                f"raidp {lock_mode} {chunk // units.MiB}MB @{nic}",
                report.duration,
                paper,
            )
    # RAID-6 rebuilds both failed disks from all survivors.  Each of the
    # paper's disks carries 16 superchunks x 6 GB = 96 GB of data.
    data_per_disk = 16 * scale.superchunk_size
    for chunk, paper_10g, paper_1g in RAID6_ROWS:
        for nic_rate, paper in ((units.gbps(10), paper_10g), (units.gbps(1), paper_1g)):
            duration = simulate_raid6_rebuild(
                data_per_disk=data_per_disk,
                surviving_disks=scale.num_nodes - 2,
                chunk_size=chunk,
                nic_rate=nic_rate,
            )
            nic = "10Gbps" if nic_rate == units.gbps(10) else "1Gbps"
            result.add(f"raid6 {chunk // units.MiB}MB @{nic}", duration, paper)
    result.notes = (
        "expected shape: byte-range/4MB fastest, superchunk/4MB slowest, "
        "the 1Gbps network flattens all RAIDP rows, RAID-6 an order of "
        "magnitude slower"
    )
    return result
