"""Table 2: 6 GB superchunk recovery runtimes after a double disk failure.

Six system configurations x two NICs: RAIDP with byte-range vs
superchunk-wide locking at 4 MB vs 64 MB chunk sizes, plus a distributed
RAID-6 rebuild baseline that must read and decode every surviving disk to
reconstruct the two lost ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.recovery import (
    RecoveryManager,
    RecoveryOptions,
    simulate_raid6_rebuild,
)
from repro.experiments.common import build_raidp, pick_scale
from repro.experiments.parallel import fan_out
from repro.experiments.runner import ExperimentResult

#: (lock mode, chunk size, paper seconds @10G, paper seconds @1G).
RAIDP_ROWS = [
    ("byte_range", 4 * units.MiB, 125.0, 827.0),
    ("byte_range", 64 * units.MiB, 160.0, 848.0),
    ("superchunk", 64 * units.MiB, 187.0, 850.0),
    ("superchunk", 4 * units.MiB, 211.0, 852.0),
]
#: (chunk size, paper seconds @10G, paper seconds @1G).
RAID6_ROWS = [
    (4 * units.MiB, 1823.0, 12300.0),
    (64 * units.MiB, 2227.0, 13146.0),
]


#: Task key: ("raidp", lock mode, chunk size, nic index) or
#: ("raid6", chunk size, nic index).  Every row is one independent
#: double-failure simulation (seed fixed at 1 -- recovery runtimes are
#: placement-insensitive at this scale).
TaskKey = Tuple


def tasks(full_scale: bool = False, seeds: Optional[Sequence[int]] = None) -> List[TaskKey]:
    keys: List[TaskKey] = []
    for lock_mode, chunk, _paper_10g, _paper_1g in RAIDP_ROWS:
        for nic_index in (0, 1):
            keys.append(("raidp", lock_mode, chunk, nic_index))
    for chunk, _paper_10g, _paper_1g in RAID6_ROWS:
        for nic_index in (0, 1):
            keys.append(("raid6", chunk, nic_index))
    return keys


def run_task(key: TaskKey, full_scale: bool = False) -> float:
    """One table row: simulate the double-failure recovery, return seconds."""
    scale = pick_scale(full_scale)
    if key[0] == "raidp":
        _kind, lock_mode, chunk, nic_index = key
        dfs = build_raidp(scale, seed=1)
        manager = RecoveryManager(dfs)
        options = RecoveryOptions(
            lock_mode=lock_mode, chunk_size=chunk, nic_index=nic_index
        )
        report = manager.recover_double_failure(
            "n0", "n1", options=options, remirror_rest=False, install=False
        )
        return report.duration
    # RAID-6 rebuilds both failed disks from all survivors.  Each of the
    # paper's disks carries 16 superchunks x 6 GB = 96 GB of data.
    _kind, chunk, nic_index = key
    data_per_disk = 16 * scale.superchunk_size
    return simulate_raid6_rebuild(
        data_per_disk=data_per_disk,
        surviving_disks=scale.num_nodes - 2,
        chunk_size=chunk,
        nic_rate=units.gbps(10) if nic_index == 0 else units.gbps(1),
    )


def merge(
    keyed: Dict[TaskKey, float],
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table2",
        title="6 GB superchunk recovery runtimes (16-node cluster)",
        unit="seconds",
    )
    for lock_mode, chunk, paper_10g, paper_1g in RAIDP_ROWS:
        for nic_index, paper in ((0, paper_10g), (1, paper_1g)):
            nic = "10Gbps" if nic_index == 0 else "1Gbps"
            result.add(
                f"raidp {lock_mode} {chunk // units.MiB}MB @{nic}",
                keyed[("raidp", lock_mode, chunk, nic_index)],
                paper,
            )
    for chunk, paper_10g, paper_1g in RAID6_ROWS:
        for nic_index, paper in ((0, paper_10g), (1, paper_1g)):
            nic = "10Gbps" if nic_index == 0 else "1Gbps"
            result.add(
                f"raid6 {chunk // units.MiB}MB @{nic}",
                keyed[("raid6", chunk, nic_index)],
                paper,
            )
    result.notes = (
        "expected shape: byte-range/4MB fastest, superchunk/4MB slowest, "
        "the 1Gbps network flattens all RAIDP rows, RAID-6 an order of "
        "magnitude slower"
    )
    return result


def run(full_scale: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    keyed = fan_out(__name__, full_scale=full_scale, jobs=jobs)
    return merge(keyed, full_scale=full_scale)
