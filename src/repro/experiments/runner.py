"""Experiment registry, result type, and CLI entry point."""

from __future__ import annotations

import argparse
import importlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class ExperimentResult:
    """Output of one regenerated table/figure.

    ``rows`` are (label, measured, paper_value) triples; ``paper_value``
    is None for rows the paper gives no number for.  ``unit`` describes
    the measured quantity.
    """

    experiment: str
    title: str
    rows: List[Tuple[str, float, Optional[float]]] = field(default_factory=list)
    unit: str = ""
    notes: str = ""

    def add(self, label: str, measured: float, paper: Optional[float] = None) -> None:
        self.rows.append((label, measured, paper))

    def render(self) -> str:
        width = max((len(label) for label, _m, _p in self.rows), default=20)
        lines = [f"== {self.experiment}: {self.title} ==".rstrip()]
        header = f"{'row':<{width}}  {'measured':>12}  {'paper':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for label, measured, paper in self.rows:
            paper_text = f"{paper:>10.2f}" if paper is not None else f"{'-':>10}"
            lines.append(f"{label:<{width}}  {measured:>12.2f}  {paper_text}")
        if self.unit:
            lines.append(f"(unit: {self.unit})")
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


#: experiment id -> (module, title).
REGISTRY: Dict[str, Tuple[str, str]] = {
    "fig1": ("repro.experiments.fig1_design_space", "design space points"),
    "table1": ("repro.experiments.table1_properties", "property matrix"),
    "fig7": ("repro.experiments.fig7_cost", "datacenter cost analysis"),
    "fig8": ("repro.experiments.fig8_write", "TestDFSIO write performance"),
    "fig9": ("repro.experiments.fig9_read", "TestDFSIO read performance"),
    "fig10": ("repro.experiments.fig10_benchmarks", "RAIDP vs HDFS-3 benchmarks"),
    "table2": ("repro.experiments.table2_recovery", "superchunk recovery runtimes"),
    # Beyond the paper: its §2 claims and §8 future work, quantified.
    "ext-durability": (
        "repro.experiments.ext_durability",
        "durability vs availability (extension)",
    ),
    "ext-updates": (
        "repro.experiments.ext_updates",
        "in-place updates vs rewrites (extension)",
    ),
    "ext-ssd": ("repro.experiments.ext_ssd", "the write family on flash (extension)"),
    "ext-scale": (
        "repro.experiments.ext_scale",
        "large-cluster scale-out sweep (extension)",
    ),
}


def list_experiments() -> List[str]:
    return sorted(REGISTRY)


def get_experiment(name: str) -> Callable:
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; known: {list_experiments()}")
    module_name, _title = REGISTRY[name]
    module = importlib.import_module(module_name)
    return module.run


def run_experiment(name: str, **kwargs: Any) -> "ExperimentResult":
    return get_experiment(name)(**kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.experiments.parallel import JOBS_ENV_VAR, run_many

    parser = argparse.ArgumentParser(
        prog="raidp-experiments",
        description="Regenerate the RAIDP paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig1, table1, fig7, fig8, fig9, fig10, table2, "
        "ext-durability, ext-updates, ext-ssd, ext-scale) or 'all'; empty "
        "lists the registry",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale (100 GB datasets; slow)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="fan independent sweep points out to N worker processes "
        f"(default: ${JOBS_ENV_VAR} or 1; 0 = all cores); results are "
        "row-for-row identical at any job count",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a simulation trace; '.jsonl' writes JSON-lines, "
        "anything else writes Chrome trace format (load in Perfetto or "
        "chrome://tracing).  Forces --jobs 1 so every simulation runs "
        "in-process.",
    )
    parser.add_argument(
        "--trace-categories",
        metavar="CATS",
        default=None,
        help="comma-separated event categories to record (e.g. "
        "'recovery,fault,net'); default records everything, which for a "
        "prefilled run can be millions of disk-level events",
    )
    args = parser.parse_args(argv)
    if not args.experiments:
        print("available experiments:")
        for name in list_experiments():
            print(f"  {name:<8} {REGISTRY[name][1]}")
        return 0
    names = list_experiments() if args.experiments == ["all"] else args.experiments
    for name in names:
        if name not in REGISTRY:
            raise KeyError(f"unknown experiment {name!r}; known: {list_experiments()}")
    if args.trace:
        from repro.obs.export import write_trace
        from repro.obs.tracer import Tracer, capture

        categories = (
            [c.strip() for c in args.trace_categories.split(",") if c.strip()]
            if args.trace_categories
            else None
        )
        # Worker processes would trace into their own interpreters;
        # jobs=1 keeps every simulation (and its tracer) in-process.
        with capture(Tracer(categories=categories)) as tracer:
            for result in run_many(names, full_scale=args.full, jobs=1):
                print(result.render())
                print()
        write_trace(tracer, args.trace)
        print(
            f"trace: {len(tracer)} events from "
            f"{len(tracer.run_labels)} simulation(s) -> {args.trace}"
        )
    else:
        for result in run_many(names, full_scale=args.full, jobs=args.jobs):
            print(result.render())
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
