"""Shared builders and scales for the simulation-backed experiments.

The paper's evaluation: a 16-node cluster, 100 GB working sets, 6 GB
superchunks, 64 MB blocks, five repetitions.  The default scale divides
the working set by ~12 (8 GiB) and averages three placement seeds, which
reproduces every ratio in the figures at interactive wall-clock cost; the
unoptimized (packet-granularity) configurations run on a further-reduced
set because they simulate every 64 KB packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim import snapshot
from repro.sim.cluster import ClusterSpec
from repro.sim.stats import mean

#: Seeds averaged per configuration (the paper averages five runs).
DEFAULT_SEEDS = (1, 2, 3)


@dataclass(frozen=True)
class Scale:
    """Dataset sizes for one experiment run."""

    dataset: int = 8 * units.GiB
    unoptimized_dataset: int = 2 * units.GiB
    superchunk_size: int = 6 * units.GiB
    num_nodes: int = 16

    @classmethod
    def paper(cls) -> "Scale":
        return cls(dataset=100 * units.GB, unoptimized_dataset=10 * units.GB)


def pick_scale(full_scale: bool) -> Scale:
    return Scale.paper() if full_scale else Scale()


def build_hdfs(replication: int, scale: Scale, seed: int) -> HdfsCluster:
    return HdfsCluster(
        spec=ClusterSpec(num_nodes=scale.num_nodes),
        config=DfsConfig(replication=replication),
        payload_mode="tokens",
        seed=seed,
    )


def build_raidp(scale: Scale, seed: int, **raidp_kwargs: Any) -> RaidpCluster:
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=scale.num_nodes),
        config=DfsConfig(replication=2),
        raidp=RaidpConfig(**raidp_kwargs),
        superchunk_size=scale.superchunk_size,
        payload_mode="tokens",
        seed=seed,
    )


def build_raidp_warm(scale: Scale, seed: int, **raidp_kwargs: Any) -> RaidpCluster:
    """Snapshot-backed :func:`build_raidp`.

    Returns a fresh restored copy per call; the underlying build runs at
    most once per (scale, seed, config) per process (see
    :mod:`repro.sim.snapshot` for the staleness and identity model).
    """
    key = snapshot.snapshot_key(
        "build_raidp",
        dataset=scale.dataset,
        superchunk=scale.superchunk_size,
        nodes=scale.num_nodes,
        seed=seed,
        **raidp_kwargs,
    )
    return snapshot.GLOBAL_STORE.get_or_build(
        key, lambda: build_raidp(scale, seed, **raidp_kwargs)
    )


def build_hdfs_warm(replication: int, scale: Scale, seed: int) -> HdfsCluster:
    """Snapshot-backed :func:`build_hdfs` (same contract as above)."""
    key = snapshot.snapshot_key(
        "build_hdfs",
        replication=replication,
        dataset=scale.dataset,
        nodes=scale.num_nodes,
        seed=seed,
    )
    return snapshot.GLOBAL_STORE.get_or_build(
        key, lambda: build_hdfs(replication, scale, seed)
    )


def warm_phase(
    tag: str,
    builder: Callable[[], Any],
    warmup: Callable[[Any], Any],
    **key_params: Any,
) -> Any:
    """Phase-snapshot builder: memoize ``builder`` *plus* its warmup.

    The cold path assembles the cluster, runs ``warmup`` on it (a
    failure-free ingest such as ``dfsio_write``, ``teragen``, or
    ``wordcount_input``), and snapshots the quiescent result; warm
    callers restore straight to the phase boundary.  The stored key
    embeds the boundary's simulated time (see
    :func:`repro.sim.snapshot.phase_key`), so replays that share a
    warmup -- fig9's read of fig8's dataset, fig10's four workloads --
    simulate it once per (topology, seed) per process.
    """
    base_key = snapshot.snapshot_key(tag, **key_params)

    def build() -> Any:
        dfs = builder()
        warmup(dfs)
        return dfs

    return snapshot.GLOBAL_STORE.get_or_build_phase(base_key, build)


def build_hdfs_written(
    replication: int, scale: Scale, seed: int, dataset: Optional[int] = None
) -> HdfsCluster:
    """An HDFS cluster with the DFSIO dataset already ingested."""
    from repro.workloads.dfsio import dfsio_write

    nbytes = scale.dataset if dataset is None else dataset
    return warm_phase(
        "hdfs_written",
        lambda: build_hdfs(replication, scale, seed),
        lambda dfs: dfsio_write(dfs, nbytes),
        replication=replication,
        dataset=nbytes,
        nodes=scale.num_nodes,
        seed=seed,
    )


def build_raidp_written(
    scale: Scale, seed: int, dataset: Optional[int] = None, **raidp_kwargs: Any
) -> RaidpCluster:
    """A RAIDP cluster with the DFSIO dataset already ingested."""
    from repro.workloads.dfsio import dfsio_write

    nbytes = scale.dataset if dataset is None else dataset
    return warm_phase(
        "raidp_written",
        lambda: build_raidp(scale, seed, **raidp_kwargs),
        lambda dfs: dfsio_write(dfs, nbytes),
        dataset=nbytes,
        superchunk=scale.superchunk_size,
        nodes=scale.num_nodes,
        seed=seed,
        **raidp_kwargs,
    )


def averaged(
    run_one: Callable[[int], float], seeds: Iterable[int] = DEFAULT_SEEDS
) -> float:
    """Average a measurement across placement seeds.

    Uses the exact-summation mean from :mod:`repro.sim.stats` (RDP005):
    ``statistics.mean`` over a generator is both slower and, for future
    parallel seed fan-out, order-sensitive in the last ulp.
    """
    return mean(run_one(seed) for seed in seeds)
