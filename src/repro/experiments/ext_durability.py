"""Extension: quantifying §2's durability-vs-availability claim.

The paper argues RAIDP matches triplication's *durability* (a rack
failure destroys nothing) while conceding *availability* (a datum spans
only two failure domains).  This experiment reports both the analytic
MTTDL ladder and a Monte-Carlo over a racked fleet.
"""

from __future__ import annotations

from repro.analysis.durability import (
    FailureSimulator,
    FleetSpec,
    durability_summary,
)
from repro.experiments.runner import ExperimentResult


def run(full_scale: bool = False) -> ExperimentResult:
    trials = 4000 if full_scale else 1200
    result = ExperimentResult(
        experiment="ext-durability",
        title="durability vs availability (paper §2, quantified)",
        unit="MTTDL years / event probabilities",
    )
    for scheme, years in durability_summary().items():
        result.add(f"analytic MTTDL [{scheme}] (years)", years)
    spec = FleetSpec(
        num_racks=8,
        disks_per_rack=4,
        disk_afr=0.5,  # stress rates so events appear within the trials
        rack_outage_rate=12.0,
        rebuild_hours=24.0 * 14,
        years=3.0,
    )
    outcomes = FailureSimulator(spec, seed=7).run(trials=trials)
    for name, outcome in outcomes.items():
        result.add(f"P(data loss) [{name}]", outcome.loss_probability)
        result.add(
            f"P(unavailable) [{name}]", outcome.unavailability_probability
        )
    result.notes = (
        "expected shape: RAIDP's loss probability sits in triplication's "
        "class (far below 2-replica), while its unavailability is the "
        "worst of the four -- the paper's stated trade"
    )
    return result
