"""Extension: quantifying §2's durability-vs-availability claim.

The paper argues RAIDP matches triplication's *durability* (a rack
failure destroys nothing) while conceding *availability* (a datum spans
only two failure domains).  This experiment reports three rungs of that
argument:

1. The analytic MTTDL ladder (closed-form Markov approximations).
2. The legacy small-fleet Monte-Carlo (:class:`FailureSimulator`) with
   stressed rates, which exhibits the *ordering* of the schemes --
   including the co-located-Lstor availability caveat its judge now
   honours.
3. The long-horizon fleet engine (:mod:`repro.analysis.montecarlo`):
   nines of durability and repair-bandwidth-per-day for all five
   contenders over shared Weibull/LSE/burst event streams, at fleet
   scale and realistic rates.

Monte-Carlo trials fan out as chunked tasks: the engine's per-trial
seed spawn keys make a chunked run merge bit-compatibly with a
monolithic one, so ``--jobs N`` changes wall-clock, not results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.durability import (
    FailureSimulator,
    FleetSpec,
    durability_summary,
)
from repro.analysis.montecarlo import DurabilityEngine, Fleet, SchemeReport
from repro.experiments.parallel import fan_out
from repro.experiments.runner import ExperimentResult

#: Legacy small-fleet simulator seed (kept from the original experiment).
LEGACY_SEED = 7

#: Fleet-engine seed; trials then spawn per-trial child streams.
ENGINE_SEED = 0xD15C

#: Monte-Carlo chunks the trial budget is split across.
MC_CHUNKS = 4

#: Simulated horizon (years) for the fleet engine.
ENGINE_YEARS = 10.0

TaskKey = Tuple


def _engine_config(full_scale: bool) -> Tuple[Fleet, int]:
    """(fleet, total trials): 10k disks at full scale, 1k at smoke."""
    if full_scale:
        return Fleet(num_racks=40, disks_per_rack=250, groups=1_000_000), 200
    return Fleet(num_racks=20, disks_per_rack=50, groups=100_000), 48


def _build_engine(full_scale: bool) -> Tuple[DurabilityEngine, int]:
    fleet, trials = _engine_config(full_scale)
    return DurabilityEngine(fleet=fleet, seed=ENGINE_SEED), trials


def tasks(
    full_scale: bool = False, seeds: Optional[Sequence[int]] = None
) -> List[TaskKey]:
    del seeds  # placement variance is swept by trials, not seeds
    keys: List[TaskKey] = [("analytic",), ("legacy", LEGACY_SEED)]
    keys.extend(("mc", chunk) for chunk in range(MC_CHUNKS))
    return keys


def task_cost(key: TaskKey) -> float:
    """The MC chunks dominate; the analytic rung is free."""
    if key[0] == "mc":
        return 4.0
    if key[0] == "legacy":
        return 2.0
    return 0.1


def run_task(key: TaskKey, full_scale: bool = False) -> object:
    if key[0] == "analytic":
        return durability_summary()
    if key[0] == "legacy":
        trials = 4000 if full_scale else 1200
        spec = FleetSpec(
            num_racks=8,
            disks_per_rack=4,
            disk_afr=0.5,  # stress rates so events appear within the trials
            rack_outage_rate=12.0,
            rebuild_hours=24.0 * 14,
            years=3.0,
        )
        return FailureSimulator(spec, seed=key[1]).run(trials=trials)
    _tag, chunk = key
    engine, total_trials = _build_engine(full_scale)
    per_chunk = total_trials // MC_CHUNKS
    first = chunk * per_chunk
    if chunk == MC_CHUNKS - 1:
        per_chunk = total_trials - first  # remainder rides the last chunk
    return engine.run(per_chunk, years=ENGINE_YEARS, first_trial=first)


def merge(
    keyed: Dict[TaskKey, object],
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    del seeds
    result = ExperimentResult(
        experiment="ext-durability",
        title="durability vs availability (paper §2, quantified)",
        unit="MTTDL years / event probabilities / nines / GB per day",
    )
    analytic = keyed[("analytic",)]
    for scheme, years in analytic.items():  # type: ignore[union-attr]
        result.add(f"analytic MTTDL [{scheme}] (years)", years)
    outcomes = keyed[("legacy", LEGACY_SEED)]
    for name, outcome in outcomes.items():  # type: ignore[union-attr]
        result.add(f"P(data loss) [{name}]", outcome.loss_probability)
        result.add(
            f"P(unavailable) [{name}]", outcome.unavailability_probability
        )
    merged: Dict[str, SchemeReport] = {}
    for chunk in range(MC_CHUNKS):
        for name, report in keyed[("mc", chunk)].items():  # type: ignore[union-attr]
            merged[name] = merged[name].merge(report) if name in merged else report
    fleet, trials = _engine_config(full_scale)
    for name, report in merged.items():
        result.add(f"MC nines [{name}]", report.durability_nines)
        result.add(f"MC repair GB/day [{name}]", report.repair_gb_per_day)
        result.add(
            f"MC peak groups at-risk [{name}]", report.peak_groups_at_risk
        )
    result.notes = (
        "expected shape: RAIDP's loss probability sits in triplication's "
        "class (far below 2-replica), while its unavailability is the "
        "worst of the four -- the paper's stated trade.  The fleet-engine "
        f"rows simulate {fleet.num_disks} disks x {ENGINE_YEARS:.0f} years "
        f"x {trials} trials with Weibull lifetimes, latent sector errors, "
        "and correlated rack bursts; bursts kill co-located Lstors with "
        "their disks, which is where RAIDP pays for the §2 caveat in "
        "durability as well as availability."
    )
    return result


def run(
    full_scale: bool = False,
    seeds: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    keyed = fan_out(__name__, full_scale=full_scale, seeds=seeds, jobs=jobs)
    return merge(keyed, full_scale=full_scale, seeds=seeds)
