"""Fig. 9: TestDFSIO read performance.

Reads back the data written by the Fig. 8 configurations.  The paper's
headline: every configuration reads at essentially the same speed
(relative runtimes 0.96-1.03), because reads must follow whatever layout
writing produced and the replica choice is uniform.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SEEDS,
    averaged,
    build_hdfs,
    build_raidp,
    pick_scale,
)
from repro.experiments.runner import ExperimentResult
from repro.workloads.dfsio import dfsio_read, dfsio_write

#: (label, raidp kwargs or replication, paper's relative read runtime).
BARS = [
    ("raidp opt: only superchunks", dict(enable_parity=False, enable_journal=False), 0.99),
    ("raidp opt: +lstor", dict(enable_parity=True, enable_journal=False), 1.00),
    ("raidp opt: +journal", dict(), 1.03),
    ("raidp re-write: +journal", dict(update_oriented=True), 0.98),
]


def run(full_scale: bool = False, seeds=DEFAULT_SEEDS) -> ExperimentResult:
    scale = pick_scale(full_scale)
    result = ExperimentResult(
        experiment="fig9",
        title="TestDFSIO read runtime relative to HDFS-3",
        unit="runtime / HDFS-3 runtime",
    )

    def hdfs_read(replication: int):
        def one(seed: int):
            dfs = build_hdfs(replication, scale, seed)
            dfsio_write(dfs, scale.dataset)
            return dfsio_read(dfs).runtime

        return averaged(one, seeds)

    def raidp_read(kwargs: dict):
        def one(seed: int):
            dfs = build_raidp(scale, seed, **kwargs)
            dfsio_write(dfs, scale.dataset)
            return dfsio_read(dfs).runtime

        return averaged(one, seeds)

    baseline = hdfs_read(3)
    result.add("hdfs 2 replicas", hdfs_read(2) / baseline, 1.03)
    result.add("hdfs 3 replicas", 1.0, 1.00)
    for label, kwargs, paper in BARS:
        result.add(label, raidp_read(kwargs) / baseline, paper)
    result.notes = "expected shape: all configurations within a few percent of 1.0"
    return result
