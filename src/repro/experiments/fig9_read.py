"""Fig. 9: TestDFSIO read performance.

Reads back the data written by the Fig. 8 configurations.  The paper's
headline: every configuration reads at essentially the same speed
(relative runtimes 0.96-1.03), because reads must follow whatever layout
writing produced and the replica choice is uniform.
"""

from __future__ import annotations

from repro.sim.stats import mean
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SEEDS,
    build_hdfs_written,
    build_raidp_written,
    pick_scale,
)
from repro.experiments.parallel import fan_out
from repro.experiments.runner import ExperimentResult
from repro.workloads.dfsio import dfsio_read

#: (label, raidp kwargs or replication, paper's relative read runtime).
BARS = [
    ("raidp opt: only superchunks", dict(enable_parity=False, enable_journal=False), 0.99),
    ("raidp opt: +lstor", dict(enable_parity=True, enable_journal=False), 1.00),
    ("raidp opt: +journal", dict(), 1.03),
    ("raidp re-write: +journal", dict(update_oriented=True), 0.98),
]


_BAR_KWARGS = {label: kwargs for label, kwargs, _paper in BARS}

#: Task key: (system, spec, placement seed).
TaskKey = Tuple[str, Hashable, int]


def tasks(full_scale: bool = False, seeds: Sequence[int] = DEFAULT_SEEDS) -> List[TaskKey]:
    keys: List[TaskKey] = []
    for seed in seeds:
        keys.append(("hdfs", 3, seed))
        keys.append(("hdfs", 2, seed))
        for label, _kwargs, _paper in BARS:
            keys.append(("raidp", label, seed))
    return keys


def run_task(key: TaskKey, full_scale: bool = False) -> float:
    """One cell: time reading back the written dataset.

    The write warmup is phase-memoized: the cluster is restored at the
    post-``dfsio_write`` boundary (simulated once per configuration and
    seed), which is bitwise-identical to writing inline -- pinned by
    ``tests/test_snapshot_warmstart.py``.
    """
    system, spec, seed = key
    scale = pick_scale(full_scale)
    if system == "hdfs":
        dfs = build_hdfs_written(int(spec), scale, seed)
    else:
        dfs = build_raidp_written(scale, seed, **_BAR_KWARGS[spec])
    return dfsio_read(dfs).runtime


def merge(
    keyed: Dict[TaskKey, float],
    full_scale: bool = False,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig9",
        title="TestDFSIO read runtime relative to HDFS-3",
        unit="runtime / HDFS-3 runtime",
    )

    def avg(system: str, spec: Hashable) -> float:
        return mean(keyed[(system, spec, seed)] for seed in seeds)

    baseline = avg("hdfs", 3)
    result.add("hdfs 2 replicas", avg("hdfs", 2) / baseline, 1.03)
    result.add("hdfs 3 replicas", 1.0, 1.00)
    for label, _kwargs, paper in BARS:
        result.add(label, avg("raidp", label) / baseline, paper)
    result.notes = "expected shape: all configurations within a few percent of 1.0"
    return result


def run(
    full_scale: bool = False,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    keyed = fan_out(__name__, full_scale=full_scale, seeds=seeds, jobs=jobs)
    return merge(keyed, full_scale=full_scale, seeds=seeds)
