"""Payload representations shared by the data and parity planes.

See the package docstring for the byte/token duality.  All payloads are
immutable value objects: every operation returns a new payload, which
keeps journal records trivially correct (a record's "old data" snapshot
cannot be mutated from underneath it).
"""

from __future__ import annotations

import zlib
from typing import FrozenSet, Optional, Tuple, Union

import numpy as np
from repro.sim.snapshot import InlineState


class Payload(InlineState):
    """Common interface of both payload planes."""

    def xor(self, other: "Payload") -> "Payload":
        raise NotImplementedError

    def is_zero(self) -> bool:
        raise NotImplementedError

    def checksum(self) -> int:
        """A content checksum stable across processes and runs.

        Both planes derive it from CRC32 (never ``hash()``, whose
        str/bytes hashing is randomized per process), so checksums may
        be persisted, fingerprinted, and compared across worker
        processes.
        """
        raise NotImplementedError

    def __xor__(self, other: "Payload") -> "Payload":
        return self.xor(other)

    # Subclasses implement __eq__/__hash__.


def _is_safely_immutable(arr: np.ndarray) -> bool:
    """True if ``arr`` can never be written through any live reference.

    Walking the base chain catches the trap of a read-only *view* whose
    underlying buffer is still writable through the base array.
    """
    if arr.flags.writeable:
        return False
    base = arr.base
    while base is not None:
        if isinstance(base, np.ndarray):
            if base.flags.writeable:
                return False
            base = base.base
        else:
            # Non-ndarray buffer owner (e.g. the ``bytes`` object behind
            # ``np.frombuffer``): immutable iff the owner is immutable.
            return isinstance(base, bytes)
    return True


class BytesPayload(Payload):
    """A real byte buffer (numpy uint8), fixed length.

    Construction is copy-free whenever the source is provably immutable
    (``bytes`` via ``np.frombuffer``, or a read-only array whose whole
    base chain is read-only); only writable sources are copied.  Fresh
    buffers produced by payload arithmetic are adopted without a copy via
    :meth:`adopt`.
    """

    __slots__ = ("data", "_crc")

    def __init__(self, data: Union[bytes, np.ndarray]) -> None:
        if isinstance(data, bytes):
            # frombuffer on bytes is a zero-copy read-only view backed by
            # the immutable bytes object itself.
            arr = np.frombuffer(data, dtype=np.uint8)
        elif isinstance(data, (bytearray, memoryview)):
            arr = np.frombuffer(data, dtype=np.uint8).copy()
        else:
            arr = np.asarray(data, dtype=np.uint8)
            if not _is_safely_immutable(arr):
                # Copy so the payload owns its buffer (immutability).
                arr = arr.copy()
        arr.setflags(write=False)
        self.data = arr
        self._crc: Optional[int] = None

    @classmethod
    def adopt(cls, arr: np.ndarray) -> "BytesPayload":
        """Wrap a freshly allocated array without copying.

        The caller transfers ownership: it must not retain any writable
        reference to ``arr`` (or its base) after adoption.  This is the
        allocation-free path used by the XOR/codec kernels.
        """
        payload = cls.__new__(cls)
        arr = np.ascontiguousarray(arr, dtype=np.uint8)
        arr.setflags(write=False)
        payload.data = arr
        payload._crc = None
        return payload

    @classmethod
    def zeros(cls, length: int) -> "BytesPayload":
        return cls.adopt(np.zeros(length, dtype=np.uint8))

    def xor(self, other: Payload) -> "BytesPayload":
        if not isinstance(other, BytesPayload):
            raise TypeError("cannot XOR bytes with symbolic payload")
        if len(self.data) != len(other.data):
            raise ValueError(
                f"payload length mismatch: {len(self.data)} vs {len(other.data)}"
            )
        return BytesPayload.adopt(np.bitwise_xor(self.data, other.data))

    def xor_into(self, accum: np.ndarray) -> None:
        """``accum ^= self`` in place, no allocation.

        ``accum`` must be a writable uint8 array of matching length owned
        by the caller; it is never retained.  This keeps long XOR chains
        (parity absorption, superchunk reconstruction) copy-free while the
        payload itself stays immutable.
        """
        if len(accum) != len(self.data):
            raise ValueError(
                f"payload length mismatch: {len(accum)} vs {len(self.data)}"
            )
        np.bitwise_xor(accum, self.data, out=accum)

    def mutable_copy(self) -> np.ndarray:
        """A writable copy of the content, for use as an XOR accumulator."""
        return self.data.copy()

    def is_zero(self) -> bool:
        return not self.data.any()

    def slice(self, start: int, end: int) -> "BytesPayload":
        # The slice is a read-only view over this payload's immutable
        # buffer, so the constructor takes it copy-free.
        return BytesPayload(self.data[start:end])

    def splice(self, offset: int, patch: "BytesPayload") -> "BytesPayload":
        """Return a copy with ``patch`` written at ``offset``."""
        end = offset + len(patch.data)
        if offset < 0 or end > len(self.data):
            raise ValueError("splice outside payload")
        merged = self.data.copy()
        merged[offset:end] = patch.data
        return BytesPayload.adopt(merged)

    def to_bytes(self) -> bytes:
        return self.data.tobytes()

    def checksum(self) -> int:
        """CRC32 of the content (models HDFS's per-block checksum file).

        Cached: payloads are immutable, so the CRC can never change.
        """
        if self._crc is None:
            self._crc = zlib.crc32(self.data)
        return self._crc

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BytesPayload) and np.array_equal(self.data, other.data)

    def __hash__(self) -> int:
        return hash(self.data.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BytesPayload len={len(self.data)} crc={self.checksum():08x}>"


class TokenPayload(Payload):
    """A symbolic payload: a set of opaque tokens under symmetric diff.

    A fresh write of version ``v`` of some datum is the singleton
    ``{(name, v)}``.  XOR-ing an old version against a new one yields
    ``{(name, v_old), (name, v_new)}`` -- exactly the delta an Lstor
    absorbs -- and parity consistency reduces to set equality.
    """

    __slots__ = ("tokens",)

    def __init__(self, tokens: FrozenSet[Tuple] = frozenset()) -> None:
        self.tokens = frozenset(tokens)

    @classmethod
    def zeros(cls, _length: int = 0) -> "TokenPayload":
        return cls(frozenset())

    @classmethod
    def of(cls, name: str, version: int) -> "TokenPayload":
        return cls(frozenset({(name, version)}))

    def xor(self, other: Payload) -> "TokenPayload":
        if not isinstance(other, TokenPayload):
            raise TypeError("cannot XOR symbolic payload with bytes")
        return TokenPayload(self.tokens ^ other.tokens)

    def is_zero(self) -> bool:
        return not self.tokens

    def checksum(self) -> int:
        """CRC32 over the canonically ordered token set (process-stable)."""
        return zlib.crc32(
            "\x1f".join(f"{name}\x1e{version}" for name, version in sorted(self.tokens)).encode(
                "utf-8"
            )
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TokenPayload) and self.tokens == other.tokens

    def __hash__(self) -> int:
        return hash(self.tokens)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TokenPayload {sorted(self.tokens)!r}>"


class XorAccumulator(InlineState):
    """Folds payloads under XOR without a fresh allocation per step.

    In the bytes plane the accumulator owns one writable buffer and XORs
    into it in place; :meth:`result` adopts the buffer into an immutable
    payload (so the total cost of an N-term chain is one allocation, not
    N).  In the token plane it falls back to immutable folding -- token
    sets are tiny, so there is nothing to win there.
    """

    __slots__ = ("_buf", "_payload")

    def __init__(self, initial: Payload) -> None:
        if isinstance(initial, BytesPayload):
            self._buf: Optional[np.ndarray] = initial.mutable_copy()
            self._payload: Optional[Payload] = None
        else:
            self._buf = None
            self._payload = initial

    def add(self, payload: Payload) -> None:
        if self._buf is not None:
            if not isinstance(payload, BytesPayload):
                raise TypeError("cannot XOR bytes with symbolic payload")
            payload.xor_into(self._buf)
        else:
            assert self._payload is not None
            self._payload = self._payload.xor(payload)

    def result(self) -> Payload:
        """The folded payload; the accumulator must not be added to after."""
        if self._buf is not None:
            self._payload = BytesPayload.adopt(self._buf)
            self._buf = None  # buffer ownership transferred to the payload
        assert self._payload is not None
        return self._payload


def _stable_seed(seed: int, name: str, version: int) -> int:
    """A 64-bit RNG seed independent of ``PYTHONHASHSEED``.

    The previous implementation seeded the generator from
    ``hash((seed, name, version))`` -- but ``hash()`` of a ``str`` is
    randomized per interpreter process, so the *content* of minted
    payloads (and every CRC-derived fingerprint over them) differed from
    run to run and between parallel-runner workers.  Two domain-
    separated CRC32s give a stable 64-bit seed instead.
    """
    key = f"{seed}\x1f{version}\x1f{name}".encode("utf-8")
    return (zlib.crc32(b"hi\x1f" + key) << 32) | zlib.crc32(b"lo\x1f" + key)


class ContentFactory(InlineState):
    """Mints deterministic payloads for named data in either plane.

    ``mode`` is ``"bytes"`` (real data, sizes must be modest) or
    ``"tokens"`` (symbolic, any size).  The factory also *re-mints* a
    payload for verification: recovered content must equal
    ``factory.make(name, version)``.
    """

    def __init__(self, mode: str = "bytes", seed: int = 0x5EED) -> None:
        if mode not in ("bytes", "tokens"):
            raise ValueError(f"unknown payload mode {mode!r}")
        self.mode = mode
        self.seed = seed

    @property
    def symbolic(self) -> bool:
        return self.mode == "tokens"

    def make(self, name: str, version: int, length: int) -> Payload:
        if self.mode == "tokens":
            return TokenPayload.of(name, version)
        rng = np.random.default_rng(_stable_seed(self.seed, name, version))
        return BytesPayload.adopt(rng.integers(0, 256, size=length, dtype=np.uint8))

    def zero(self, length: int) -> Payload:
        if self.mode == "tokens":
            return TokenPayload.zeros()
        return BytesPayload.zeros(length)
