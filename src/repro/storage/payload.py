"""Payload representations shared by the data and parity planes.

See the package docstring for the byte/token duality.  All payloads are
immutable value objects: every operation returns a new payload, which
keeps journal records trivially correct (a record's "old data" snapshot
cannot be mutated from underneath it).
"""

from __future__ import annotations

import zlib
from typing import FrozenSet, Optional, Tuple, Union

import numpy as np


class Payload:
    """Common interface of both payload planes."""

    def xor(self, other: "Payload") -> "Payload":
        raise NotImplementedError

    def is_zero(self) -> bool:
        raise NotImplementedError

    def __xor__(self, other: "Payload") -> "Payload":
        return self.xor(other)

    # Subclasses implement __eq__/__hash__.


class BytesPayload(Payload):
    """A real byte buffer (numpy uint8), fixed length."""

    __slots__ = ("data",)

    def __init__(self, data: Union[bytes, np.ndarray]) -> None:
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        # Copy so the payload owns its buffer (immutability).
        self.data = arr.copy()
        self.data.setflags(write=False)

    @classmethod
    def zeros(cls, length: int) -> "BytesPayload":
        return cls(np.zeros(length, dtype=np.uint8))

    def xor(self, other: Payload) -> "BytesPayload":
        if not isinstance(other, BytesPayload):
            raise TypeError("cannot XOR bytes with symbolic payload")
        if len(self.data) != len(other.data):
            raise ValueError(
                f"payload length mismatch: {len(self.data)} vs {len(other.data)}"
            )
        return BytesPayload(np.bitwise_xor(self.data, other.data))

    def is_zero(self) -> bool:
        return not self.data.any()

    def slice(self, start: int, end: int) -> "BytesPayload":
        return BytesPayload(self.data[start:end])

    def splice(self, offset: int, patch: "BytesPayload") -> "BytesPayload":
        """Return a copy with ``patch`` written at ``offset``."""
        end = offset + len(patch.data)
        if offset < 0 or end > len(self.data):
            raise ValueError("splice outside payload")
        merged = self.data.copy()
        merged[offset:end] = patch.data
        return BytesPayload(merged)

    def to_bytes(self) -> bytes:
        return self.data.tobytes()

    def checksum(self) -> int:
        """CRC32 of the content (models HDFS's per-block checksum file)."""
        return zlib.crc32(self.data.tobytes())

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BytesPayload) and np.array_equal(self.data, other.data)

    def __hash__(self) -> int:
        return hash(self.data.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BytesPayload len={len(self.data)} crc={self.checksum():08x}>"


class TokenPayload(Payload):
    """A symbolic payload: a set of opaque tokens under symmetric diff.

    A fresh write of version ``v`` of some datum is the singleton
    ``{(name, v)}``.  XOR-ing an old version against a new one yields
    ``{(name, v_old), (name, v_new)}`` -- exactly the delta an Lstor
    absorbs -- and parity consistency reduces to set equality.
    """

    __slots__ = ("tokens",)

    def __init__(self, tokens: FrozenSet[Tuple] = frozenset()) -> None:
        self.tokens = frozenset(tokens)

    @classmethod
    def zeros(cls, _length: int = 0) -> "TokenPayload":
        return cls(frozenset())

    @classmethod
    def of(cls, name: str, version: int) -> "TokenPayload":
        return cls(frozenset({(name, version)}))

    def xor(self, other: Payload) -> "TokenPayload":
        if not isinstance(other, TokenPayload):
            raise TypeError("cannot XOR symbolic payload with bytes")
        return TokenPayload(self.tokens ^ other.tokens)

    def is_zero(self) -> bool:
        return not self.tokens

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TokenPayload) and self.tokens == other.tokens

    def __hash__(self) -> int:
        return hash(self.tokens)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TokenPayload {sorted(self.tokens)!r}>"


class ContentFactory:
    """Mints deterministic payloads for named data in either plane.

    ``mode`` is ``"bytes"`` (real data, sizes must be modest) or
    ``"tokens"`` (symbolic, any size).  The factory also *re-mints* a
    payload for verification: recovered content must equal
    ``factory.make(name, version)``.
    """

    def __init__(self, mode: str = "bytes", seed: int = 0x5EED) -> None:
        if mode not in ("bytes", "tokens"):
            raise ValueError(f"unknown payload mode {mode!r}")
        self.mode = mode
        self.seed = seed

    @property
    def symbolic(self) -> bool:
        return self.mode == "tokens"

    def make(self, name: str, version: int, length: int) -> Payload:
        if self.mode == "tokens":
            return TokenPayload.of(name, version)
        rng = np.random.default_rng(
            (hash((self.seed, name, version)) & 0x7FFFFFFFFFFFFFFF)
        )
        return BytesPayload(rng.integers(0, 256, size=length, dtype=np.uint8))

    def zero(self, length: int) -> Payload:
        if self.mode == "tokens":
            return TokenPayload.zeros()
        return BytesPayload.zeros(length)
