"""Payload substrate: real-bytes and symbolic data planes.

Functional tests need bit-exact parity and recovery (real XOR over real
bytes); large timing experiments simulate hundreds of gigabytes that
cannot live in memory.  Both run through the same code paths by swapping
the payload representation:

- :class:`BytesPayload` carries a real numpy byte buffer; XOR is
  ``np.bitwise_xor``.
- :class:`TokenPayload` carries a frozenset of opaque write tokens; XOR is
  symmetric difference.  Because (sets, symmetric-difference) and
  (bytes, XOR) are both abelian groups where every element is its own
  inverse, every parity identity that holds for tokens holds for bytes --
  the symbolic plane is a faithful homomorphic image of the real one.

:class:`ContentFactory` mints deterministic payloads for a given
(name, version) in either mode, so experiments can verify recovered data
without retaining originals.
"""

from repro.storage.payload import (
    BytesPayload,
    ContentFactory,
    Payload,
    TokenPayload,
)

__all__ = ["BytesPayload", "ContentFactory", "Payload", "TokenPayload"]
