"""Cluster topology builder.

Reproduces the paper's testbed shape: N nodes in a star topology, each
with a fast NIC (10 Gbps) and a slow NIC (1 Gbps), one or more disks, and
a shared non-blocking switch.  Experiments choose which NIC the traffic
rides on (Table 2 compares both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import units
from repro.sim.disk import Disk, DiskGeometry
from repro.sim.engine import Simulator
from repro.sim.network import Nic, Switch
from repro.sim.node import CpuModel, Node
from repro.sim.snapshot import InlineState


@dataclass(frozen=True)
class ClusterSpec(InlineState):
    """Shape of the simulated cluster.

    The defaults mirror the paper's evaluation hardware: 16 nodes, one
    7200 RPM 2 TB disk each, 16 GiB RAM, a 10 Gbps primary NIC and a
    1 Gbps secondary NIC.
    """

    num_nodes: int = 16
    disks_per_node: int = 1
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    disk_scheduler: str = "fifo"  # or "elevator"
    nic_rate: float = units.gbps(10)
    secondary_nic_rate: Optional[float] = units.gbps(1)
    cpu: CpuModel = field(default_factory=CpuModel)
    ram: int = 16 * units.GiB


class Cluster(InlineState):
    """A fully-built topology: nodes, disks, NICs, one switch."""

    def __init__(self, sim: Simulator, spec: Optional[ClusterSpec] = None) -> None:
        self.sim = sim
        self.spec = spec or ClusterSpec()
        self.switch = Switch(sim)
        self.nodes: List[Node] = []
        self._by_name: Dict[str, Node] = {}
        for index in range(self.spec.num_nodes):
            self._build_node(index)

    def _build_node(self, index: int) -> Node:
        spec = self.spec
        node = Node(self.sim, name=f"n{index}", cpu=spec.cpu, ram=spec.ram)
        for _disk_index in range(spec.disks_per_node):
            node.add_disk(spec.disk_geometry, scheduler=spec.disk_scheduler)
        primary = Nic(f"{node.name}.nic0", spec.nic_rate)
        node.add_nic(self.switch.attach(primary))
        if spec.secondary_nic_rate is not None:
            secondary = Nic(f"{node.name}.nic1", spec.secondary_nic_rate)
            node.add_nic(self.switch.attach(secondary))
        self.nodes.append(node)
        self._by_name[node.name] = node
        return node

    # ------------------------------------------------------------------
    # Lookup helpers.
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self._by_name[name]

    def all_disks(self) -> List[Disk]:
        return [disk for node in self.nodes for disk in node.disks]

    # ------------------------------------------------------------------
    # Aggregate accounting.
    # ------------------------------------------------------------------
    def total_network_bytes(self) -> int:
        """Bytes that crossed the switch since construction."""
        return self.switch.total_bytes

    def total_disk_stats(self) -> Dict[str, int]:
        """Cluster-wide disk counters."""
        totals = {
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "seeks": 0,
        }
        for disk in self.all_disks():
            totals["reads"] += disk.stats.reads
            totals["writes"] += disk.stats.writes
            totals["bytes_read"] += disk.stats.bytes_read
            totals["bytes_written"] += disk.stats.bytes_written
            totals["seeks"] += disk.stats.seeks
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster nodes={len(self.nodes)}>"
