"""Max-min fair-share network model: NICs, flows, and a star switch.

The paper's cluster connects 16 nodes to one switch via both a 10 Gbps and
a 1 Gbps NIC.  We model the switch backplane as non-blocking, so a flow is
constrained only by its endpoints: the sender's transmit port and the
receiver's receive port (NICs are full duplex).  When several flows share
a port, bandwidth is divided by progressive filling (max-min fairness),
which is the steady state that per-flow fair queueing / TCP converge to.

Whenever a flow starts or finishes, every active flow's progress is
banked at its old rate and the allocation is recomputed.  Completion is
driven by a versioned timer: a stale timer firing after a reallocation is
simply ignored.  This keeps the event count proportional to the number of
flow arrivals/departures rather than to bytes transferred.

Per-node accumulated traffic is tracked so experiments can report the
paper's "accumulated network GB" bars (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import units
from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


@dataclass
class FlowStats:
    """Network accounting for one endpoint (node)."""

    bytes_sent: int = 0
    bytes_received: int = 0
    flows_started: int = 0
    flows_finished: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_sent + self.bytes_received


class Nic:
    """One full-duplex port: independent transmit and receive capacity."""

    __slots__ = ("name", "tx_rate", "rx_rate", "stats")

    def __init__(self, name: str, rate: float, rx_rate: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("NIC rate must be positive")
        self.name = name
        self.tx_rate = rate
        self.rx_rate = rx_rate if rx_rate is not None else rate
        self.stats = FlowStats()


class _Flow:
    """An in-flight transfer between two NICs."""

    __slots__ = (
        "src",
        "dst",
        "remaining",
        "total",
        "rate",
        "done",
        "started_at",
        "last_update",
    )

    def __init__(self, src: Nic, dst: Nic, nbytes: int, done: Event, now: float) -> None:
        self.src = src
        self.dst = dst
        self.remaining = float(nbytes)
        self.total = nbytes
        self.rate = 0.0
        self.done = done
        self.started_at = now
        self.last_update = now


class Switch:
    """A non-blocking switch connecting NICs in a star topology."""

    #: Fixed one-way latency added to every transfer (switch + stack).
    BASE_LATENCY = 50 * units.USEC

    def __init__(self, sim: Simulator, name: str = "switch") -> None:
        self.sim = sim
        self.name = name
        self._nics: Dict[str, Nic] = {}
        self._flows: List[_Flow] = []
        self._timer_version = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # Topology.
    # ------------------------------------------------------------------
    def attach(self, nic: Nic) -> Nic:
        if nic.name in self._nics:
            raise SimulationError(f"NIC {nic.name!r} attached twice")
        self._nics[nic.name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        return self._nics[name]

    # ------------------------------------------------------------------
    # Transfers.
    # ------------------------------------------------------------------
    def transfer(self, src: Nic, dst: Nic, nbytes: int) -> Event:
        """Start a flow of ``nbytes`` from ``src`` to ``dst``.

        Returns an event that fires (with the flow duration) when the last
        byte arrives.  Zero-byte transfers complete after the base latency.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        done = self.sim.event()
        src.stats.flows_started += 1
        if nbytes == 0:
            start = self.sim.now
            latency_done = self.sim.timeout(self.BASE_LATENCY)
            latency_done.add_callback(
                lambda _ev: done.succeed(self.sim.now - start)
            )
            return done
        flow = _Flow(src, dst, nbytes, done, self.sim.now)
        self._bank_progress()
        self._flows.append(flow)
        self._reallocate()
        return done

    def set_nic_rates(
        self,
        nic: Nic,
        tx_rate: Optional[float] = None,
        rx_rate: Optional[float] = None,
    ) -> None:
        """Change a NIC's port speeds mid-flight (link degradation).

        In-flight flows keep the bytes they already moved (progress is
        banked at the old rates) and the fair-share allocation is
        recomputed at the new capacities -- the same bank/reallocate
        cycle a flow arrival or departure triggers.
        """
        if (tx_rate is not None and tx_rate <= 0) or (
            rx_rate is not None and rx_rate <= 0
        ):
            raise ValueError("NIC rate must be positive")
        self._bank_progress()
        if tx_rate is not None:
            nic.tx_rate = tx_rate
        if rx_rate is not None:
            nic.rx_rate = rx_rate
        self._reallocate()

    # ------------------------------------------------------------------
    # Max-min fair allocation (progressive filling).
    # ------------------------------------------------------------------
    def _reallocate(self) -> None:
        """Recompute every flow's rate and re-arm the completion timer."""
        if not self._flows:
            return
        # Port -> (capacity, unfrozen flow count).  Ports are keyed by
        # (nic, direction) so tx and rx are independent.
        remaining_cap: Dict[tuple, float] = {}
        load: Dict[tuple, int] = {}
        for flow in self._flows:
            tx_key = (flow.src, "tx")
            rx_key = (flow.dst, "rx")
            remaining_cap.setdefault(tx_key, flow.src.tx_rate)
            remaining_cap.setdefault(rx_key, flow.dst.rx_rate)
            load[tx_key] = load.get(tx_key, 0) + 1
            load[rx_key] = load.get(rx_key, 0) + 1

        unfrozen = list(self._flows)
        while unfrozen:
            # The bottleneck port is the one offering the smallest fair
            # share to its unfrozen flows.
            bottleneck_key = min(
                (key for key in load if load[key] > 0),
                key=lambda key: remaining_cap[key] / load[key],
            )
            # Clamp: repeated subtraction can drive a port's remaining
            # capacity a few ULPs below zero, and a negative share would
            # make flows run backwards (a livelock in disguise).
            share = max(remaining_cap[bottleneck_key], 0.0) / load[bottleneck_key]
            frozen_now = [
                flow
                for flow in unfrozen
                if (flow.src, "tx") == bottleneck_key
                or (flow.dst, "rx") == bottleneck_key
            ]
            for flow in frozen_now:
                flow.rate = share
                for key in ((flow.src, "tx"), (flow.dst, "rx")):
                    remaining_cap[key] -= share
                    load[key] -= 1
                unfrozen.remove(flow)
        self._arm_timer()

    def _bank_progress(self) -> None:
        """Credit every flow with bytes moved at its current rate."""
        now = self.sim.now
        finished: List[_Flow] = []
        for flow in self._flows:
            elapsed = now - flow.last_update
            if elapsed > 0 and flow.rate > 0:
                moved = min(flow.remaining, flow.rate * elapsed)
                flow.remaining -= moved
            flow.last_update = now
            if flow.remaining <= max(1e-6, flow.total * 1e-12):
                finished.append(flow)
        for flow in finished:
            self._finish(flow)

    def _finish(self, flow: _Flow) -> None:
        self._flows.remove(flow)
        flow.src.stats.bytes_sent += flow.total
        flow.dst.stats.bytes_received += flow.total
        flow.src.stats.flows_finished += 1
        self.total_bytes += flow.total
        duration = self.sim.now - flow.started_at + self.BASE_LATENCY
        # Deliver completion after the base latency so even an
        # infinitely-fast link has nonzero transfer time.
        delivery = self.sim.timeout(self.BASE_LATENCY)
        delivery.add_callback(lambda _ev: flow.done.succeed(duration))

    def _arm_timer(self) -> None:
        """Schedule a wakeup at the earliest flow completion."""
        self._timer_version += 1
        if not self._flows:
            return
        horizons = [
            flow.remaining / flow.rate for flow in self._flows if flow.rate > 0
        ]
        if not horizons:
            raise SimulationError("active flows but no positive rates")
        # Floor the horizon at a nanosecond so floating-point residue can
        # never re-arm the timer at the current instant forever.
        horizon = max(min(horizons), 1e-9)
        version = self._timer_version
        timer = self.sim.timeout(horizon)
        timer.add_callback(lambda _ev: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # stale timer from before a reallocation
        self._bank_progress()
        self._reallocate()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def node_traffic(self) -> Dict[str, FlowStats]:
        """Per-NIC traffic counters, keyed by NIC name."""
        return {name: nic.stats for name, nic in self._nics.items()}
