"""Max-min fair-share network model: NICs, flows, and a star switch.

The paper's cluster connects 16 nodes to one switch via both a 10 Gbps and
a 1 Gbps NIC.  We model the switch backplane as non-blocking, so a flow is
constrained only by its endpoints: the sender's transmit port and the
receiver's receive port (NICs are full duplex).  When several flows share
a port, bandwidth is divided by progressive filling (max-min fairness),
which is the steady state that per-flow fair queueing / TCP converge to.

Allocation is *incremental*: each port keeps a dict-backed ordered set of
its active flows, and a flow arrival, departure, or NIC-rate change only
re-solves the **connected component** of ports reachable from the ports
it touched -- flows elsewhere keep their rates untouched (max-min rates
are component-local, so this is exact, not an approximation).  Progress
is banked lazily: only flows inside the re-solved component are credited
with bytes moved at their old rate; an undisturbed flow's progress is a
single ``rate * elapsed`` evaluated when something finally touches it.

Completion is driven by a lazy-invalidation heap of per-flow deadlines:
every rate change pushes a fresh ``(deadline, seq, flow)`` entry and the
one armed engine timer always targets the heap top; entries whose flow
finished or was since re-rated are skipped on pop.  This keeps the event
count proportional to the number of flow arrivals/departures rather than
to bytes transferred or to the square of the flow count.

The pre-existing rebuild-the-world allocator is retained as the
*reference* solver (``Switch(sim, solver="reference")`` or
``RAIDP_NET_SOLVER=reference``): it banks every flow and re-solves the
whole topology on every event.  It is the oracle for the differential
property tests and the baseline for the ``flows_per_sec`` bench kernel.

Per-node accumulated traffic is tracked so experiments can report the
paper's "accumulated network GB" bars (Fig. 10).
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator
from repro.sim.stats import TimeWeightedGauge
from repro.sim.snapshot import InlineState

#: Environment override for the default allocator ("incremental" or
#: "reference"); an explicit ``Switch(solver=...)`` argument wins.
SOLVER_ENV_VAR = "RAIDP_NET_SOLVER"

_INF = float("inf")


@dataclass
class FlowStats(InlineState):
    """Network accounting for one endpoint (node)."""

    bytes_sent: int = 0
    bytes_received: int = 0
    flows_started: int = 0
    flows_finished: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_sent + self.bytes_received


class Nic:
    """One full-duplex port: independent transmit and receive capacity."""

    __slots__ = ("name", "tx_rate", "rx_rate", "stats")

    def __init__(self, name: str, rate: float, rx_rate: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("NIC rate must be positive")
        self.name = name
        self.tx_rate = rate
        self.rx_rate = rx_rate if rx_rate is not None else rate
        self.stats = FlowStats()


class _Port:
    """One direction (tx or rx) of a NIC: capacity plus a flow registry.

    ``flows`` is a dict used as an ordered set: insertion order is the
    flow arrival order (deterministic), membership/removal are O(1).
    """

    __slots__ = ("nic", "is_tx", "flows")

    def __init__(self, nic: Nic, is_tx: bool) -> None:
        self.nic = nic
        self.is_tx = is_tx
        self.flows: Dict["_Flow", None] = {}

    @property
    def capacity(self) -> float:
        return self.nic.tx_rate if self.is_tx else self.nic.rx_rate


class _Flow:
    """An in-flight transfer between two NICs."""

    __slots__ = (
        "src",
        "dst",
        "remaining",
        "total",
        "rate",
        "done",
        "started_at",
        "last_update",
        "src_port",
        "dst_port",
        "seq",
        "deadline",
        "finished",
        "threshold",
    )

    def __init__(
        self,
        src: Nic,
        dst: Nic,
        nbytes: int,
        done: Event,
        now: float,
        src_port: _Port,
        dst_port: _Port,
        seq: int,
    ) -> None:
        self.src = src
        self.dst = dst
        self.remaining = float(nbytes)
        self.total = nbytes
        self.rate = 0.0
        self.done = done
        self.started_at = now
        self.last_update = now
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq  # arrival order: canonical solve/tie-break order
        self.deadline = _INF  # latest pushed completion deadline
        self.finished = False
        # Completion threshold: a byte-fraction floor absorbs float
        # residue; scale-relative for huge transfers so banking error
        # cannot strand a flow.  Precomputed -- it is consulted on every
        # bank of every flow.
        self.threshold = max(1e-6, self.total * 1e-12)


class Switch(InlineState):
    """A non-blocking switch connecting NICs in a star topology."""

    #: Fixed one-way latency added to every transfer (switch + stack).
    BASE_LATENCY = 50 * units.USEC

    def __init__(
        self, sim: Simulator, name: str = "switch", solver: Optional[str] = None
    ) -> None:
        if solver is None:
            solver = os.environ.get(SOLVER_ENV_VAR, "") or "incremental"
        if solver not in ("incremental", "reference"):
            raise ValueError(f"unknown network solver {solver!r}")
        self.sim = sim
        self.name = name
        self.solver = solver
        self._incremental = solver == "incremental"
        self._nics: Dict[str, Nic] = {}
        #: Global ordered set of active flows (arrival order).
        self._flows: Dict[_Flow, None] = {}
        self._tx_ports: Dict[Nic, _Port] = {}
        self._rx_ports: Dict[Nic, _Port] = {}
        self._flow_seq = 0
        #: Lazy-invalidation completion heap: (deadline, push seq, flow).
        self._completions: List[Tuple[float, int, _Flow]] = []
        self._push_seq = 0
        #: Deadline the currently armed engine timer targets (inf = none).
        self._timer_deadline = _INF
        self._timer_version = 0
        #: Ports touched by arrivals at the current instant, awaiting one
        #: batched solve at the timestamp boundary (incremental only).
        self._pending_dirty: Dict[_Port, None] = {}
        self._flush_scheduled = False
        self.total_bytes = 0
        #: Concurrent flow count over time (metrics-registry snapshot).
        self.flows_gauge = TimeWeightedGauge(start_time=sim.now)

    # ------------------------------------------------------------------
    # Topology.
    # ------------------------------------------------------------------
    def attach(self, nic: Nic) -> Nic:
        if nic.name in self._nics:
            raise SimulationError(f"NIC {nic.name!r} attached twice")
        self._nics[nic.name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        return self._nics[name]

    def _port(self, nic: Nic, is_tx: bool) -> _Port:
        # Ports are created lazily so transfers work for NICs that were
        # never attach()ed (attach only registers traffic reporting).
        ports = self._tx_ports if is_tx else self._rx_ports
        port = ports.get(nic)
        if port is None:
            port = ports[nic] = _Port(nic, is_tx)
        return port

    # ------------------------------------------------------------------
    # Transfers.
    # ------------------------------------------------------------------
    def transfer(self, src: Nic, dst: Nic, nbytes: int) -> Event:
        """Start a flow of ``nbytes`` from ``src`` to ``dst``.

        Returns an event that fires (with the flow duration) when the last
        byte arrives.  Zero-byte transfers complete after the base latency.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        sim = self.sim
        now = sim.now
        # Flattened sim.event(): one flow per transferred chunk makes the
        # constructor frames measurable in the recovery loops.
        done = Event.__new__(Event)
        done.sim = sim
        done._callbacks = None
        done._value = None
        done._exception = None
        done.triggered = False
        done._scheduled = False
        src.stats.flows_started += 1
        if nbytes == 0:
            latency_done = sim.sleep(self.BASE_LATENCY)

            def _deliver_empty(_ev: Event) -> None:
                # A zero-byte flow still completes: close the
                # started/finished accounting pair (it banks no bytes).
                src.stats.flows_finished += 1
                done.succeed(self.sim.now - now)

            latency_done.add_callback(_deliver_empty)
            return done
        src_port = self._port(src, is_tx=True)
        dst_port = self._port(dst, is_tx=False)
        self._flow_seq += 1
        flow = _Flow(
            src, dst, nbytes, done, now, src_port, dst_port, self._flow_seq
        )
        self._flows[flow] = None
        src_port.flows[flow] = None
        dst_port.flows[flow] = None
        self.flows_gauge.adjust(1.0, now)
        trace = sim.trace
        if trace.enabled:
            trace.count("net", "active_flows", now, len(self._flows))
        if self._incremental:
            # Batch same-instant arrivals into one boundary solve: a
            # recovery wave starting k flows at once costs one component
            # re-solve instead of k.  Exact, because a flow banked at the
            # instant it arrived has moved zero bytes either way and the
            # final same-instant rates are what every flow's deadline is
            # computed from.  The reference solver keeps the per-arrival
            # re-solve, preserving the oracle's historical behavior.
            pending = self._pending_dirty
            pending[src_port] = None
            pending[dst_port] = None
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.sim.add_flush_hook(self._flush_pending)
        else:
            self._update([src_port, dst_port])
        return done

    def _flush_pending(self) -> None:
        """Solve the arrivals accumulated at the current instant."""
        self._flush_scheduled = False
        pending = self._pending_dirty
        if not pending:
            return
        dirty = list(pending)
        pending.clear()
        self._update(dirty)

    def set_nic_rates(
        self,
        nic: Nic,
        tx_rate: Optional[float] = None,
        rx_rate: Optional[float] = None,
    ) -> None:
        """Change a NIC's port speeds mid-flight (link degradation).

        In-flight flows keep the bytes they already moved (progress is
        banked at the old rates) and the fair-share allocation is
        recomputed at the new capacities -- the same bank/re-solve cycle
        a flow arrival or departure triggers, scoped to the component(s)
        the NIC's two ports belong to.
        """
        if (tx_rate is not None and tx_rate <= 0) or (
            rx_rate is not None and rx_rate <= 0
        ):
            raise ValueError("NIC rate must be positive")
        # Arrivals queued at this instant must be solved at the old
        # capacities first, exactly as the per-arrival path would have.
        self._flush_pending()
        dirty: List[_Port] = []
        if tx_rate is not None:
            nic.tx_rate = tx_rate
            port = self._tx_ports.get(nic)
            if port is not None and port.flows:
                dirty.append(port)
        if rx_rate is not None:
            nic.rx_rate = rx_rate
            port = self._rx_ports.get(nic)
            if port is not None and port.flows:
                dirty.append(port)
        if dirty or self.solver == "reference":
            self._update(dirty)

    # ------------------------------------------------------------------
    # Incremental max-min fair allocation (progressive filling).
    # ------------------------------------------------------------------
    def _update(self, dirty_ports: List[_Port]) -> None:
        """Bank, finish-detect, and re-solve the affected component(s).

        The three phases are deliberately separate (finish detection
        returns the finished flows instead of removing them mid-scan):
        reallocation never sees half-removed flows.
        """
        now = self.sim.now
        if self.solver == "reference":
            candidates = list(self._flows)
        else:
            candidates = self._component(dirty_ports)
        trace = self.sim.trace
        if trace.enabled:
            trace.instant("net", "resolve", now, flows=len(candidates))
        # Phase 1: bank progress for every flow whose rate may change.
        finished = self._bank(candidates, now)
        # Phase 2: retire finished flows from every registry.
        for flow in finished:
            self._retire(flow)
        if finished:
            candidates = [flow for flow in candidates if not flow.finished]
        # Phase 3: re-solve and re-rate the survivors.
        self._solve(candidates, now)
        # Deliver completions only after the allocator ran on clean state.
        if finished:
            delivery = self.sim.sleep(self.BASE_LATENCY)
            for flow in finished:
                self._deliver(flow, delivery)
        self._arm_timer(now)

    def _component(self, dirty_ports: List[_Port]) -> List[_Flow]:
        """Flows in the connected component(s) of the dirty ports.

        Ports are vertices, flows are edges.  Dicts (not sets) keep the
        traversal order deterministic; the result is sorted by flow
        arrival order so the solve's tie-breaking matches the reference
        solver's global iteration.

        Recovery traffic is overwhelmingly star-shaped (many sources
        converging on one rebuilding node), so a hub-check shortcut
        replaces the BFS + sort with one pass over the hub's registry,
        which is already in arrival order.
        """
        hub = self._star_hub(dirty_ports)
        if hub is not None:
            return list(hub.flows)
        seen_ports: Dict[_Port, None] = dict.fromkeys(dirty_ports)
        flows: Dict[_Flow, None] = {}
        stack = list(dirty_ports)
        while stack:
            port = stack.pop()
            for flow in port.flows:
                if flow not in flows:
                    flows[flow] = None
                    for other in (flow.src_port, flow.dst_port):
                        if other not in seen_ports:
                            seen_ports[other] = None
                            stack.append(other)
        return sorted(flows, key=lambda flow: flow.seq)

    @staticmethod
    def _star_hub(dirty_ports: List[_Port]) -> Optional[_Port]:
        """The single hub port if the dirty component is a star, else None.

        A *star* is a component whose every flow touches one shared hub
        port while each spoke port carries exactly one flow.  The hub's
        flow registry then IS the component, in arrival order (each flow
        was appended to it at creation), so callers can skip the BFS and
        the sort.  Returns None whenever the shape is anything else --
        correctness never depends on this detecting a star.
        """
        hub: Optional[_Port] = None
        for port in dirty_ports:
            count = len(port.flows)
            if count == 0:
                continue
            if count == 1:
                # A spoke: its only flow's other endpoint is the hub
                # candidate (possibly another lone spoke -- the
                # verification pass below still holds for a 1-flow pair).
                (flow,) = port.flows
                candidate = flow.dst_port if flow.src_port is port else flow.src_port
            else:
                candidate = port
            if hub is None:
                hub = candidate
            elif hub is not candidate:
                return None
        if hub is None:
            return None
        for flow in hub.flows:
            other = flow.dst_port if flow.src_port is hub else flow.src_port
            if other is not hub and len(other.flows) != 1:
                return None
        return hub

    def _bank(self, flows: List[_Flow], now: float) -> List[_Flow]:
        """Credit ``flows`` with bytes moved at their current rate.

        Pure detection: returns the flows that crossed their completion
        threshold without removing them from any registry.
        """
        finished: List[_Flow] = []
        for flow in flows:
            elapsed = now - flow.last_update
            if elapsed > 0 and flow.rate > 0:
                moved = flow.rate * elapsed
                if moved > flow.remaining:
                    moved = flow.remaining
                flow.remaining -= moved
            flow.last_update = now
            if flow.remaining <= flow.threshold:
                finished.append(flow)
        return finished

    def _retire(self, flow: _Flow) -> None:
        """Drop a finished flow from the global and per-port registries."""
        flow.finished = True
        del self._flows[flow]
        del flow.src_port.flows[flow]
        del flow.dst_port.flows[flow]
        self.flows_gauge.adjust(-1.0, self.sim.now)

    def _deliver(self, flow: _Flow, delivery: Event) -> None:
        """Account a finished flow and schedule its completion delivery.

        ``delivery`` is one base-latency sleep shared by every flow that
        finished in the same wave: callbacks fire in attach order, which
        is the order per-flow sleeps would have dispatched in (their seqs
        would have been consecutive), so completion delivery order is
        unchanged.  The base latency keeps even an infinitely-fast link's
        transfer time nonzero.
        """
        flow.src.stats.bytes_sent += flow.total
        flow.dst.stats.bytes_received += flow.total
        flow.src.stats.flows_finished += 1
        self.total_bytes += flow.total
        trace = self.sim.trace
        if trace.enabled:
            trace.complete(
                "net", "flow", flow.started_at, self.sim.now,
                src=flow.src.name, dst=flow.dst.name, bytes=flow.total,
            )
            trace.count("net", "active_flows", self.sim.now, len(self._flows))
        duration = self.sim.now - flow.started_at + self.BASE_LATENCY
        delivery.add_callback(
            lambda _ev, done=flow.done, value=duration: done.succeed(value)
        )

    def _solve(self, flows: List[_Flow], now: float) -> None:
        """Progressive filling restricted to ``flows``; re-rate changes.

        ``flows`` is closed under port sharing (a connected component, or
        everything in reference mode), so the computed rates equal what
        global progressive filling would assign these flows.
        """
        if not flows:
            return
        if len(flows) == 1:
            # Single-flow fast path: a lone flow on both its ports runs at
            # the slower endpoint; no filling rounds needed.
            flow = flows[0]
            if len(flow.src_port.flows) == 1 and len(flow.dst_port.flows) == 1:
                self._set_rate(flow, min(flow.src_port.capacity, flow.dst_port.capacity), now)
                return
        remaining_cap: Dict[_Port, float] = {}
        load: Dict[_Port, int] = {}
        for flow in flows:
            for port in (flow.src_port, flow.dst_port):
                if port not in remaining_cap:
                    remaining_cap[port] = port.capacity
                    load[port] = 1
                else:
                    load[port] += 1
        # One-round fast path: if some port carries *every* flow and its
        # fair share is strictly the smallest on offer, progressive
        # filling freezes all flows in the first round at that share.
        # Strict dominance matters: on a tie the generic loop's min()
        # picks a different bottleneck first, changing the deadline-push
        # order, so ties fall through to the exact iteration.
        count = len(flows)
        if count > 1:
            hub: Optional[_Port] = None
            for port, port_load in load.items():
                if port_load == count:
                    hub = port
                    break
            if hub is not None:
                share = max(remaining_cap[hub], 0.0) / count
                for port, port_load in load.items():
                    if port is not hub and remaining_cap[port] / port_load <= share:
                        break
                else:
                    for flow in flows:
                        self._set_rate(flow, share, now)
                    return
        unfrozen: Dict[_Flow, None] = dict.fromkeys(flows)
        while unfrozen:
            # The bottleneck port is the one offering the smallest fair
            # share to its unfrozen flows.
            bottleneck = min(
                (port for port in load if load[port] > 0),
                key=lambda port: remaining_cap[port] / load[port],
            )
            # Clamp: repeated subtraction can drive a port's remaining
            # capacity a few ULPs below zero, and a negative share would
            # make flows run backwards (a livelock in disguise).
            share = max(remaining_cap[bottleneck], 0.0) / load[bottleneck]
            frozen_now = [
                flow
                for flow in unfrozen
                if flow.src_port is bottleneck or flow.dst_port is bottleneck
            ]
            for flow in frozen_now:
                for port in (flow.src_port, flow.dst_port):
                    remaining_cap[port] -= share
                    load[port] -= 1
                del unfrozen[flow]
                self._set_rate(flow, share, now)

    def _set_rate(self, flow: _Flow, rate: float, now: float) -> None:
        """Apply a solved rate; push a fresh deadline if it changed."""
        if rate == flow.rate and flow.deadline != _INF:
            return  # undisturbed: the existing heap entry stays valid
        flow.rate = rate
        if rate <= 0:
            flow.deadline = _INF
            return
        deadline = now + flow.remaining / rate
        flow.deadline = deadline
        self._push_seq += 1
        heapq.heappush(self._completions, (deadline, self._push_seq, flow))

    # ------------------------------------------------------------------
    # The completion timer (lazy-invalidation heap).
    # ------------------------------------------------------------------
    def _arm_timer(self, now: float) -> None:
        """Point the single engine timer at the earliest live deadline."""
        heap = self._completions
        # Shed stale heap tops (finished or re-rated flows) eagerly so the
        # timer never fires for nothing.
        while heap and (heap[0][2].finished or heap[0][2].deadline != heap[0][0]):
            heapq.heappop(heap)
        if len(heap) > 64 and len(heap) > 4 * len(self._flows):
            # Compact: churn-heavy runs accumulate superseded entries.
            live = [
                entry
                for entry in heap
                if not entry[2].finished and entry[2].deadline == entry[0]
            ]
            heap[:] = live
            heapq.heapify(heap)
        if not heap:
            # Arrivals awaiting their boundary solve have no rate yet;
            # the pending flush will arm the timer when it rates them.
            if self._flows and not self._pending_dirty:
                raise SimulationError("active flows but no positive rates")
            return
        top = heap[0][0]
        if top >= self._timer_deadline:
            return  # the armed timer already fires first
        self._timer_version += 1
        self._timer_deadline = top
        version = self._timer_version
        # Floor the delay at a nanosecond so floating-point residue can
        # never re-arm the timer at the current instant forever.
        timer = self.sim.sleep(max(top - now, 1e-9))
        timer.add_callback(lambda _ev: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # stale timer from before a re-arm
        self._timer_deadline = _INF
        now = self.sim.now
        heap = self._completions
        due: List[_Flow] = []
        while heap and heap[0][0] <= now:
            deadline, _seq, flow = heapq.heappop(heap)
            if flow.finished or flow.deadline != deadline:
                continue  # lazily invalidated entry
            flow.deadline = _INF
            due.append(flow)
        if not due:
            self._arm_timer(now)
            return
        # Bank the due flows; anything that has not quite crossed the
        # threshold (float residue) gets a refreshed deadline.
        finished = self._bank(due, now)
        for flow in due:
            if flow.remaining > flow.threshold:
                deadline = now + max(flow.remaining / flow.rate, 1e-9)
                flow.deadline = deadline
                self._push_seq += 1
                heapq.heappush(heap, (deadline, self._push_seq, flow))
        for flow in finished:
            self._retire(flow)
        if finished:
            delivery = self.sim.sleep(self.BASE_LATENCY)
            for flow in finished:
                self._deliver(flow, delivery)
        # Departures free bandwidth: re-solve the components the finished
        # flows' ports belong to (everything, in reference mode).
        dirty: Dict[_Port, None] = {}
        for flow in finished:
            dirty[flow.src_port] = None
            dirty[flow.dst_port] = None
        if self.solver == "reference":
            self._update([])
        elif dirty:
            self._update(list(dirty))
        else:
            self._arm_timer(now)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rates(self) -> List[Tuple[str, str, float, float]]:
        """Active flows as (src, dst, remaining, rate), in arrival order.

        Progress is reported as-if banked to now (without mutating state),
        so two switches driven through identical histories are directly
        comparable even though the incremental solver banks lazily.
        """
        # Arrivals queued at this instant have no rates yet; solve them
        # before reporting so mid-instant introspection matches the
        # per-arrival solver's view.
        self._flush_pending()
        now = self.sim.now
        rows = []
        for flow in self._flows:
            elapsed = now - flow.last_update
            remaining = flow.remaining
            if elapsed > 0 and flow.rate > 0:
                remaining = max(0.0, remaining - flow.rate * elapsed)
            rows.append((flow.src.name, flow.dst.name, remaining, flow.rate))
        return rows

    def node_traffic(self) -> Dict[str, FlowStats]:
        """Per-NIC traffic counters, keyed by NIC name."""
        return {name: nic.stats for name, nic in self._nics.items()}

    def audit_flow_conservation(self) -> List[str]:
        """Flow-bookkeeping problems, as strings (empty = conserved).

        Read-only (no solve, no banking): probed by the flight-recorder
        auditor.  Checks that the global flow set and the per-port
        registries describe the same flows, that no finished or
        negative-remaining flow lingers, and that each attached NIC's
        started/finished counters balance its active sends.
        """
        problems: List[str] = []
        for flow in self._flows:
            label = f"{flow.src.name}->{flow.dst.name}"
            if flow.finished:
                problems.append(f"net: finished flow {label} still active")
            if flow.remaining < -1e-6:
                problems.append(
                    f"net: flow {label} remaining {flow.remaining} < 0"
                )
            if flow not in flow.src_port.flows:
                problems.append(f"net: flow {label} missing from tx port")
            if flow not in flow.dst_port.flows:
                problems.append(f"net: flow {label} missing from rx port")
        for ports, side in ((self._tx_ports, "tx"), (self._rx_ports, "rx")):
            for nic, port in ports.items():
                for flow in port.flows:
                    if flow not in self._flows:
                        problems.append(
                            f"net: {side} port {nic.name} holds a flow "
                            "absent from the global set"
                        )
        active_by_src: Dict[str, int] = {}
        for flow in self._flows:
            name = flow.src.name
            active_by_src[name] = active_by_src.get(name, 0) + 1
        for name, nic in self._nics.items():
            balance = nic.stats.flows_started - nic.stats.flows_finished
            expected = active_by_src.get(name, 0)
            if balance != expected:
                problems.append(
                    f"net: NIC {name} started-finished balance {balance} "
                    f"!= {expected} active sends"
                )
        return problems
