"""Measurement helpers: counters, gauges, and time-weighted averages.

Experiments accumulate metrics through a :class:`MetricSet` so the
benchmark harness can print consistent tables.  Everything here is plain
arithmetic -- no simulation dependencies -- which also makes it easy to
property-test.

Metrics may carry labels (``metrics.counter("disk_reads", disk="n3-d0")``);
labelled children are stored under a canonical ``name{k=v,...}`` key with
the label pairs sorted, so registration order never changes the key.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from math import fsum
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union
from repro.sim.snapshot import InlineState


class Counter(InlineState):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class CounterView:
    """A read-only live view of a cumulative count owned by a component.

    Components keep their counts as plain int attributes (``DiskStats``,
    datanode/client stats); a registry that copied those values at
    registration time would report stale numbers forever after.  A view
    re-reads the supplier on every access, so one registry built early
    stays correct for the component's whole lifetime.
    """

    __slots__ = ("_supplier",)

    def __init__(self, supplier: Callable[[], int]) -> None:
        self._supplier = supplier

    @property
    def value(self) -> int:
        return int(self._supplier())

    def add(self, amount: int = 1) -> None:
        raise TypeError("CounterView is read-only; mutate the component")


#: What a MetricSet stores under a counter key: an owned Counter or a
#: live read-only view over a component's own count.
CounterLike = Union[Counter, CounterView]


class GaugeView:
    """A read-only live gauge over a component-owned instantaneous value.

    Unlike :class:`TimeWeightedGauge` nobody pushes updates into it; the
    supplier is re-read on access, and the running max only observes the
    instants at which the view was actually read (the sampler reads every
    tick, so for sampled series the max is the max over sample points).
    ``average`` reports the current value -- a view has no time-weighted
    history of its own.
    """

    __slots__ = ("_supplier", "max_value")

    def __init__(self, supplier: Callable[[], float]) -> None:
        self._supplier = supplier
        self.max_value = 0.0

    @property
    def current(self) -> float:
        value = float(self._supplier())
        if value > self.max_value:
            self.max_value = value
        return value

    def average(self, now: Optional[float] = None) -> float:
        return self.current


class TimeWeightedGauge:
    """A gauge whose average is weighted by how long each value held.

    Used to report, e.g., the average number of outstanding journal
    records (the paper observes "at most one or two outstanding").

    A gauge observes one *window* of simulated time at a time; windows
    closed by :meth:`reset` (a new experiment repetition restarting the
    clock at zero) or folded in by :meth:`merge` accumulate into
    ``_extra_area``/``_extra_span`` so :meth:`average` stays the
    lifetime time-weighted mean across all windows.
    """

    __slots__ = (
        "_value",
        "_last_time",
        "_area",
        "_start",
        "max_value",
        "_extra_area",
        "_extra_span",
    )

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._value = initial
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0
        self.max_value = initial
        self._extra_area = 0.0
        self._extra_span = 0.0

    def set(self, value: float, now: float) -> None:
        last = self._last_time
        if now < last:
            raise ValueError("time went backwards")
        self._area += self._value * (now - last)
        self._value = value
        self._last_time = now
        if value > self.max_value:
            self.max_value = value

    def adjust(self, delta: float, now: float) -> None:
        # Inlined set(): gauges sit on the disk/network hot paths, where
        # the extra call per I/O is measurable.  Arithmetic order matches
        # set() exactly so accumulated areas stay bit-identical.
        last = self._last_time
        if now < last:
            raise ValueError("time went backwards")
        value = self._value
        self._area += value * (now - last)
        value += delta
        self._value = value
        self._last_time = now
        if value > self.max_value:
            self.max_value = value

    def reset(self, now: float, value: Optional[float] = None) -> None:
        """Start a new observation window at ``now``.

        Experiment repetitions restart simulated time at zero, which a
        plain :meth:`set` would reject as time running backwards.  The
        completed window's area is folded into the lifetime totals, so
        :meth:`average` still reflects every window observed.
        """
        self._extra_area += self._area
        self._extra_span += self._last_time - self._start
        self._area = 0.0
        self._start = now
        self._last_time = now
        if value is not None:
            self._value = value
            self.max_value = max(self.max_value, value)

    def merge(self, other: "TimeWeightedGauge") -> None:
        """Fold another gauge's observed windows into this one's totals."""
        other_area = other._area + other._value * 0.0 + other._extra_area
        other_span = (other._last_time - other._start) + other._extra_span
        self._extra_area += other_area
        self._extra_span += other_span
        self.max_value = max(self.max_value, other.max_value)

    @property
    def current(self) -> float:
        return self._value

    def average(self, now: Optional[float] = None) -> float:
        if now is None:
            now = self._last_time
        span = (now - self._start) + self._extra_span
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time) + self._extra_area
        return area / span


#: What a MetricSet stores under a gauge key: an owned/adopted
#: time-weighted gauge or a live read-only view.
GaugeLike = Union[TimeWeightedGauge, GaugeView]


@dataclass
class Histogram(InlineState):
    """A tiny fixed-bucket histogram for latency-style samples."""

    bounds: Tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)
    counts: List[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    max: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, sample: float) -> None:
        # bisect_left = number of bounds strictly below the sample, which
        # matches the old linear scan (equal-to-bound stays in the lower
        # bucket) in O(log n) instead of O(n).
        self.counts[bisect_left(self.bounds, sample)] += 1
        self.total += 1
        self.sum += sample
        if sample > self.max:
            self.max = sample

    def merge(self, other: "Histogram") -> None:
        if tuple(other.bounds) != tuple(self.bounds):
            raise ValueError("cannot merge histograms with different bounds")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0.0 <= q <= 1.0``) from buckets.

        Linear interpolation within the bucket containing the target
        rank; the open-ended top bucket interpolates toward the observed
        max.  Exact for the bucket edges, approximate inside.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        return percentile_from_buckets(self.bounds, self.counts, q, self.max)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.total,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


def percentile_from_buckets(
    bounds: Tuple[float, ...],
    counts: List[int],
    q: float,
    observed_max: float,
) -> float:
    """Shared bucket-quantile kernel for Histogram and windowed deltas.

    ``counts`` has ``len(bounds) + 1`` entries; the last bucket is
    open-ended and interpolates toward ``observed_max``.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative >= target:
            lo = bounds[index - 1] if index > 0 else 0.0
            hi = bounds[index] if index < len(bounds) else observed_max
            if hi < lo:
                hi = lo
            fraction = (target - previous) / count if count else 0.0
            return lo + (hi - lo) * fraction
    return observed_max


def _key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricSet(InlineState):
    """A named bag of counters, gauges, and histograms for one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, CounterLike] = {}
        self._gauges: Dict[str, GaugeLike] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- counters -------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> CounterLike:
        key = _key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def register_counter(
        self, name: str, supplier: Callable[[], int], **labels: Any
    ) -> CounterView:
        """Register a live read-only view over a component-owned count."""
        view = CounterView(supplier)
        self._counters[_key(name, labels)] = view
        return view

    def add(self, name: str, amount: int = 1, **labels: Any) -> None:
        self.counter(name, **labels).add(amount)

    def get(self, name: str, **labels: Any) -> int:
        counter = self._counters.get(_key(name, labels))
        return counter.value if counter is not None else 0

    # -- gauges ---------------------------------------------------------
    def gauge(self, name: str, now: float = 0.0, **labels: Any) -> TimeWeightedGauge:
        key = _key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = TimeWeightedGauge(start_time=now)
        if not isinstance(gauge, TimeWeightedGauge):
            raise TypeError(f"{key} is a read-only gauge view")
        return gauge

    def register_gauge(self, name: str, gauge: GaugeLike, **labels: Any) -> GaugeLike:
        """Adopt a live gauge owned by a component (shared reference)."""
        self._gauges[_key(name, labels)] = gauge
        return gauge

    def register_gauge_view(
        self, name: str, supplier: Callable[[], float], **labels: Any
    ) -> GaugeView:
        """Register a live read-only gauge over a component-owned value."""
        view = GaugeView(supplier)
        self._gauges[_key(name, labels)] = view
        return view

    # -- histograms -----------------------------------------------------
    def histogram(
        self, name: str, bounds: Optional[Tuple[float, ...]] = None, **labels: Any
    ) -> Histogram:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            if bounds is not None:
                histogram = Histogram(bounds=tuple(bounds))
            else:
                histogram = Histogram()
            self._histograms[key] = histogram
        return histogram

    def register_histogram(
        self, name: str, histogram: Histogram, **labels: Any
    ) -> Histogram:
        """Adopt a live histogram owned by a component (shared reference)."""
        self._histograms[_key(name, labels)] = histogram
        return histogram

    # -- aggregate views ------------------------------------------------
    def as_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Structured snapshot of every metric kind.

        ``now`` extends gauge averages to the snapshot instant; omitted,
        each gauge averages up to its last observation.
        """
        return {
            "counters": {
                key: counter.value for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: {
                    "current": gauge.current,
                    "max": gauge.max_value,
                    "average": gauge.average(now),
                }
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.as_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricSet") -> None:
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter()
            # Reading other's value works for owned counters and live
            # views alike; merging *into* a view raises (views mirror a
            # component, they are not aggregation targets).
            mine.add(counter.value)
        for key, gauge in other._gauges.items():
            if isinstance(gauge, GaugeView):
                raise TypeError(f"cannot merge live gauge view {key}")
            mine_gauge = self._gauges.get(key)
            if mine_gauge is None:
                mine_gauge = self._gauges[key] = TimeWeightedGauge()
            if isinstance(mine_gauge, GaugeView):
                raise TypeError(f"cannot merge into live gauge view {key}")
            mine_gauge.merge(gauge)
        for key, histogram in other._histograms.items():
            mine_hist = self._histograms.get(key)
            if mine_hist is None:
                mine_hist = self._histograms[key] = Histogram(
                    bounds=tuple(histogram.bounds)
                )
            mine_hist.merge(histogram)


def mean(samples: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence.

    ``math.fsum`` (exact float summation) rather than ``sum``: repeated
    means over experiment repetitions must not drift with summation
    order (RDP005).
    """
    values = list(samples)
    return fsum(values) / len(values) if values else 0.0
