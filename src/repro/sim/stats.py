"""Measurement helpers: counters, gauges, and time-weighted averages.

Experiments accumulate metrics through a :class:`MetricSet` so the
benchmark harness can print consistent tables.  Everything here is plain
arithmetic -- no simulation dependencies -- which also makes it easy to
property-test.

Metrics may carry labels (``metrics.counter("disk_reads", disk="n3-d0")``);
labelled children are stored under a canonical ``name{k=v,...}`` key with
the label pairs sorted, so registration order never changes the key.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from math import fsum
from typing import Any, Dict, Iterable, List, Optional, Tuple
from repro.sim.snapshot import InlineState


class Counter(InlineState):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class TimeWeightedGauge:
    """A gauge whose average is weighted by how long each value held.

    Used to report, e.g., the average number of outstanding journal
    records (the paper observes "at most one or two outstanding").

    A gauge observes one *window* of simulated time at a time; windows
    closed by :meth:`reset` (a new experiment repetition restarting the
    clock at zero) or folded in by :meth:`merge` accumulate into
    ``_extra_area``/``_extra_span`` so :meth:`average` stays the
    lifetime time-weighted mean across all windows.
    """

    __slots__ = (
        "_value",
        "_last_time",
        "_area",
        "_start",
        "max_value",
        "_extra_area",
        "_extra_span",
    )

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._value = initial
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0
        self.max_value = initial
        self._extra_area = 0.0
        self._extra_span = 0.0

    def set(self, value: float, now: float) -> None:
        last = self._last_time
        if now < last:
            raise ValueError("time went backwards")
        self._area += self._value * (now - last)
        self._value = value
        self._last_time = now
        if value > self.max_value:
            self.max_value = value

    def adjust(self, delta: float, now: float) -> None:
        # Inlined set(): gauges sit on the disk/network hot paths, where
        # the extra call per I/O is measurable.  Arithmetic order matches
        # set() exactly so accumulated areas stay bit-identical.
        last = self._last_time
        if now < last:
            raise ValueError("time went backwards")
        value = self._value
        self._area += value * (now - last)
        value += delta
        self._value = value
        self._last_time = now
        if value > self.max_value:
            self.max_value = value

    def reset(self, now: float, value: Optional[float] = None) -> None:
        """Start a new observation window at ``now``.

        Experiment repetitions restart simulated time at zero, which a
        plain :meth:`set` would reject as time running backwards.  The
        completed window's area is folded into the lifetime totals, so
        :meth:`average` still reflects every window observed.
        """
        self._extra_area += self._area
        self._extra_span += self._last_time - self._start
        self._area = 0.0
        self._start = now
        self._last_time = now
        if value is not None:
            self._value = value
            self.max_value = max(self.max_value, value)

    def merge(self, other: "TimeWeightedGauge") -> None:
        """Fold another gauge's observed windows into this one's totals."""
        other_area = other._area + other._value * 0.0 + other._extra_area
        other_span = (other._last_time - other._start) + other._extra_span
        self._extra_area += other_area
        self._extra_span += other_span
        self.max_value = max(self.max_value, other.max_value)

    @property
    def current(self) -> float:
        return self._value

    def average(self, now: Optional[float] = None) -> float:
        if now is None:
            now = self._last_time
        span = (now - self._start) + self._extra_span
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time) + self._extra_area
        return area / span


@dataclass
class Histogram(InlineState):
    """A tiny fixed-bucket histogram for latency-style samples."""

    bounds: Tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)
    counts: List[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    max: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, sample: float) -> None:
        # bisect_left = number of bounds strictly below the sample, which
        # matches the old linear scan (equal-to-bound stays in the lower
        # bucket) in O(log n) instead of O(n).
        self.counts[bisect_left(self.bounds, sample)] += 1
        self.total += 1
        self.sum += sample
        if sample > self.max:
            self.max = sample

    def merge(self, other: "Histogram") -> None:
        if tuple(other.bounds) != tuple(self.bounds):
            raise ValueError("cannot merge histograms with different bounds")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.total,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


def _key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricSet(InlineState):
    """A named bag of counters, gauges, and histograms for one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, TimeWeightedGauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- counters -------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def add(self, name: str, amount: int = 1, **labels: Any) -> None:
        self.counter(name, **labels).add(amount)

    def get(self, name: str, **labels: Any) -> int:
        counter = self._counters.get(_key(name, labels))
        return counter.value if counter is not None else 0

    # -- gauges ---------------------------------------------------------
    def gauge(self, name: str, now: float = 0.0, **labels: Any) -> TimeWeightedGauge:
        key = _key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = TimeWeightedGauge(start_time=now)
        return gauge

    def register_gauge(
        self, name: str, gauge: TimeWeightedGauge, **labels: Any
    ) -> TimeWeightedGauge:
        """Adopt a live gauge owned by a component (shared reference)."""
        self._gauges[_key(name, labels)] = gauge
        return gauge

    # -- histograms -----------------------------------------------------
    def histogram(
        self, name: str, bounds: Optional[Tuple[float, ...]] = None, **labels: Any
    ) -> Histogram:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            if bounds is not None:
                histogram = Histogram(bounds=tuple(bounds))
            else:
                histogram = Histogram()
            self._histograms[key] = histogram
        return histogram

    def register_histogram(
        self, name: str, histogram: Histogram, **labels: Any
    ) -> Histogram:
        """Adopt a live histogram owned by a component (shared reference)."""
        self._histograms[_key(name, labels)] = histogram
        return histogram

    # -- aggregate views ------------------------------------------------
    def as_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Structured snapshot of every metric kind.

        ``now`` extends gauge averages to the snapshot instant; omitted,
        each gauge averages up to its last observation.
        """
        return {
            "counters": {
                key: counter.value for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: {
                    "current": gauge.current,
                    "max": gauge.max_value,
                    "average": gauge.average(now),
                }
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.as_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricSet") -> None:
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter()
            mine.add(counter.value)
        for key, gauge in other._gauges.items():
            mine_gauge = self._gauges.get(key)
            if mine_gauge is None:
                mine_gauge = self._gauges[key] = TimeWeightedGauge()
            mine_gauge.merge(gauge)
        for key, histogram in other._histograms.items():
            mine_hist = self._histograms.get(key)
            if mine_hist is None:
                mine_hist = self._histograms[key] = Histogram(
                    bounds=tuple(histogram.bounds)
                )
            mine_hist.merge(histogram)


def mean(samples: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence.

    ``math.fsum`` (exact float summation) rather than ``sum``: repeated
    means over experiment repetitions must not drift with summation
    order (RDP005).
    """
    values = list(samples)
    return fsum(values) / len(values) if values else 0.0
