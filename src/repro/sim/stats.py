"""Measurement helpers: counters, gauges, and time-weighted averages.

Experiments accumulate metrics through a :class:`MetricSet` so the
benchmark harness can print consistent tables.  Everything here is plain
arithmetic -- no simulation dependencies -- which also makes it easy to
property-test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class TimeWeightedGauge:
    """A gauge whose average is weighted by how long each value held.

    Used to report, e.g., the average number of outstanding journal
    records (the paper observes "at most one or two outstanding").
    """

    __slots__ = ("_value", "_last_time", "_area", "_start", "max_value")

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._value = initial
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0
        self.max_value = initial

    def set(self, value: float, now: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._value * (now - self._last_time)
        self._value = value
        self._last_time = now
        self.max_value = max(self.max_value, value)

    def adjust(self, delta: float, now: float) -> None:
        self.set(self._value + delta, now)

    @property
    def current(self) -> float:
        return self._value

    def average(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / span


@dataclass
class Histogram:
    """A tiny fixed-bucket histogram for latency-style samples."""

    bounds: Tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)
    counts: List[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    max: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, sample: float) -> None:
        index = 0
        while index < len(self.bounds) and sample > self.bounds[index]:
            index += 1
        self.counts[index] += 1
        self.total += 1
        self.sum += sample
        self.max = max(self.max, sample)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class MetricSet:
    """A named bag of counters for one experiment run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def add(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def get(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def as_dict(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def merge(self, other: "MetricSet") -> None:
        for name, counter in other._counters.items():
            self.counter(name).add(counter.value)


def mean(samples: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(samples)
    return sum(values) / len(values) if values else 0.0
