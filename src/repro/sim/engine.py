"""Minimal deterministic discrete-event simulation kernel.

The kernel follows the familiar process-interaction style: a *process* is a
Python generator that ``yield``\\ s :class:`Event` objects; the simulator
resumes the generator when the yielded event fires.  Determinism is a hard
requirement (experiment results must be reproducible bit-for-bit), so ties
in the event schedule are broken by a monotonically increasing sequence
number and no wall-clock or global randomness is consulted anywhere.

Example::

    sim = Simulator()

    def worker(sim, results):
        yield sim.timeout(1.5)
        results.append(sim.now)

    results = []
    sim.process(worker(sim, results))
    sim.run()
    assert results == [1.5]

Scheduler
---------
Pending entries live in three lanes, dispatched in exact global
``(time, seq)`` order:

- the *now-bucket*: a FIFO of zero-delay entries for the current instant
  (event triggers, process bootstraps, deferred callbacks) -- the bulk of
  the schedule;
- the *calendar lane*: a FIFO of future entries appended while their
  times are non-decreasing.  Simulated hardware overwhelmingly schedules
  constant-delay chains (disk service times, network timer ticks,
  recovery chunk loops), so successive delays land in non-decreasing
  time order and a deque append/popleft replaces two O(log n) heap
  operations;
- the *overflow heap*: a binary heap catching entries scheduled out of
  order (an earlier deadline while later work is already parked).

Dispatch always takes the minimum ``(time, seq)`` across the three
lanes, so the routing policy never changes the dispatch order -- it only
changes which container held the entry.  ``RAIDP_SCHEDULER=heap``
(mirroring ``RAIDP_NET_SOLVER``) retains the pure binary-heap reference:
the lane is simply never used, and the differential tests in
``tests/test_scheduler_differential.py`` prove both modes dispatch
bitwise-identically.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.simprofile import active_profiler
from repro.obs.timeseries import active_sampler
from repro.obs.tracer import active_tracer

# A process body: a generator that yields Events and may return a value.
ProcessBody = Generator["Event", Any, Any]

#: Sentinel stored in ``Event._callbacks`` once the event has dispatched.
_DISPATCHED = object()

#: Environment override for the scheduler ("calendar" or "heap"); an
#: explicit ``Simulator(scheduler=...)`` argument wins.
SCHEDULER_ENV_VAR = "RAIDP_SCHEDULER"

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _resolve_scheduler(explicit: Optional[str]) -> str:
    mode = explicit or os.environ.get(SCHEDULER_ENV_VAR, "") or "calendar"
    if mode not in ("calendar", "heap"):
        raise ValueError(
            f"unknown scheduler {mode!r} (expected 'calendar' or 'heap')"
        )
    return mode


class _Deferred:
    """A bare callback on the schedule.

    The schedule only requires entries to expose ``_dispatch``; a
    one-field object is much cheaper than a full :class:`Event` for the
    internal "run this soon" pattern (process bootstrap, late callbacks,
    interrupts), which fires once per process and never carries a value.

    Instances are pooled by the simulator: once dispatched, the loop
    recycles the entry for the next :meth:`Simulator._schedule_callback`,
    so callback-heavy phases (process churn) allocate no entries in
    steady state.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Optional[Callable[[], None]]) -> None:
        self.fn = fn

    def _dispatch(self) -> None:
        fn, self.fn = self.fn, None
        fn()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then delivers its value (or raises
    its exception) in every process that yielded it.  Callbacks attached
    after triggering run on the next :meth:`Simulator.step`.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_exception", "triggered", "_scheduled")

    #: True when a waiting process may attach itself by writing
    #: ``_callbacks`` directly (the inlined ``_wait_for`` fast path).
    #: :class:`Process` overrides this: its ``add_callback`` also records
    #: that the completion was observed.
    _inline_wait = True

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        # None (no waiter yet) | a single callable | a list of callables |
        # _DISPATCHED.  Most events have exactly one waiter, so the common
        # case allocates no list.
        self._callbacks: Any = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.triggered = False
        self._scheduled = False

    @property
    def ok(self) -> bool:
        """True once the event has triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event failed or is pending."""
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value``.

        The ``_trigger`` body is inlined: triggering is the hottest
        scheduling site (every completion lands here).
        """
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        if not self._scheduled:
            self._scheduled = True
            sim = self.sim
            sim._seq += 1
            sim._now_bucket.append((sim._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        self._exception = exception
        # Inlined zero-delay _schedule_event (same body as succeed()).
        if not self._scheduled:
            self._scheduled = True
            sim = self.sim
            sim._seq += 1
            sim._now_bucket.append((sim._seq, self))

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event has been dispatched."""
        callbacks = self._callbacks
        if callbacks is None:
            self._callbacks = callback
        elif callbacks is _DISPATCHED:
            # Already dispatched: schedule an immediate deferred call so
            # the callback still runs inside the simulation loop.
            self.sim._schedule_callback(lambda: callback(self))
        elif isinstance(callbacks, list):
            callbacks.append(callback)
        else:
            self._callbacks = [callbacks, callback]

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, _DISPATCHED
        if callbacks is None:
            return
        if isinstance(callbacks, list):
            for callback in callbacks:
                callback(self)
        else:
            callbacks(self)


class Timeout(Event):
    """An event that fires automatically after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._schedule_event(self, delay=delay)


class _Sleep(Event):
    """A pooled one-shot delay: the engine-internal cousin of Timeout.

    Obtained via :meth:`Simulator.sleep` and recycled by the run loop the
    moment it has dispatched, so delay-heavy hot paths (disk I/O, network
    timers, recovery chunk loops) allocate no event per wait in steady
    state.  The pooling contract: the caller must consume the event
    immediately (``yield`` it from exactly one process, or attach exactly
    one callback) and must not retain a reference past its firing --
    internal call sites only, never part of the public waiting API.
    """

    __slots__ = ()


class Process(Event):
    """A running generator.  As an Event it fires when the body returns."""

    __slots__ = ("body", "name", "_waiting_on", "_had_waiters", "_trace_t0",
                 "_send", "_bthrow", "_rcb")

    #: Waiters must go through add_callback so _had_waiters is recorded.
    _inline_wait = False

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "") -> None:
        # Inlined Event.__init__: process churn (one per simulated I/O in
        # the recovery loops) makes this constructor hot.
        self.sim = sim
        self._callbacks = None
        self._value = None
        self._exception = None
        self.triggered = False
        self._scheduled = False
        self.body = body
        self.name = name or getattr(body, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._had_waiters = False
        # Prebound body resumption and wake callback: every resume saves
        # a method-wrapper allocation and an attribute chain.
        self._send = body.send
        self._bthrow = body.throw
        self._rcb: Callable[[Event], None] = self._resume
        if sim.trace.enabled:
            self._trace_t0 = sim.now
        # Kick off the body on the next step; inlined _schedule_callback
        # (deferred-pool reuse, no bootstrap Event allocation).
        pool = sim._deferred_pool
        if pool:
            entry = pool.pop()
            entry.fn = self._start
        else:
            entry = _Deferred(self._start)
        sim._seq += 1
        sim._now_bucket.append((sim._seq, entry))
        sim._live_processes += 1

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        # Remember that somebody waits on this process, so an unhandled
        # crash inside the body is considered observed (the waiter gets the
        # exception re-thrown) and run() need not re-raise it.
        self._had_waiters = True
        super().add_callback(callback)

    def observed(self) -> bool:
        """True if some waiter received this process's completion."""
        return self._had_waiters

    def interrupt(self, reason: str = "interrupted") -> None:
        """Throw :class:`ProcessInterrupt` into the body at its wait point."""
        if self.triggered:
            return
        self.sim._schedule_callback(lambda: self._throw(ProcessInterrupt(reason)))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            target = self._bthrow(exc)
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except BaseException as err:  # noqa: BLE001 - propagate into the event
            self._finish_fail(err)
        else:
            # Inlined _wait_for fast path (see _resume).
            try:
                if target._callbacks is None and target._inline_wait:
                    self._waiting_on = target
                    target._callbacks = self._rcb
                    return
            except AttributeError:
                pass
            self._wait_for(target)

    def _start(self) -> None:
        """First resume of the body (nothing to send yet)."""
        if self.triggered:
            return
        try:
            target = self._send(None)
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except BaseException as err:  # noqa: BLE001 - propagate into the event
            self._finish_fail(err)
        else:
            try:
                if target._callbacks is None and target._inline_wait:
                    self._waiting_on = target
                    target._callbacks = self._rcb
                    return
            except AttributeError:
                pass
            self._wait_for(target)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        try:
            if event._exception is not None:
                target = self._bthrow(event._exception)
            else:
                target = self._send(event._value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except BaseException as err:  # noqa: BLE001 - propagate into the event
            self._finish_fail(err)
        else:
            # Inlined _wait_for fast path: the overwhelmingly common
            # target is a fresh event with no waiter yet, where waiting
            # is a single slot write.  Process targets opt out via
            # _inline_wait (their add_callback records observation) and
            # non-events lack the slots entirely (AttributeError).
            try:
                if target._callbacks is None and target._inline_wait:
                    self._waiting_on = target
                    target._callbacks = self._rcb
                    return
            except AttributeError:
                pass
            self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._finish_fail(
                SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        self._waiting_on = target
        target.add_callback(self._rcb)

    def _finish_ok(self, value: Any) -> None:
        sim = self.sim
        sim._live_processes -= 1
        trace = sim.trace
        if trace.enabled:
            trace.complete(
                "engine", "process", getattr(self, "_trace_t0", sim.now), sim.now,
                proc=self.name,
            )
        self.succeed(value)

    def _finish_fail(self, exc: BaseException) -> None:
        sim = self.sim
        sim._live_processes -= 1
        trace = sim.trace
        if trace.enabled:
            trace.complete(
                "engine", "process", getattr(self, "_trace_t0", sim.now), sim.now,
                proc=self.name, error=type(exc).__name__,
            )
        # Remember the failure; if nobody waits on this process the
        # simulator surfaces it at the end of the run instead of silently
        # swallowing it.
        self.sim._note_process_failure(self, exc)
        self.triggered = True
        self._exception = exc
        self.sim._schedule_event(self)


class ProcessInterrupt(SimulationError):
    """Raised inside a process body by :meth:`Process.interrupt`."""


class AllOf(Event):
    """Fires when all child events have fired; value is their value list.

    Fails fast with the first child failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        # Inlined Event.__init__ (one AllOf per chunk iteration in the
        # recovery loops).
        self.sim = sim
        self._callbacks = None
        self._value = None
        self._exception = None
        self.triggered = False
        self._scheduled = False
        children = self._children = list(events)
        self._remaining = len(children)
        if self._remaining == 0:
            self.succeed([])
            return
        on_child = self._on_child
        for child in children:
            # Inlined _wait_for fast path (see Process._resume): a fresh
            # waiter-less event takes a slot write; Process children opt
            # out so their add_callback records observation.
            if child._callbacks is None and child._inline_wait:
                child._callbacks = on_child
            else:
                child.add_callback(on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
        else:
            self.succeed((index, child._value))


class Simulator:
    """The event loop: three dispatch lanes merged in (time, seq) order.

    Zero-delay work (event triggers, process bootstraps, deferred
    callbacks) dominates the schedule, so it bypasses timed containers
    entirely: a FIFO *now-bucket* holds entries for the current instant.
    Timed entries land in the calendar *lane* (a deque) while their times
    are non-decreasing and spill to the overflow *heap* otherwise; see
    the module docstring.  The run loop merges all three by sequence
    number, which reproduces the exact (time, seq) dispatch order of a
    single heap bit-for-bit.
    """

    def __init__(self, start: float = 0.0, scheduler: Optional[str] = None) -> None:
        self.now: float = start
        # The tracer bound at construction (NULL_TRACER unless a tracer
        # is active); instrumentation sites branch on ``trace.enabled``.
        # Emitting events never touches the schedule or the sequence
        # counter, so traced and untraced runs execute identical
        # schedules.
        self.trace = active_tracer()
        self._trace_run = self.trace.register_run() if self.trace.enabled else 0
        # The profiler bound at construction (None unless one is
        # active).  Consulted once per run() call -- never per event --
        # so the disabled path costs nothing on the hot loop.
        self._profile = active_profiler()
        # The flight-recorder sampler (None unless one is active).  Also
        # consulted once per run(); when active, run() drains to each
        # sample instant via the ordinary `until` mechanism, so sampling
        # never perturbs the schedule or the sequence counter.
        self._sampler = active_sampler()
        if self._sampler is not None and self._sampler.enabled:
            self._sampler.register_run(self.now)
        #: "calendar" (deque lane + overflow heap) or "heap" (pure
        #: binary-heap reference, kept for differential testing).
        self.scheduler = _resolve_scheduler(scheduler)
        # Entries are (time, seq, Event-or-_Deferred); seq is unique, so
        # the third element is never compared.
        self._heap: List[Tuple[float, int, Any]] = []
        # Calendar lane: (time, seq, entry) with non-decreasing (time,
        # seq); _lane_tail is the largest time ever appended (reset when
        # the lane drains so the next monotone run is recaptured).  Heap
        # mode pins the tail at +inf so every timed entry heap-spills.
        self._lane: Deque[Tuple[float, int, Any]] = deque()
        self._lane_reset = _NEG_INF if self.scheduler == "calendar" else _POS_INF
        self._lane_tail = self._lane_reset
        # Zero-delay entries for the current instant: (seq, entry) pairs,
        # appended in seq order (seq is globally monotone).
        self._now_bucket: Deque[Tuple[int, Any]] = deque()
        self._seq = 0
        self._live_processes = 0
        self._failed: List[Tuple[Process, BaseException]] = []
        # Recycled _Deferred entries (see _schedule_callback).
        self._deferred_pool: List[_Deferred] = []
        # Recycled _Sleep events (see sleep()).
        self._sleep_pool: List[_Sleep] = []
        # One-shot hooks run when the cascade at the current instant has
        # drained, before simulated time advances (see add_flush_hook).
        self._flush_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Snapshot support.
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle a *quiescent* simulator: clock and seq counter only.

        Live generators are unpicklable, so snapshots are only legal when
        no work is scheduled and no process is mid-body.  The seq counter
        travels with the snapshot so a restored run consumes the same
        tie-break sequence a cold run would have at this point.
        """
        if (
            self._heap
            or self._lane
            or self._now_bucket
            or self._flush_hooks
            or self._live_processes
            or self._failed
        ):
            raise SimulationError(
                "simulator snapshot requires quiescence: empty schedule, "
                "no live processes, no pending failures"
            )
        return {"now": self.now, "seq": self._seq}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.now = float(state["now"])
        # Tracing/profiling state is process-local and never snapshotted;
        # rebind to whatever is active in the restoring process.  The
        # scheduler mode likewise re-resolves from the environment.
        self.trace = active_tracer()
        self._trace_run = self.trace.register_run() if self.trace.enabled else 0
        self._profile = active_profiler()
        self._sampler = active_sampler()
        if self._sampler is not None and self._sampler.enabled:
            self._sampler.register_run(self.now)
        self.scheduler = _resolve_scheduler(None)
        self._heap = []
        self._lane = deque()
        self._lane_reset = _NEG_INF if self.scheduler == "calendar" else _POS_INF
        self._lane_tail = self._lane_reset
        self._now_bucket = deque()
        self._seq = int(state["seq"])
        self._live_processes = 0
        self._failed = []
        self._deferred_pool = []
        self._sleep_pool = []
        self._flush_hooks = []

    # ------------------------------------------------------------------
    # Event construction helpers.
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A fresh delay event (flattened hot-path constructor)."""
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        # Inlined Timeout.__init__ + _schedule_event: direct slot writes
        # skip two constructor frames on one of the hottest call sites.
        event = Timeout.__new__(Timeout)
        event.sim = self
        event._callbacks = None
        event._value = value
        event._exception = None
        event.triggered = True
        event._scheduled = True
        event.delay = delay
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._now_bucket.append((seq, event))
        else:
            when = self.now + delay
            if when >= self._lane_tail or not self._lane:
                self._lane_tail = when
                self._lane.append((when, seq, event))
            else:
                heapq.heappush(self._heap, (when, seq, event))
        return event

    def sleep(self, delay: float, value: Any = None) -> Event:
        """A pooled fixed delay for engine-internal hot paths.

        Semantically a :meth:`timeout`, but the returned event is recycled
        the moment it dispatches.  The caller must therefore consume it
        immediately -- yield it from exactly one process or attach exactly
        one callback -- and must not retain a reference past its firing.
        Composite events (``all_of``/``any_of``) keep child references, so
        they must use :meth:`timeout`.
        """
        if delay < 0:
            raise ValueError(f"negative sleep: {delay}")
        pool = self._sleep_pool
        if pool:
            event = pool.pop()
            event._callbacks = None
            event._value = value
            event._exception = None
        else:
            event = _Sleep(self)
            event._value = value
        event.triggered = True
        event._scheduled = True
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._now_bucket.append((seq, event))
        else:
            when = self.now + delay
            if when >= self._lane_tail or not self._lane:
                self._lane_tail = when
                self._lane.append((when, seq, event))
            else:
                heapq.heappush(self._heap, (when, seq, event))
        return event

    def process(self, body: ProcessBody, name: str = "") -> Process:
        return Process(self, body, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the main loop.
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._now_bucket.append((seq, event))
        else:
            when = self.now + delay
            if when >= self._lane_tail or not self._lane:
                self._lane_tail = when
                self._lane.append((when, seq, event))
            else:
                heapq.heappush(self._heap, (when, seq, event))

    def _schedule_callback(self, fn: Callable[[], None]) -> None:
        """Queue a bare callback at the current time (fast path).

        Replaces the allocate-Event-and-succeed idiom for internal
        scheduling; consumes one sequence number, exactly like the event
        it replaces, so tie-breaking order is unchanged.  Entries are
        reused from a free list refilled by the dispatch loop.
        """
        pool = self._deferred_pool
        if pool:
            entry = pool.pop()
            entry.fn = fn
        else:
            entry = _Deferred(fn)
        self._seq += 1
        self._now_bucket.append((self._seq, entry))

    def add_flush_hook(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` once the cascade at the current instant drains.

        The hook fires exactly once, after every already-scheduled entry
        at the current simulated time has dispatched and before time
        advances (or the run ends).  Subsystems that accumulate
        same-timestamp work -- e.g. the switch batching flow arrivals into
        one fair-share solve -- register a hook per instant instead of
        recomputing per arrival.  Hooks may schedule new work at the
        current instant and may re-register for later instants.
        """
        self._flush_hooks.append(fn)

    def _run_flush_hooks(self) -> None:
        hooks = self._flush_hooks
        while hooks:
            batch = hooks[:]
            del hooks[: len(batch)]
            for fn in batch:
                fn()

    def _note_process_failure(self, process: Process, exc: BaseException) -> None:
        self._failed.append((process, exc))

    def _next_entry(self) -> Tuple[float, Any]:
        """Pop the globally minimal (time, seq) entry; advance the clock.

        The non-inlined single-step selection shared by :meth:`step` and
        the profiled loop; semantics match the inlined :meth:`_drain`
        loop exactly.  Raises IndexError on an empty schedule.
        """
        bucket = self._now_bucket
        lane = self._lane
        heap = self._heap
        now = self.now
        # (when, seq) of each candidate; bucket entries fire at `now`.
        best_src = -1
        best_when = 0.0
        best_seq = 0
        if bucket:
            best_src, best_when, best_seq = 0, now, bucket[0][0]
        if lane:
            l0 = lane[0]
            if best_src < 0 or (l0[0], l0[1]) < (best_when, best_seq):
                best_src, best_when, best_seq = 1, l0[0], l0[1]
        if heap:
            h0 = heap[0]
            if best_src < 0 or (h0[0], h0[1]) < (best_when, best_seq):
                best_src, best_when, best_seq = 2, h0[0], h0[1]
        if best_src < 0:
            raise IndexError("step from an empty schedule")
        if best_src == 0:
            entry = bucket.popleft()[1]
        elif best_src == 1:
            entry = lane.popleft()[2]
        else:
            best_when, _seq, entry = heapq.heappop(heap)
        if best_when < now:
            raise SimulationError("time went backwards")
        self.now = best_when
        return best_when, entry

    def step(self) -> None:
        """Advance to and dispatch the next scheduled entry.

        Flush hooks are a :meth:`run`-loop notion; ``step`` dispatches
        scheduled entries only and leaves boundary hooks to the caller.
        """
        _when, event = self._next_entry()
        event._dispatch()
        cls = type(event)
        if cls is _Deferred:
            self._deferred_pool.append(event)
        elif cls is _Sleep:
            self._sleep_pool.append(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains or simulated time reaches ``until``.

        Returns the final simulated time.  Raises the first unobserved
        process failure, and raises :class:`DeadlockError` if processes
        remain blocked after the schedule drains.
        """
        from repro.errors import DeadlockError

        profile = self._profile
        sampler = self._sampler
        if sampler is not None and sampler.enabled:
            self._drain_sampled(until, sampler)
        elif profile is not None and profile.enabled:
            self._drain_profiled(until, profile)
        else:
            self._drain(until)
        self._raise_orphan_failures()
        if (
            until is None
            and self._live_processes > 0
            and not self._heap
            and not self._lane
        ):
            raise DeadlockError(
                f"{self._live_processes} process(es) blocked forever at t={self.now}"
            )
        return self.now

    def _drain(self, until: Optional[float]) -> None:
        """The simulation's innermost hot path.

        Inlines entry selection, event dispatch (``Event._dispatch``
        body) and :class:`_Deferred`/:class:`_Sleep` recycling with the
        three lanes bound locally.  Bucket, lane and heap are merged by
        (time, seq), reproducing single-heap dispatch order exactly.
        """
        heap = self._heap
        lane = self._lane
        bucket = self._now_bucket
        pop = heapq.heappop
        popleft = bucket.popleft
        lane_popleft = lane.popleft
        deferred_pool = self._deferred_pool
        sleep_pool = self._sleep_pool
        flush_hooks = self._flush_hooks
        now = self.now
        while True:
            if bucket:
                # Same instant: dispatch the oldest seq among bucket
                # front and any lane/heap entries already due at `now`
                # (they predate later bucket appends iff seq is smaller).
                event = None
                bseq = bucket[0][0]
                if lane:
                    l0 = lane[0]
                    if l0[0] <= now and l0[1] < bseq:
                        if heap and heap[0] < l0:
                            event = pop(heap)[2]
                        else:
                            event = lane_popleft()[2]
                if event is None:
                    if heap and heap[0][0] <= now and heap[0][1] < bseq:
                        event = pop(heap)[2]
                    else:
                        event = popleft()[1]
            else:
                if lane:
                    use_lane = True
                    l0 = lane[0]
                    when = l0[0]
                    if heap:
                        h0 = heap[0]
                        if h0 < l0:
                            use_lane = False
                            when = h0[0]
                elif heap:
                    use_lane = False
                    when = heap[0][0]
                elif flush_hooks:
                    self._run_flush_hooks()
                    continue
                else:
                    break
                if when > now and flush_hooks:
                    self._run_flush_hooks()
                    continue
                if until is not None and when > until:
                    self.now = until
                    return
                if use_lane:
                    event = lane_popleft()[2]
                else:
                    when, _seq, event = pop(heap)
                    if when < now:
                        raise SimulationError("time went backwards")
                now = self.now = when
            # Inlined Event._dispatch + pool recycling.
            cls = event.__class__
            if cls is _Deferred:
                fn = event.fn
                event.fn = None
                fn()
                deferred_pool.append(event)
            else:
                cb = event._callbacks
                event._callbacks = _DISPATCHED
                if cb is not None:
                    if cb.__class__ is list:
                        for callback in cb:
                            callback(event)
                    else:
                        cb(event)
                if cls is _Sleep:
                    sleep_pool.append(event)

    def _drain_sampled(self, until: Optional[float], sampler: Any) -> None:
        """The run loop chunked at the sampler's tick grid.

        Each chunk is an ordinary :meth:`_drain` (or profiled drain) to
        the next sample instant -- the same ``until`` mechanism callers
        use -- so the dispatched schedule is bitwise-identical to an
        unsampled run: no event scheduled, no sequence number consumed.
        A sample is taken only when the chunk actually reached its tick
        (work remains beyond it); a drained schedule ends the run
        without trailing empty ticks.
        """
        profile = self._profile
        profiled = profile is not None and profile.enabled
        while True:
            due = sampler.next_due()
            target = due if until is None or due <= until else until
            if profiled:
                self._drain_profiled(target, profile)
            else:
                self._drain(target)
            if not (self._now_bucket or self._lane or self._heap):
                return
            if target != due:
                # The caller's horizon precedes the next tick.
                return
            sampler.sample(self)  # raidp: noqa[RDP103] -- deterministic calendar tick recorder, not a random draw

    def _drain_profiled(self, until: Optional[float], profile: Any) -> None:
        """The run loop with per-dispatch attribution.

        Selection, flush-hook and until semantics are identical to
        :meth:`_drain` (via :meth:`_next_entry`); the only additions are
        bucket classification before dispatch and wall/sim-time
        accounting around it.  Profiling never touches the sequence
        counter or the schedule, so profiled and unprofiled runs execute
        bitwise-identical schedules.
        """
        clock = profile.clock
        record = profile.record
        bucket_for = profile.bucket_for
        while True:
            if not self._now_bucket:
                if self._lane or self._heap:
                    l0 = self._lane[0] if self._lane else None
                    h0 = self._heap[0] if self._heap else None
                    head = l0 if (h0 is None or (l0 is not None and l0 < h0)) else h0
                    when = head[0]
                    if when > self.now and self._flush_hooks:
                        self._run_flush_hooks()
                        continue
                    if until is not None and when > until:
                        self.now = until
                        return
                elif self._flush_hooks:
                    self._run_flush_hooks()
                    continue
                else:
                    break
            prev_now = self.now
            when, event = self._next_entry()
            key = bucket_for(event)
            t0 = clock()
            event._dispatch()
            record(key, when - prev_now, clock() - t0)
            cls = type(event)
            if cls is _Deferred:
                self._deferred_pool.append(event)
            elif cls is _Sleep:
                self._sleep_pool.append(event)

    def run_process(self, body: ProcessBody, name: str = "") -> Any:
        """Convenience: spawn ``body``, run to completion, return its value."""
        proc = self.process(body, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} did not finish")
        return proc.value

    def _raise_orphan_failures(self) -> None:
        """Re-raise the first process crash that no waiter ever saw."""
        for process, exc in self._failed:
            if not process.observed():
                self._failed.clear()
                raise exc
        self._failed.clear()
