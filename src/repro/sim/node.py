"""Server model: CPU, RAM buffer accounting, disks, and NICs.

A :class:`Node` bundles the per-server devices that the distributed layers
(HDFS, RAIDP) schedule work onto.  The CPU is a counted resource (one
grant per core); compute phases -- sort passes, word counting, parity
arithmetic when not offloaded -- charge simulated seconds against it, so
CPU-heavy workloads (WordCount) dilute I/O-path differences exactly as in
the paper's Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro import units
from repro.sim.disk import Disk, DiskGeometry
from repro.sim.engine import Simulator
from repro.sim.network import Nic
from repro.sim.resources import Resource
from repro.sim.snapshot import InlineState


@dataclass(frozen=True)
class CpuModel(InlineState):
    """Per-node compute parameters.

    ``compute_rate`` is the rate at which a single core chews through
    byte-oriented work (hashing, comparison, counting).  The default of
    400 MB/s/core approximates a 3.1 GHz Xeon core running JVM-era Hadoop
    record processing.
    """

    cores: int = 4
    compute_rate: float = 400 * units.MB  # bytes/second/core


class Node(InlineState):
    """One server: named devices plus CPU and RAM-buffer bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu: Optional[CpuModel] = None,
        ram: int = 16 * units.GiB,
    ) -> None:
        self.sim = sim
        self.name = name
        self.cpu = cpu or CpuModel()
        self.ram = ram
        self.disks: List[Disk] = []
        self.nics: List[Nic] = []
        self._cpu_resource = Resource(sim, capacity=self.cpu.cores, name=f"{name}.cpu")
        self.alive = True

    # ------------------------------------------------------------------
    # Device attachment.
    # ------------------------------------------------------------------
    def add_disk(
        self, geometry: Optional[DiskGeometry] = None, scheduler: str = "fifo"
    ) -> Disk:
        disk = Disk(
            self.sim,
            geometry,
            name=f"{self.name}.d{len(self.disks)}",
            scheduler=scheduler,
        )
        self.disks.append(disk)
        return disk

    def add_nic(self, nic: Nic) -> Nic:
        self.nics.append(nic)
        return nic

    @property
    def primary_nic(self) -> Nic:
        if not self.nics:
            raise ValueError(f"node {self.name} has no NIC")
        return self.nics[0]

    @property
    def primary_disk(self) -> Disk:
        if not self.disks:
            raise ValueError(f"node {self.name} has no disk")
        return self.disks[0]

    # ------------------------------------------------------------------
    # Compute.
    # ------------------------------------------------------------------
    def compute(self, seconds: float) -> Generator:
        """Occupy one core for ``seconds`` of work."""
        grant = yield self._cpu_resource.request()
        try:
            yield self.sim.timeout(seconds)
        finally:
            self._cpu_resource.release(grant)
        return seconds

    def compute_bytes(self, nbytes: int, intensity: float = 1.0) -> Generator:
        """Charge CPU for processing ``nbytes`` of data.

        ``intensity`` scales the work: 1.0 is one pass of record
        processing, higher values model heavier per-byte computation.
        """
        seconds = intensity * nbytes / self.cpu.compute_rate
        result = yield from self.compute(seconds)
        return result

    # ------------------------------------------------------------------
    # Whole-node failure (takes down disks but, per the paper's failure
    # model, never the Lstors attached to them).
    # ------------------------------------------------------------------
    def fail(self) -> None:
        self.alive = False
        for disk in self.disks:
            disk.fail()

    def restart(self) -> None:
        """Bring a crashed server back with replaced (empty) disks.

        The distributed layers are responsible for re-registering the
        node's DataNodes and reconciling content (block report / rejoin
        protocol); this only flips the hardware back on.
        """
        self.alive = True
        for disk in self.disks:
            if disk.failed:
                disk.repair()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} disks={len(self.disks)} alive={self.alive}>"
