"""Warm-start snapshots of quiescent simulated clusters.

Sweep-style experiments (``table2``, ``ext-scale``) re-simulate an
identical failure-free warmup -- cluster assembly, data ingest, journal
flush -- before the part of the run that actually differs.  This module
captures that common prefix once and hands every subsequent task a fresh
restored copy, so repeated sweep points pay for the warmup once per
(parameters, code version) instead of once per task.

Correctness model
-----------------
- :func:`capture` pickles the whole cluster facade.  The
  :class:`~repro.sim.engine.Simulator` refuses to pickle unless
  *quiescent* (empty schedule, no live process, no pending failure), so
  a snapshot can only be taken between runs -- exactly the warm-start
  boundary.  Everything else in the object graph (disks, switch, layout,
  RNGs, payload factory) is plain picklable state.
- :func:`restore` unpickles a brand-new object graph on every call.
  Restored clusters share nothing, so tasks cannot contaminate each
  other through a cached object.
- :meth:`SnapshotStore.get_or_build` returns a *restored* copy even on
  the first, cold build: every consumer sees a cluster that went through
  the same capture/restore round-trip, so the first task is structurally
  identical to the hundredth.
- Snapshot keys embed :func:`code_fingerprint` -- a digest over the
  ``repro`` package sources -- so a snapshot written by different code
  is unreachable, not merely unlikely to be reused.  Staleness is a key
  miss, never a wrong restore.

The default store is in-memory and per-process; ``fork``-context pool
workers inherit the parent's store for free.  Setting
``RAIDP_SNAPSHOT_DIR`` spills snapshots to disk so spawn-context workers
and repeated CLI invocations can share them.

When a span tracer is active the store is bypassed and builders run
cold: the warmup's spans belong in the trace, and restored simulators
would register fresh trace runs mid-experiment.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.obs.tracer import active_tracer

#: Optional on-disk spill directory (shared across processes/invocations).
SNAPSHOT_DIR_ENV = "RAIDP_SNAPSHOT_DIR"

#: Set to ``0``/``false``/``no`` to force cold builds everywhere (used by
#: the cold-vs-warm differential tests and ``bench --before/--after``).
WARM_START_ENV = "RAIDP_WARM_START"

_code_digest: Optional[str] = None


def warm_start_enabled() -> bool:
    """True unless ``RAIDP_WARM_START`` disables the snapshot store."""
    return os.environ.get(WARM_START_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "no",
    )


def code_fingerprint() -> str:
    """Digest over every ``repro`` source file, cached per process.

    Walks the package directory rather than inspecting loaded modules so
    the fingerprint covers code a snapshot *could* touch on restore, not
    just what happens to be imported at capture time.
    """
    global _code_digest
    if _code_digest is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        hasher = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                hasher.update(os.path.relpath(path, root).encode("utf-8"))
                with open(path, "rb") as handle:  # raidp: noqa[RDP003] -- hashes host sources between runs, not in a sim process
                    hasher.update(handle.read())
        _code_digest = hasher.hexdigest()[:16]
    return _code_digest


def snapshot_key(tag: str, **params: Any) -> str:
    """Canonical store key: tag, sorted parameters, code fingerprint."""
    inner = ",".join(f"{name}={params[name]!r}" for name in sorted(params))
    return f"{tag}({inner})@{code_fingerprint()}"


def capture(obj: Any) -> bytes:
    """Pickle a quiescent cluster (or any picklable object graph).

    Raises :class:`~repro.errors.SimulationError` via the simulator's
    ``__getstate__`` if the object graph contains a non-quiescent
    simulator.
    """
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def restore(blob: bytes) -> Any:
    """Unpickle a snapshot into a brand-new, unshared object graph."""
    return pickle.loads(blob)


class SnapshotStore:
    """A keyed snapshot cache: in-memory, optionally spilled to disk."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self._memory: Dict[str, bytes] = {}
        self._directory = directory
        self.hits = 0
        self.misses = 0

    def _spill_dir(self) -> Optional[str]:
        if self._directory is not None:
            return self._directory
        env = os.environ.get(SNAPSHOT_DIR_ENV, "").strip()
        return env or None

    def _spill_path(self, key: str) -> Optional[str]:
        directory = self._spill_dir()
        if directory is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(directory, f"{digest}.snap")

    def get(self, key: str) -> Optional[bytes]:
        blob = self._memory.get(key)
        if blob is not None:
            return blob
        path = self._spill_path(key)
        if path is not None and os.path.exists(path):
            with open(path, "rb") as handle:  # raidp: noqa[RDP003] -- spill-store read between simulations, not in a sim process
                blob = handle.read()
            self._memory[key] = blob
            return blob
        return None

    def put(self, key: str, blob: bytes) -> None:
        self._memory[key] = blob
        path = self._spill_path(key)
        if path is not None:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            # Atomic publish: spawn-context siblings may race on the same
            # key, and both write identical bytes (same code, same key).
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:  # raidp: noqa[RDP003] -- spill-store write between simulations, not in a sim process
                handle.write(blob)
            os.replace(tmp, path)

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return a restored copy of the snapshot under ``key``.

        On a miss, runs ``builder``, captures the result, stores it, and
        still returns a restored copy -- cold and warm callers always
        receive a cluster with an identical capture/restore history.
        """
        if not warm_start_enabled() or active_tracer().enabled:
            return builder()
        blob = self.get(key)
        if blob is None:
            self.misses += 1
            blob = capture(builder())
            self.put(key, blob)
        else:
            self.hits += 1
        return restore(blob)


#: Process-wide store used by the experiment builders.
GLOBAL_STORE = SnapshotStore()


def checked_restore(blob: bytes, expected_type: type) -> Any:
    """Restore a snapshot and verify its facade type.

    Used by the cluster-level ``from_snapshot`` hooks so a blob captured
    from the wrong cluster class fails loudly instead of half-working.
    """
    obj = restore(blob)
    if not isinstance(obj, expected_type):
        raise SimulationError(
            f"snapshot holds {type(obj).__name__}, expected {expected_type.__name__}"
        )
    return obj
