"""Warm-start snapshots of quiescent simulated clusters.

Sweep-style experiments (``table2``, ``ext-scale``) re-simulate an
identical failure-free warmup -- cluster assembly, data ingest, journal
flush -- before the part of the run that actually differs.  This module
captures that common prefix once and hands every subsequent task a fresh
restored copy, so repeated sweep points pay for the warmup once per
(parameters, code version) instead of once per task.

Correctness model
-----------------
- :func:`capture` pickles the whole cluster facade.  The
  :class:`~repro.sim.engine.Simulator` refuses to pickle unless
  *quiescent* (empty schedule, no live process, no pending failure), so
  a snapshot can only be taken between runs -- exactly the warm-start
  boundary.  Everything else in the object graph (disks, switch, layout,
  RNGs, payload factory) is plain picklable state.
- :func:`restore` unpickles a brand-new object graph on every call.
  Restored clusters share nothing, so tasks cannot contaminate each
  other through a cached object.
- :meth:`SnapshotStore.get_or_build` captures on a miss *before*
  returning the built object, so the stored blob is always pristine;
  hits return restored copies.  Cold-built and restored clusters are
  interchangeable: the warm-start differential tests prove restored
  copies produce bitwise-identical results, and :class:`InlineState`
  keeps their wall-clock behaviour identical as well (restored objects
  would otherwise lose CPython's inline attribute storage and run
  15-25% slower).
- Snapshot keys embed :func:`code_fingerprint` -- a digest over the
  ``repro`` package sources -- so a snapshot written by different code
  is unreachable, not merely unlikely to be reused.  Staleness is a key
  miss, never a wrong restore.

The default store is in-memory and per-process; ``fork``-context pool
workers inherit the parent's store for free.  Setting
``RAIDP_SNAPSHOT_DIR`` spills snapshots to disk so spawn-context workers
and repeated CLI invocations can share them.

When a span tracer is active the store is bypassed and builders run
cold: the warmup's spans belong in the trace, and restored simulators
would register fresh trace runs mid-experiment.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.obs.tracer import active_tracer

#: Optional on-disk spill directory (shared across processes/invocations).
SNAPSHOT_DIR_ENV = "RAIDP_SNAPSHOT_DIR"

#: Set to ``0``/``false``/``no`` to force cold builds everywhere (used by
#: the cold-vs-warm differential tests and ``bench --before/--after``).
WARM_START_ENV = "RAIDP_WARM_START"

_code_digest: Optional[str] = None


def warm_start_enabled() -> bool:
    """True unless ``RAIDP_WARM_START`` disables the snapshot store."""
    return os.environ.get(WARM_START_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "no",
    )


def code_fingerprint() -> str:
    """Digest over every ``repro`` source file, cached per process.

    Walks the package directory rather than inspecting loaded modules so
    the fingerprint covers code a snapshot *could* touch on restore, not
    just what happens to be imported at capture time.
    """
    global _code_digest
    if _code_digest is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        hasher = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                hasher.update(os.path.relpath(path, root).encode("utf-8"))
                with open(path, "rb") as handle:  # raidp: noqa[RDP003] -- hashes host sources between runs, not in a sim process
                    hasher.update(handle.read())
        _code_digest = hasher.hexdigest()[:16]
    return _code_digest


def snapshot_key(tag: str, **params: Any) -> str:
    """Canonical store key: tag, sorted parameters, code fingerprint."""
    inner = ",".join(f"{name}={params[name]!r}" for name in sorted(params))
    return f"{tag}({inner})@{code_fingerprint()}"


def phase_key(base_key: str, boundary: float) -> str:
    """Full key of a *phase* snapshot: base key + phase-boundary time.

    A phase snapshot captures a cluster after a warmup phase (data
    ingest, journal flush) rather than after bare assembly, so its
    identity includes the simulated time at which the phase ended.  The
    boundary is a product of the build -- it cannot be computed before
    running the warmup -- which is why stores keep a ``base_key ->
    full_key`` index (:meth:`SnapshotStore.resolve_phase`): warm lookups
    start from the pre-run key, but the stored artifact is named by what
    was actually captured.
    """
    return f"{base_key}+t={boundary!r}"


def phase_boundary(obj: Any) -> float:
    """The phase-boundary time of a built cluster: its simulator's now."""
    sim = getattr(obj, "sim", None)
    if sim is None:
        raise SimulationError(
            f"phase snapshot target {type(obj).__name__} has no .sim; "
            "cannot read its phase-boundary time"
        )
    return float(sim.now)


def capture(obj: Any) -> bytes:
    """Pickle a quiescent cluster (or any picklable object graph).

    Raises :class:`~repro.errors.SimulationError` via the simulator's
    ``__getstate__`` if the object graph contains a non-quiescent
    simulator.
    """
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def restore(blob: bytes) -> Any:
    """Unpickle a snapshot into a brand-new, unshared object graph."""
    return pickle.loads(blob)


class InlineState:
    """Restore pickled attributes with ``setattr``, not ``__dict__.update``.

    CPython 3.11+ stores instance attributes *inline* in the object
    until something materializes its ``__dict__``.  Pickle's default
    ``BUILD`` does exactly that (``inst.__dict__.update(state)``), so a
    restored object pays a slower attribute-access path for the rest of
    its life: a micro-benchmark shows ~2.5x per access, and restored
    clusters ran 15-25% slower than cold-built ones on event-loop-bound
    workloads.  Assigning each attribute on the fresh instance keeps the
    inline layout, making warm-started simulations run at cold-built
    speed.  Every class that appears inside a cluster snapshot inherits
    this mixin.

    ``object.__setattr__`` is used so frozen dataclasses restore the
    same way the default path would (pickle also bypasses ``__init__``
    and any custom ``__setattr__``).  ``__slots__ = ()`` keeps the mixin
    from forcing a ``__dict__`` onto slotted subclasses, and the
    two-tuple ``(dict_state, slots_state)`` form pickle emits for such
    classes is handled explicitly.
    """

    __slots__ = ()

    def __setstate__(self, state: Any) -> None:
        if isinstance(state, tuple):
            dict_state, slots_state = state
        else:
            dict_state, slots_state = state, None
        if dict_state:
            for name, value in dict_state.items():
                object.__setattr__(self, name, value)
        if slots_state:
            for name, value in slots_state.items():
                object.__setattr__(self, name, value)


class SnapshotStore:
    """A keyed snapshot cache: in-memory, optionally spilled to disk."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self._memory: Dict[str, bytes] = {}
        #: base key -> full key for phase snapshots (boundary time is
        #: part of the stored key but unknown before the warmup runs).
        self._phase_index: Dict[str, str] = {}
        self._directory = directory
        self.hits = 0
        self.misses = 0

    def _spill_dir(self) -> Optional[str]:
        if self._directory is not None:
            return self._directory
        env = os.environ.get(SNAPSHOT_DIR_ENV, "").strip()
        return env or None

    def _spill_path(self, key: str) -> Optional[str]:
        directory = self._spill_dir()
        if directory is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(directory, f"{digest}.snap")

    def get(self, key: str) -> Optional[bytes]:
        blob = self._memory.get(key)
        if blob is not None:
            return blob
        path = self._spill_path(key)
        if path is not None and os.path.exists(path):
            with open(path, "rb") as handle:  # raidp: noqa[RDP003] -- spill-store read between simulations, not in a sim process
                blob = handle.read()
            self._memory[key] = blob
            return blob
        return None

    def put(self, key: str, blob: bytes) -> None:
        self._memory[key] = blob
        path = self._spill_path(key)
        if path is not None:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            # Atomic publish: spawn-context siblings may race on the same
            # key, and both write identical bytes (same code, same key).
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:  # raidp: noqa[RDP003] -- spill-store write between simulations, not in a sim process
                handle.write(blob)
            os.replace(tmp, path)

    def clear(self) -> None:
        self._memory.clear()
        self._phase_index.clear()
        self.hits = 0
        self.misses = 0

    def resolve_phase(self, base_key: str) -> Optional[str]:
        """Map a phase snapshot's pre-run key to its stored full key."""
        full_key = self._phase_index.get(base_key)
        if full_key is not None:
            return full_key
        path = self._spill_path(base_key)
        if path is not None and os.path.exists(path + ".key"):
            with open(path + ".key", encoding="utf-8") as handle:  # raidp: noqa[RDP003] -- spill-store index read between simulations, not in a sim process
                full_key = handle.read().strip()
            self._phase_index[base_key] = full_key
            return full_key
        return None

    def _publish_phase(self, base_key: str, full_key: str) -> None:
        self._phase_index[base_key] = full_key
        path = self._spill_path(base_key)
        if path is not None:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.key.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:  # raidp: noqa[RDP003] -- spill-store index write between simulations, not in a sim process
                handle.write(full_key)
            os.replace(tmp, path + ".key")

    def get_or_build_phase(self, base_key: str, builder: Callable[[], Any]) -> Any:
        """:meth:`get_or_build` for snapshots taken after a warmup phase.

        ``builder`` assembles a cluster *and* runs its failure-free
        warmup (ingest, journal flush) to quiescence; the snapshot
        captures that post-warmup state, and the stored key embeds the
        phase-boundary time (:func:`phase_key`) read off the built
        cluster.  Lookups resolve ``base_key`` through the phase index
        first, so warm callers never re-simulate the warmup.  Identity
        contract is get_or_build's: built-and-captured on a miss,
        restored copy on a hit, and a missing/stale snapshot is a
        rebuild, never a wrong restore.
        """
        if not warm_start_enabled() or active_tracer().enabled:
            return builder()
        full_key = self.resolve_phase(base_key)
        if full_key is not None:
            blob = self.get(full_key)
            if blob is not None:
                self.hits += 1
                return restore(blob)
        self.misses += 1
        obj = builder()
        full_key = phase_key(base_key, phase_boundary(obj))
        self.put(full_key, capture(obj))
        self._publish_phase(base_key, full_key)
        return obj

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cluster under ``key``, building it at most once.

        On a miss, runs ``builder``, captures the result for future
        callers, and returns the built object itself -- the capture
        happens before the caller can mutate it, so the stored blob is
        always pristine.  On a hit, returns a freshly restored copy.
        Cold and warm callers are interchangeable because a restored
        cluster is bitwise-indistinguishable from a cold-built one (the
        warm-start differential tests pin this; :class:`InlineState`
        makes it hold for wall-clock behaviour too).
        """
        if not warm_start_enabled() or active_tracer().enabled:
            return builder()
        blob = self.get(key)
        if blob is not None:
            self.hits += 1
            return restore(blob)
        self.misses += 1
        obj = builder()
        self.put(key, capture(obj))
        return obj


#: Process-wide store used by the experiment builders.
GLOBAL_STORE = SnapshotStore()


def checked_restore(blob: bytes, expected_type: type) -> Any:
    """Restore a snapshot and verify its facade type.

    Used by the cluster-level ``from_snapshot`` hooks so a blob captured
    from the wrong cluster class fails loudly instead of half-working.
    """
    obj = restore(blob)
    if not isinstance(obj, expected_type):
        raise SimulationError(
            f"snapshot holds {type(obj).__name__}, expected {expected_type.__name__}"
        )
    return obj
